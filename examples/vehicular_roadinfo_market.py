#!/usr/bin/env python3
"""Vehicular road-information market — the paper's §I vehicle scenario.

"Vehicles can sell road information directly to peer vehicles in edge
environments without a trusted cloud backend."  This example stresses the
parts of the system that mobility makes hard:

* high mobility ranges (vehicles wander much further than phones),
* short-lived data (a hazard report is stale in half an hour),
* vehicles dropping off the network (out of radio range) and recovering
  missed blocks through the recent-block cache when they return.

Run:  python examples/vehicular_roadinfo_market.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import PAPER_CONFIG
from repro.metrics import print_table
from repro.sim import ChurnSpec, ExperimentSpec, run_experiment


def main() -> None:
    print("=== Vehicular road-info market: 25 vehicles, 90 minutes ===")

    config = replace(
        PAPER_CONFIG,
        mobility_range=60.0,  # vehicles roam far further than phones
        default_valid_time_minutes=30.0,  # hazard reports go stale fast
        data_items_per_minute=2.0,
        expected_block_interval=30.0,  # faster consensus for fresher ledger
        recent_cache_capacity=15,  # generous recent cache for churny fleet
    )
    spec = ExperimentSpec(
        node_count=25,
        config=config,
        seed=11,
        duration_minutes=90,
        mobility_epoch_minutes=5.0,  # topology churns quickly
        churn=ChurnSpec(  # vehicles leave radio coverage and return
            node_fraction=0.4, events_per_node=2.0, mean_downtime_seconds=120.0
        ),
    )
    result = run_experiment(spec)
    metrics = result.metrics
    chain = result.cluster.longest_chain_node().chain

    expired_on_chain = sum(
        1
        for block in chain.blocks
        for item in block.metadata_items
        if item.is_expired(result.cluster.engine.now)
    )
    total_on_chain = sum(len(b.metadata_items) for b in chain.blocks)

    print_table(
        "Road-information ledger",
        ["metric", "value"],
        [
            ["hazard/road reports published", metrics.data_items_produced],
            ["reports packed on-chain", total_on_chain],
            ["reports already expired (30 min TTL)", expired_on_chain],
            ["blocks mined", metrics.chain_height()],
            ["mean block interval (s)", round(metrics.mean_block_interval(), 1)],
        ],
    )

    print_table(
        "Fleet connectivity & recovery",
        ["metric", "value"],
        [
            ["vehicles that dropped offline", sum(
                1 for n in result.cluster.nodes.values()
                if n.counters.recoveries_completed > 0
            )],
            ["missed-block recoveries completed", len(metrics.recovery_durations)],
            ["mean recovery time (s)", round(metrics.mean_recovery_duration(), 1)
             if metrics.recovery_durations else "n/a"],
            ["recovery traffic (KB)", round(
                (metrics.category_bytes.get("block_recovery", 0)
                 + metrics.category_bytes.get("chain_sync", 0)) / 1e3, 1
            )],
        ],
    )

    print_table(
        "Market quality under mobility",
        ["metric", "value"],
        [
            ["road-info fetches served", len(metrics.delivery_times)],
            ["fetches failed", metrics.failed_requests],
            ["avg delivery time (s)", round(metrics.average_delivery_time(), 3)],
            ["storage fairness (Gini)", round(metrics.storage_gini(), 4)],
            ["avg traffic per vehicle (MB)", round(metrics.average_node_megabytes(), 1)],
        ],
    )
    print("Vehicles recover missed blocks from nearby peers' recent-block")
    print("caches (Section IV-C) instead of re-downloading the whole chain.")


if __name__ == "__main__":
    main()
