#!/usr/bin/env python3
"""Quickstart: spin up an edge blockchain, trade one data item, inspect it.

Builds a 10-node pervasive-edge network (the paper's 300 m × 300 m field),
lets one IoT node publish an air-quality reading, mines it into a block via
the new Proof of Stake, and fetches it from a consumer node — printing what
happened at each step.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import PAPER_CONFIG
from repro.sim import build_cluster


def main() -> None:
    print("=== Edge blockchain quickstart ===\n")

    # 1. Build a 10-node cluster with the paper's parameters (70 m radio
    #    range, 30 m mobility, 250 storage slots, 60 s block interval).
    cluster = build_cluster(node_count=10, config=PAPER_CONFIG, seed=42)
    cluster.start()
    engine = cluster.engine
    print(f"built a connected network of {len(cluster.nodes)} edge devices")
    print(f"node 0 account address: {cluster.accounts[0].address}\n")

    # 2. Node 3 publishes a signed air-quality reading (1 MB of sensor data,
    #    described on-chain by a ~300 B metadata item).
    producer = cluster.nodes[3]
    metadata = producer.produce_data(
        data_type="AirQuality/PM2.5",
        location="NewYork,NY/40.72,-74.00",
        valid_time_minutes=1440,
    )
    print(f"node 3 published data item {metadata.data_id}")
    print(f"  producer signature valid: {metadata.verify_signature()}")

    # 3. Let the PoS lottery run for a few block intervals: some node's
    #    growing target R_i = S_i·Q_i·t·B crosses its hit and it mines the
    #    block, choosing storing nodes by solving the fair-storage UFL.
    engine.run_until(engine.now + 3 * PAPER_CONFIG.expected_block_interval)
    chain = cluster.longest_chain_node().chain
    print(f"\nchain height after 3 block intervals: {chain.height}")
    for block in chain.blocks[1:]:
        print(
            f"  block {block.index}: miner=node {block.miner}, "
            f"stored on {list(block.storing_nodes)}, "
            f"{len(block.metadata_items)} metadata item(s), "
            f"{block.wire_size()} bytes"
        )

    packed = chain.metadata_of(metadata.data_id)
    print(f"\ndata item placed on nodes {list(packed.storing_nodes)} "
          f"(chosen by the FDC+RDC facility-location solver)")

    # 4. A consumer requests the data: nearest replica serves 1 MB.
    engine.run_until(engine.now + 30)  # let dissemination finish
    consumer = cluster.nodes[8]
    consumer.request_data(metadata.data_id)
    engine.run_until(engine.now + 10)
    delivery = consumer.delivery_times[-1]
    print(f"node 8 fetched the data item in {delivery * 1000:.0f} ms")

    # 5. Ledger state: who earned what.
    state = chain.state
    print("\ntoken balances (mining + storage incentives):")
    for node_id in cluster.node_ids:
        tokens = state.tokens(node_id)
        stored = state.stored_items(node_id, engine.now)
        print(f"  node {node_id}: S={tokens:.1f} tokens, Q={stored} stored items")

    traffic = cluster.network.trace
    print(f"\ntotal network traffic: {traffic.total_bytes() / 1e6:.2f} MB "
          f"across {traffic.total_messages()} link transmissions")
    print("\ndone.")


if __name__ == "__main__":
    main()
