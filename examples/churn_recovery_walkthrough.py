#!/usr/bin/env python3
"""Missing-block recovery walkthrough — the paper's Fig. 3, narrated.

Reproduces the paper's data-and-block access story step by step: a node
disconnects (Node A in Fig. 3), misses several blocks, reconnects, detects
the gap from the next broadcast's index, requests the missing blocks from
its neighbours — who serve them from their recent-block caches — and
rejoins consensus.

Run:  python examples/churn_recovery_walkthrough.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import PAPER_CONFIG
from repro.sim import build_cluster


def main() -> None:
    config = replace(
        PAPER_CONFIG,
        expected_block_interval=20.0,  # quick blocks for a quick story
        data_items_per_minute=0.0,
        recent_cache_capacity=8,
    )
    cluster = build_cluster(node_count=8, config=config, seed=13)
    cluster.start()
    engine = cluster.engine
    victim = cluster.nodes[5]

    print("=== Missing-block recovery (paper Fig. 3) ===\n")

    # Let the chain establish itself.
    engine.run_until(120.0)
    print(f"t={engine.now:5.0f}s  chain height everywhere: {victim.chain.height}")

    # Node 5 wanders out of radio range.
    cluster.network.set_online(5, False)
    offline_at_height = victim.chain.height
    print(f"t={engine.now:5.0f}s  node 5 disconnects (height {offline_at_height})")

    # The rest of the network keeps mining without it.
    engine.run_until(engine.now + 8 * config.expected_block_interval)
    network_height = cluster.longest_chain_node().chain.height
    print(f"t={engine.now:5.0f}s  network reached height {network_height}; "
          f"node 5 still at {victim.chain.height}")
    print(f"          node 5 missed {network_height - offline_at_height} blocks")

    # Who could serve those blocks?  Count recent-cache holders.
    sample_index = network_height  # the newest block
    holders = [
        node_id
        for node_id, node in cluster.nodes.items()
        if node_id != 5 and node.storage.has_block(sample_index)
    ]
    print(f"          block {sample_index} is held by nodes {holders} "
          f"(permanent storers + recent caches + last-block copies)")

    # Reconnect: the next broadcast has an index > tip+1 → gap recovery.
    cluster.network.set_online(5, True)
    victim.on_reconnect()
    print(f"t={engine.now:5.0f}s  node 5 reconnects, waits for the next broadcast")

    recovered_at = None
    deadline = engine.now + 10 * config.expected_block_interval
    while engine.now < deadline:
        engine.run_until(engine.now + 5.0)
        if victim.chain.height >= cluster.longest_chain_node().chain.height:
            recovered_at = engine.now
            break

    assert recovered_at is not None, "node 5 failed to catch up"
    print(f"t={engine.now:5.0f}s  node 5 caught up to height {victim.chain.height}")
    if victim.sync.completed_durations:
        duration = victim.sync.completed_durations[-1]
        print(f"          gap recovery took {duration:.2f}s once the gap was seen")
    recovery_bytes = cluster.network.trace.category_bytes("block_recovery")
    chain_sync_bytes = cluster.network.trace.category_bytes("chain_sync")
    print(f"          recovery traffic: {recovery_bytes / 1e3:.1f} KB piecemeal + "
          f"{chain_sync_bytes / 1e3:.1f} KB chain-sync fallback")

    # And it mines again.
    before = victim.counters.blocks_mined
    engine.run_until(engine.now + 30 * config.expected_block_interval)
    print(f"\nnode 5 mined {victim.counters.blocks_mined - before} blocks after "
          f"recovering — it is a first-class participant again.")


if __name__ == "__main__":
    main()
