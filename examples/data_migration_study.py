#!/usr/bin/env python3
"""Data migration under drift — the paper's future-work question, answered.

"Over time, data items may become obsolete, and nodes will also change the
location.  The distributed storage will not remain optimal during that
time. ... we will discuss the data migration problem, which will study how
to use less operation to achieve less offset from the optimal result."

This example places 15 data items optimally, lets the network drift
(mobility epochs + storage growth), shows how far the placements fall from
optimal, then repairs them under increasing operation budgets — printing
the operations-vs-drift frontier with a bar chart.

Run:  python examples/data_migration_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PAPER_CONFIG, placement_drift, plan_migration
from repro.facility import build_storage_ufl, solve_greedy
from repro.metrics import print_table
from repro.metrics.ascii_plot import bar_chart
from repro.sim import build_cluster

NODES = 20
ITEMS = 15
EPOCHS = 8


def main() -> None:
    print("=== Data migration study (paper §VII future work) ===\n")
    cluster = build_cluster(NODES, PAPER_CONFIG, seed=3)
    rng = np.random.default_rng(3)
    ranges = [PAPER_CONFIG.mobility_range] * NODES
    total = np.full(NODES, float(PAPER_CONFIG.storage_capacity))

    # 1. Optimal placements on the initial network.
    used = rng.uniform(5, 60, size=NODES)
    hops = cluster.topology.hop_matrix()
    placements = []
    for _ in range(ITEMS):
        problem = build_storage_ufl(used, total, hops, ranges)
        solution = solve_greedy(problem)
        placements.append(sorted(solution.open_facilities))
        for node in solution.open_facilities:
            used[node] += 1
    print(f"placed {ITEMS} items optimally "
          f"(replica counts: {[len(p) for p in placements]})")

    # 2. The world moves.
    for _ in range(EPOCHS):
        cluster.advance_mobility_epoch()
        used += rng.uniform(0, 6, size=NODES)
        used = np.minimum(used, 240.0)
    new_hops = cluster.topology.hop_matrix()
    problem_now = build_storage_ufl(used, total, new_hops, ranges)
    drifts = [placement_drift(problem_now, p) for p in placements]
    print(f"after {EPOCHS} mobility epochs: mean drift "
          f"{np.mean(drifts):.3f}× optimal (worst {max(drifts):.3f}×)\n")

    # 3. Repair under increasing budgets.
    rows = []
    budgets = (0, 1, 2, 3, 5)
    for budget in budgets:
        final_drifts, transfers = [], 0
        for replicas in placements:
            plan = plan_migration(problem_now, replicas, max_operations=budget)
            final_drifts.append(plan.final_drift)
            transfers += plan.transfers
        rows.append(
            [budget, round(float(np.mean(final_drifts)), 4), transfers,
             f"{transfers * 1.0:.0f} MB"]
        )
    print_table(
        "Operations budget vs residual drift",
        ["ops/item", "mean drift", "data transfers", "migration traffic"],
        rows,
    )
    print(bar_chart(
        [f"{budget} ops" for budget in budgets],
        [row[1] - 1.0 for row in rows],
        unit=" drift-above-optimal",
    ))
    print("\nA couple of operations per item recovers nearly all of the")
    print("optimality the network's drift destroyed — and most repairs are")
    print("replica drops, which cost no data transfer at all.")


if __name__ == "__main__":
    main()
