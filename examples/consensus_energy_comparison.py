#!/usr/bin/env python3
"""PoW vs PoS on an edge device — the paper's Fig. 6 experiment, runnable.

Simulates the paper's smartphone test: a fully charged Galaxy S8 mining
with Proof of Work (difficulty 4, ~25 s per block) and then with the new
Proof of Stake at the same block rate, printing the remaining battery as
blocks are mined, plus a difficulty sweep showing PoW's exponential cost.

Run:  python examples/consensus_energy_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.core.pos import compute_amendment, compute_hit, mining_delay
from repro.core.pow import PowMiner
from repro.energy import EnergyMeter
from repro.metrics import print_table

M = 2**64
BLOCK_TIME = 25.0


def pow_session(minutes: float, difficulty: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    meter = EnergyMeter()
    miner = PowMiner(meter, difficulty=difficulty)
    elapsed, blocks = 0.0, 0
    while elapsed < minutes * 60 and not meter.depleted:
        result = miner.mine_block(rng)
        elapsed += result.duration_seconds
        blocks += 1
    return blocks, meter.remaining_percent


def pos_session(minutes: float, seed: int = 0):
    meter = EnergyMeter()
    amendment = compute_amendment(M, 1, BLOCK_TIME, 1.0)
    elapsed, blocks = 0.0, 0
    pos_hash = f"session-{seed}"
    while elapsed < minutes * 60 and not meter.depleted:
        hit = compute_hit(pos_hash, "device-account", M)
        pos_hash += "x"
        delay = mining_delay(hit, 1.0, 1.0, amendment)
        meter.charge_pos_ticks(delay)
        elapsed += delay
        blocks += 1
    return blocks, meter.remaining_percent


def main() -> None:
    print("=== Mining energy on a Galaxy S8 (simulated battery) ===")

    rows = []
    for minutes in (12, 24, 36, 48, 60, 72, 84):
        pow_blocks, pow_battery = pow_session(minutes)
        pos_blocks, pos_battery = pos_session(minutes)
        rows.append(
            [minutes, pow_blocks, round(pow_battery, 1), pos_blocks, round(pos_battery, 1)]
        )
    print_table(
        "Fig. 6 — remaining battery vs mining time (PoW difficulty 4, "
        "both at ~25 s/block)",
        ["minutes", "PoW blocks", "PoW battery %", "PoS blocks", "PoS battery %"],
        rows,
    )

    # The paper: "The computational complexity grows exponentially in PoW
    # but remains almost the same for PoS."
    sweep = []
    for difficulty in (1, 2, 3, 4, 5):
        rng = np.random.default_rng(difficulty)
        meter = EnergyMeter()
        miner = PowMiner(meter, difficulty=difficulty)
        for _ in range(20):
            miner.mine_block(rng)
        sweep.append(
            [difficulty, 16**difficulty, round(meter.total_consumed() / 20, 2)]
        )
    pos_meter = EnergyMeter()
    pos_meter.charge_pos_ticks(20 * BLOCK_TIME)
    print_table(
        "PoW difficulty sweep (energy per block, J) vs PoS",
        ["difficulty", "expected hashes", "J/block"],
        sweep + [["PoS (any)", "—", round(pos_meter.total_consumed() / 20, 2)]],
    )

    pow_blocks, pow_battery = pow_session(84)
    pos_blocks, pos_battery = pos_session(84)
    print(f"After 84 minutes: PoW consumed {100 - pow_battery:.1f}% "
          f"({pow_blocks} blocks), PoS consumed {100 - pos_battery:.1f}% "
          f"({pos_blocks} blocks).")
    print("PoS mines comparable blocks on a small fraction of the battery —")
    print("the property that makes on-device consensus viable at the edge.")


if __name__ == "__main__":
    main()
