#!/usr/bin/env python3
"""General-information consensus tour: Raft today, SWIM tomorrow (§VII).

The paper uses Raft to agree on general information (membership, mobility
ranges) beside the PoS chain, and complains about its heartbeat overhead.
This example runs both substrates on the same simulated edge network:

1. Raft elects a leader and replicates range announcements; we then
   partition the network and watch the majority side keep committing.
2. SWIM detects a crashed device with an order of magnitude less idle
   traffic — the paper's future-work direction, working.

Run:  python examples/membership_consensus_tour.py
"""

from __future__ import annotations

from repro.membership import SWIM_CATEGORY, MemberStatus, SwimCluster
from repro.metrics import print_table
from repro.raft import RAFT_CATEGORY, RaftCluster
from repro.simnet import (
    ChannelModel,
    EventEngine,
    Network,
    PartitionInjector,
    Topology,
    connected_random_positions,
)


def raft_half(positions) -> dict:
    print("--- Raft: general-information consensus ---")
    engine = EventEngine(seed=1)
    network = Network(engine, Topology(positions), ChannelModel(bandwidth=None))
    cluster = RaftCluster(list(range(len(positions))), network, engine)
    cluster.start()
    leader = cluster.wait_for_leader(timeout=30)
    print(f"leader elected: node {leader.node_id} (term {leader.current_term})")

    for node_id in (2, 5, 7):
        index = cluster.submit_via_leader(
            {"announce": "mobility_range", "node": node_id, "range_m": 30.0}
        )
    cluster.wait_for_commit(index, timeout=30)
    engine.run_until(engine.now + 2.0)
    print(f"3 range announcements replicated to all "
          f"{len(cluster.nodes)} nodes: "
          f"{all(len(cluster.applied_commands(n)) == 3 for n in cluster.nodes)}")

    injector = PartitionInjector(network)
    minority = [0, 1, 2]
    majority = [n for n in cluster.nodes if n not in minority]
    injector.partition(minority, majority)
    engine.run_until(engine.now + 20.0)
    majority_leader = next(
        (cluster.nodes[n] for n in majority if cluster.nodes[n].is_leader), None
    )
    if majority_leader:
        idx = majority_leader.submit({"announce": "during_partition"})
        engine.run_until(engine.now + 5.0)
        committed = sum(
            1 for n in majority if cluster.nodes[n].commit_index >= (idx or 0)
        )
        print(f"partitioned: majority side still commits ({committed}/{len(majority)} nodes)")
    injector.heal()
    engine.run_until(engine.now + 20.0)
    print(f"healed: logs consistent everywhere: {cluster.logs_consistent()}")

    start = network.trace.category_bytes(RAFT_CATEGORY)
    start_time = engine.now
    engine.run_until(start_time + 60.0)
    idle = network.trace.category_bytes(RAFT_CATEGORY) - start
    print(f"idle heartbeat traffic: {idle / 1e3:.1f} KB per 60 s\n")
    return {"idle_kb": idle / 1e3}


def swim_half(positions) -> dict:
    print("--- SWIM: the low-overhead future-work direction ---")
    engine = EventEngine(seed=1)
    network = Network(engine, Topology(positions), ChannelModel(bandwidth=None))
    cluster = SwimCluster(list(range(len(positions))), network, engine)
    cluster.start()
    engine.run_until(10.0)
    healthy = all(
        status is MemberStatus.ALIVE
        for status in cluster.view_of(0).values()
    )
    print(f"stable membership view after 10 s: {healthy}")

    start = network.trace.category_bytes(SWIM_CATEGORY)
    start_time = engine.now
    engine.run_until(start_time + 60.0)
    idle = network.trace.category_bytes(SWIM_CATEGORY) - start
    print(f"idle probe traffic: {idle / 1e3:.1f} KB per 60 s")

    victim = next(
        n for n in cluster.nodes
        if network.topology.is_connected_subset(
            [m for m in cluster.nodes if m != n]
        )
    )
    cluster.crash(victim)
    elapsed = cluster.wait_for_detection(victim, timeout=90)
    print(f"node {victim} crashed → declared DEAD cluster-wide in {elapsed:.1f} s\n")
    return {"idle_kb": idle / 1e3}


def main() -> None:
    engine = EventEngine(seed=7)
    positions = connected_random_positions(9, engine.np_rng)

    raft_stats = raft_half(positions)
    swim_stats = swim_half(positions)

    print_table(
        "Idle membership-maintenance traffic (same 9-node edge network)",
        ["substrate", "KB per 60 s", "vs Raft"],
        [
            ["Raft heartbeats", round(raft_stats["idle_kb"], 1), "1.0×"],
            [
                "SWIM probes",
                round(swim_stats["idle_kb"], 1),
                f"{raft_stats['idle_kb'] / swim_stats['idle_kb']:.1f}× cheaper",
            ],
        ],
    )
    print("Raft gives linearisable general-information consensus; SWIM gives")
    print("eventually-consistent membership at a fraction of the radio cost —")
    print("the trade the paper's future-work section proposes to make.")


if __name__ == "__main__":
    main()
