#!/usr/bin/env python3
"""IoT sensing-as-a-service marketplace (the paper's §I motivating scenario).

A neighbourhood of IoT sensors sells readings to subscribers: air-quality
stations, traffic cameras, and smart-home energy meters publish for-profit
data; paying consumers (10 % of nodes per item) fetch it through the
blockchain's metadata index, with micro-payment-style incentives credited
to producers, storers, and miners on-chain.

The script runs a two-hour market day and prints a marketplace report:
catalogue, per-node earnings, delivery quality, and fairness.

Run:  python examples/iot_data_marketplace.py
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

from repro.core import PAPER_CONFIG
from repro.metrics import gini_coefficient, print_table
from repro.sim import ExperimentSpec, run_experiment


def main() -> None:
    print("=== IoT data marketplace: 20 sensors, 2-hour market day ===")

    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=2.0,  # a busy sensing neighbourhood
        requester_fraction=0.10,  # paying subscribers per item
    )
    spec = ExperimentSpec(
        node_count=20, config=config, seed=7, duration_minutes=120,
        mobility_epoch_minutes=10.0,
    )
    result = run_experiment(spec)
    metrics = result.metrics
    chain = result.cluster.longest_chain_node().chain

    # --- catalogue -----------------------------------------------------------
    catalogue = Counter(
        item.data_type for block in chain.blocks for item in block.metadata_items
    )
    print_table(
        "Published catalogue",
        ["data type", "items on-chain"],
        sorted(catalogue.items(), key=lambda kv: -kv[1]),
    )

    # --- producer / miner earnings -------------------------------------------
    state = chain.state
    now = result.cluster.engine.now
    rows = []
    for node_id in result.cluster.node_ids:
        rows.append(
            [
                node_id,
                metrics.blocks_mined.get(node_id, 0),
                state.stored_items(node_id, now),
                round(state.tokens(node_id), 2),
            ]
        )
    print_table(
        "Per-device ledger (tokens = mining + storage incentives)",
        ["node", "blocks mined", "items stored", "token balance"],
        rows,
    )

    # --- marketplace quality ---------------------------------------------------
    served = len(metrics.delivery_times)
    print_table(
        "Marketplace quality",
        ["metric", "value"],
        [
            ["items published", metrics.data_items_produced],
            ["subscriber fetches served", served],
            ["fetches failed", metrics.failed_requests],
            ["avg delivery time (s)", round(metrics.average_delivery_time(), 3)],
            ["p95 delivery time (s)", round(metrics.delivery_summary().p95, 3)],
            ["storage fairness (Gini)", round(metrics.storage_gini(), 4)],
            ["token fairness (Gini)", round(
                gini_coefficient([state.tokens(n) for n in result.cluster.node_ids]), 4
            )],
            ["avg traffic per device (MB)", round(metrics.average_node_megabytes(), 1)],
            ["blocks mined", metrics.chain_height()],
        ],
    )
    print("Every payment, placement, and mining win above is derived from the")
    print("chain itself — any device can re-validate the full history.")


if __name__ == "__main__":
    main()
