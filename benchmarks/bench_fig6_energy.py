"""Fig. 6 reproduction — remaining battery vs blocks mined, PoW vs PoS.

The paper mines on a fully charged Galaxy S8 with PoW at difficulty 4
(25 s average block time) and PoS tuned to the same block time, recording
the remaining battery after each block.  Reported anchors:

* PoW: ≈4 blocks per 1 % battery; >50 % battery gone in 84 minutes.
* PoS: ≈11 blocks per 1 % battery; <20 % battery gone in 84 minutes.
* Headline: PoS uses ≈64 % less energy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pos import compute_amendment, compute_hit, mining_delay
from repro.core.pow import PowMiner
from repro.energy.meter import EnergyMeter
from repro.metrics.report import render_table

BLOCK_TIME = 25.0  # seconds, both algorithms (paper Section VI-C)
SESSION_MINUTES = 84.0  # the paper's run length
M = 2**64


def _mine_pow_session(seed: int):
    """Battery series for an 84-minute PoW session."""
    rng = np.random.default_rng(seed)
    meter = EnergyMeter()
    miner = PowMiner(meter, difficulty=4)
    series = []
    elapsed = 0.0
    while elapsed < SESSION_MINUTES * 60 and not meter.depleted:
        result = miner.mine_block(rng)
        elapsed += result.duration_seconds
        series.append((len(series) + 1, elapsed, meter.remaining_percent))
    return series


def _mine_pos_session(seed: int):
    """Battery series for an 84-minute PoS session at the same block time."""
    meter = EnergyMeter()
    amendment = compute_amendment(M, 1, BLOCK_TIME, 1.0)
    series = []
    elapsed = 0.0
    pos_hash = f"fig6-seed-{seed}"
    while elapsed < SESSION_MINUTES * 60 and not meter.depleted:
        hit = compute_hit(pos_hash, "fig6-account", M)
        pos_hash = pos_hash + "x"
        delay = mining_delay(hit, 1.0, 1.0, amendment)
        meter.charge_pos_ticks(delay)
        elapsed += delay
        series.append((len(series) + 1, elapsed, meter.remaining_percent))
    return series


def test_fig6_battery_drain(benchmark):
    pow_series, pos_series = benchmark.pedantic(
        lambda: (_mine_pow_session(0), _mine_pos_session(0)), rounds=1, iterations=1
    )
    # Print the figure as a sampled series.
    rows = []
    for minutes in range(0, int(SESSION_MINUTES) + 1, 12):
        t = minutes * 60
        pow_point = next(
            (p for p in reversed(pow_series) if p[1] <= t), (0, 0.0, 100.0)
        )
        pos_point = next(
            (p for p in reversed(pos_series) if p[1] <= t), (0, 0.0, 100.0)
        )
        rows.append([minutes, pow_point[0], pow_point[2], pos_point[0], pos_point[2]])
    print()
    print(
        render_table(
            "Fig. 6 — remaining battery vs mining time (Galaxy S8 model)",
            ["minutes", "PoW blocks", "PoW battery %", "PoS blocks", "PoS battery %"],
            rows,
        )
    )
    from repro.metrics.ascii_plot import series_plot

    print()
    print(
        series_plot(
            [row[0] for row in rows],
            [[row[2] for row in rows], [row[4] for row in rows]],
            ["PoW battery %", "PoS battery %"],
        )
    )

    pow_final = pow_series[-1][2]
    pos_final = pos_series[-1][2]
    pow_blocks = pow_series[-1][0]
    pos_blocks = pos_series[-1][0]
    pow_blocks_per_percent = pow_blocks / (100.0 - pow_final)
    pos_blocks_per_percent = pos_blocks / (100.0 - pos_final)
    print(f"\nPoW: {pow_blocks_per_percent:.1f} blocks per 1% battery "
          f"(paper: ~4); consumed {100 - pow_final:.1f}% in 84 min (paper: >50%)")
    print(f"PoS: {pos_blocks_per_percent:.1f} blocks per 1% battery "
          f"(paper: ~11); consumed {100 - pos_final:.1f}% in 84 min (paper: <20%)")

    # Paper anchors (generous tolerance: attempt counts are sampled).
    assert pow_blocks_per_percent == pytest.approx(4.0, rel=0.3)
    assert pos_blocks_per_percent == pytest.approx(11.0, rel=0.3)
    assert 100.0 - pow_final > 50.0
    assert 100.0 - pos_final < 20.0


def test_fig6_energy_saving_headline(benchmark):
    def saving():
        rng = np.random.default_rng(1)
        pow_meter = EnergyMeter()
        pow_miner = PowMiner(pow_meter, difficulty=4)
        for _ in range(100):
            pow_miner.mine_block(rng)
        pow_per_block = pow_meter.total_consumed() / 100

        pos_meter = EnergyMeter()
        pos_meter.charge_pos_ticks(100 * BLOCK_TIME)
        pos_per_block = pos_meter.total_consumed() / 100
        return 100.0 * (1.0 - pos_per_block / pow_per_block)

    value = benchmark.pedantic(saving, rounds=1, iterations=1)
    print(f"\nPoS consumes {value:.1f}% less energy per block than PoW "
          f"(paper: 64% less)")
    assert value == pytest.approx(64.0, abs=8.0)
