"""Ablation A6 — data migration: operations vs drift (the paper's §VII).

"how to use less operation to achieve less offset from the optimal result"

Method: take placements that were optimal on an initial topology, advance
the network through mobility epochs (hop distances shift, storage fills
drift), and measure how far those stale placements drift from the new
optimum.  Then sweep the repair budget: how many add/drop/swap operations
does it take to pull the drift back down?

The printed frontier is the answer the paper's future-work section asks
for; the assertions pin its shape (drift accumulates without migration;
the first couple of operations recover most of it).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.migration import placement_drift, plan_migration
from repro.facility.costs import build_storage_ufl
from repro.facility.greedy import solve_greedy
from repro.metrics.report import render_table
from repro.sim.cluster import build_cluster

EPOCHS = 6
ITEMS = 20
BUDGETS = (0, 1, 2, 4)


def _drift_study(seed: int = 5, node_count: int = 20):
    """Returns per-budget mean drift after topology churn."""
    cluster = build_cluster(node_count, SystemConfig(), seed=seed)
    rng = np.random.default_rng(seed)
    ranges = [30.0] * node_count
    total = np.full(node_count, 250.0)

    # Place ITEMS items optimally on the initial topology.
    used = rng.uniform(5, 60, size=node_count)
    hops = cluster.topology.hop_matrix()
    placements = []
    for _ in range(ITEMS):
        problem = build_storage_ufl(used, total, hops, ranges)
        solution = solve_greedy(problem)
        placements.append(set(solution.open_facilities))
        for node in solution.open_facilities:
            used[node] += 1

    # Let the world move: several mobility epochs + storage drift.
    for _ in range(EPOCHS):
        cluster.advance_mobility_epoch()
        used += rng.uniform(0, 8, size=node_count)
        used = np.minimum(used, 240.0)
    new_hops = cluster.topology.hop_matrix()
    problem_now = build_storage_ufl(used, total, new_hops, ranges)

    stale_drifts = [
        placement_drift(problem_now, sorted(replicas)) for replicas in placements
    ]
    results = {0: float(np.mean(stale_drifts))}
    transfer_counts = {0: 0}
    for budget in BUDGETS[1:]:
        drifts, transfers = [], 0
        for replicas in placements:
            plan = plan_migration(problem_now, sorted(replicas), max_operations=budget)
            drifts.append(plan.final_drift)
            transfers += plan.transfers
        results[budget] = float(np.mean(drifts))
        transfer_counts[budget] = transfers
    return results, transfer_counts


def test_ablation_migration_frontier(benchmark):
    results, transfers = benchmark.pedantic(_drift_study, rounds=1, iterations=1)
    rows = [
        [budget, results[budget], transfers[budget],
         transfers[budget] * 1.0]  # 1 MB per transferred replica
        for budget in BUDGETS
    ]
    print()
    print(
        render_table(
            "Ablation A6 — migration budget vs placement drift "
            f"(drift = cost / optimal, {ITEMS} items, {EPOCHS} epochs of churn)",
            ["ops budget", "mean drift", "data transfers", "traffic (MB)"],
            rows,
        )
    )
    # Drift accumulated while the topology moved.
    assert results[0] > 1.0
    # Migration monotonically recovers toward optimal.
    drifts = [results[b] for b in BUDGETS]
    assert drifts == sorted(drifts, reverse=True)
    # A small budget recovers most of the drift (the paper's "less
    # operation, less offset" trade-off has a steep front).
    recovered_by_2 = (results[0] - results[2]) / max(results[0] - 1.0, 1e-9)
    assert recovered_by_2 > 0.5
