"""Performance micro-benchmarks of the substrates.

Not paper figures — these keep the simulator's hot paths honest: event
throughput, broadcast dissemination, hop-matrix computation, PoS hit
derivation, and block validation, all at the paper's 50-node scale.
"""

from __future__ import annotations

from repro.core.account import Account
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.core.block import Block
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Topology, connected_random_positions
from repro.simnet.transport import Network


def test_bench_event_engine_throughput(benchmark):
    def run_10k_events():
        engine = EventEngine(seed=0)
        counter = []
        for i in range(10_000):
            engine.schedule(float(i % 100), counter.append, i)
        engine.run()
        return len(counter)

    assert benchmark(run_10k_events) == 10_000


def test_bench_broadcast_50_nodes(benchmark):
    engine = EventEngine(seed=1)
    topology = Topology(connected_random_positions(50, engine.np_rng))
    network = Network(engine, topology, ChannelModel())
    for node in range(50):
        network.register(node, lambda *a: None)

    def broadcast_and_drain():
        reached = network.broadcast(0, "block", 10_000, "bench")
        engine.run()
        return reached

    assert benchmark(broadcast_and_drain) == 49


def test_bench_hop_matrix_50_nodes(benchmark):
    engine = EventEngine(seed=2)
    positions = connected_random_positions(50, engine.np_rng)

    def rebuild_and_compute():
        topology = Topology(positions)
        return topology.hop_matrix()

    matrix = benchmark(rebuild_and_compute)
    assert matrix.shape == (50, 50)


def test_bench_pos_hit_round_50_nodes(benchmark):
    """One full mining round: every node derives its hit and delay."""
    addresses = [Account.for_node(3, i).address for i in range(50)]
    modulus = 2**64

    def round_of_hits():
        delays = []
        for address in addresses:
            hit = compute_hit("previous-pos-hash", address, modulus)
            delays.append(mining_delay(hit, 2.0, 5.0, 1e12))
        return min(delays)

    assert benchmark(round_of_hits) >= 1


def test_bench_block_validation(benchmark):
    config = SystemConfig()
    accounts = {i: Account.for_node(4, i) for i in range(20)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(20)), config, address_of)
    parent = chain.tip
    miner = 7
    address = accounts[miner].address
    hit = compute_hit(parent.pos_hash, address, config.hit_modulus)
    amendment = chain.state.amendment(parent.timestamp)
    delay = mining_delay(hit, 1.0, 1.0, amendment)
    block = Block(
        index=1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        storing_nodes=(miner,),
    )

    benchmark(lambda: chain.validate_child(block))
