"""Federation scale sweep: clusters × nodes throughput and queue depth.

The point of sharding the edge into K clusters under a fog tier is that
aggregate throughput grows with K while each cluster's load stays flat —
every shard mines its own chain against its own workload, and only
bloom-summarized directory traffic crosses the fog. The sweep pins both
halves: ``aggregate_items_per_minute`` must grow monotonically in K, and
the deepest per-cluster mempool must stay bounded instead of growing
with federation size.

The resulting grid is merged into the repo-root ``BENCH_headline.json``
under a ``federation`` key (read-modify-write — the single-cluster
headline record is preserved).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import PAPER_CONFIG
from repro.federation import FederationSpec, run_federation

#: Cluster counts swept at a fixed per-cluster size.
FED_CLUSTER_COUNTS = (1, 2, 4)
FED_NODES_PER_CLUSTER = 8

#: Backlog bound: the deepest mempool any cluster may end the run with.
#: One block interval's worth of production plus slack — a queue that
#: grew with K (or with time) would blow far past this.
MAX_MEMPOOL_DEPTH = 8


def _sweep_cell(clusters: int) -> dict:
    config = replace(
        PAPER_CONFIG, data_items_per_minute=2.0, expected_block_interval=30.0
    )
    spec = FederationSpec(
        cluster_count=clusters,
        nodes_per_cluster=FED_NODES_PER_CLUSTER,
        config=config,
        seed=5,
        duration_minutes=10.0,
    )
    aggregate = run_federation(spec).aggregate
    return {
        "clusters": clusters,
        "nodes_per_cluster": FED_NODES_PER_CLUSTER,
        "items_per_minute": aggregate["aggregate_items_per_minute"],
        "blocks_per_minute": aggregate["aggregate_blocks_per_minute"],
        "max_mempool_depth": aggregate["max_mempool_depth"],
        "lookups_ok": aggregate["lookups_ok"],
        "lookups_failed": aggregate["lookups_failed"],
        "migrations": aggregate["migrations"],
        "directory_staleness": aggregate["directory_staleness"],
    }


def test_federation_scale_sweep(headline_sink):
    cells = {f"k{clusters}": _sweep_cell(clusters) for clusters in FED_CLUSTER_COUNTS}

    throughputs = [cells[f"k{k}"]["items_per_minute"] for k in FED_CLUSTER_COUNTS]
    assert all(
        later > earlier for earlier, later in zip(throughputs, throughputs[1:])
    ), f"aggregate throughput must grow with cluster count: {throughputs}"

    for key, cell in cells.items():
        assert cell["max_mempool_depth"] <= MAX_MEMPOOL_DEPTH, (
            f"{key}: per-cluster backlog {cell['max_mempool_depth']} exceeds "
            f"bound {MAX_MEMPOOL_DEPTH}"
        )
        assert cell["lookups_failed"] == 0

    # Multi-cluster cells must actually exercise the fog tier.
    assert all(
        cells[f"k{k}"]["lookups_ok"] > 0 for k in FED_CLUSTER_COUNTS if k > 1
    )

    print(headline_sink({"federation": cells}))
