"""Shared fixtures for the benchmark harness.

The expensive simulation sweeps are session-scoped so the per-panel
benchmarks (Fig. 4a/b/c share one sweep; Fig. 5a/b share another) run the
workload once and each render their own panel.

Setting ``REPRO_BENCH_PERSIST=DIR`` makes every sweep cell a durable run
(:mod:`repro.persist`) in its own subdirectory of DIR: a killed sweep
session resumes each interrupted cell from its last checkpoint instead
of restarting the whole grid, and determinism guarantees the resumed
cell's metrics equal an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.core.errors import PersistError
from repro.metrics.collector import RunMetrics
from repro.sim.runner import run_experiment
from repro.sim.scenarios import (
    PAPER_DATA_RATES,
    PAPER_NODE_COUNTS,
    data_amount_scenario,
    placement_scenario,
)
from repro.version import package_version

#: Seeds averaged per cell ("All results are the average of 2 simulations").
PAPER_SEED_COUNT = 2

#: Seed for the single-cell benches (full-scale anchor, scale sweep); the
#: averaged sweeps use ``range(PAPER_SEED_COUNT)`` instead.
BENCH_SEED = 5

#: Where the headline sweep record accumulates the perf trajectory.
REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_HEADLINE_NAME = "BENCH_headline.json"


@pytest.fixture(scope="session")
def headline_sink():
    """Merging writer for the repo-root ``BENCH_headline.json`` record.

    Read-modify-write: the payload's top-level keys are merged into the
    existing record (the way ``bench_federation`` merges its grid), so
    independent bench modules — the headline sweep, the federation
    sweep, the scale sweep — can each contribute their section without
    clobbering the others.  Successive commits then carry a comparable
    perf fingerprint at a fixed path.
    """

    def write(payload: dict) -> Path:
        target = REPO_ROOT / BENCH_HEADLINE_NAME
        record = (
            json.loads(target.read_text(encoding="utf-8"))
            if target.exists()
            else {}
        )
        record.update(payload)
        record["schema"] = "repro.bench.headline/v1"
        record["version"] = package_version()
        with target.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    return write


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """The shared seed for single-cell benches (see :data:`BENCH_SEED`)."""
    return BENCH_SEED


def _cell_metrics(spec, label: str) -> RunMetrics:
    """Run one sweep cell, durably when ``REPRO_BENCH_PERSIST`` is set."""
    root = os.environ.get("REPRO_BENCH_PERSIST")
    if not root:
        return run_experiment(spec).metrics
    from repro.persist import resume_run, run_persistent
    from repro.persist.resume import MANIFEST_NAME

    directory = Path(root) / label
    try:
        if (directory / MANIFEST_NAME).exists():
            return resume_run(directory).metrics  # finish a killed cell
        return run_persistent(spec, directory).metrics
    except PersistError:
        # Leftover from an earlier, already-finished (or damaged)
        # session: runs are deterministic, so redo the cell cleanly.
        shutil.rmtree(directory, ignore_errors=True)
        return run_persistent(spec, directory).metrics


def _average(metrics_list):
    """Average the headline scalars over repeated runs of one cell."""
    return {
        "avg_node_mb": sum(m.average_node_megabytes() for m in metrics_list)
        / len(metrics_list),
        "gini": sum(m.storage_gini() for m in metrics_list) / len(metrics_list),
        "delivery": sum(m.average_delivery_time() for m in metrics_list)
        / len(metrics_list),
        "failed": sum(m.failed_requests for m in metrics_list),
        "served": sum(len(m.delivery_times) for m in metrics_list),
        "height": sum(m.chain_height() for m in metrics_list) / len(metrics_list),
        "interval": sum(m.mean_block_interval() for m in metrics_list)
        / len(metrics_list),
    }


@pytest.fixture(scope="session")
def fig4_sweep() -> Dict[Tuple[int, float], dict]:
    """The Fig. 4 grid: node count × data rate, averaged over seeds."""
    results: Dict[Tuple[int, float], dict] = {}
    for node_count in PAPER_NODE_COUNTS:
        for rate in PAPER_DATA_RATES:
            cell = [
                _cell_metrics(
                    data_amount_scenario(node_count, rate, seed=seed),
                    f"fig4-n{node_count}-r{rate:g}-s{seed}",
                )
                for seed in range(PAPER_SEED_COUNT)
            ]
            results[(node_count, rate)] = _average(cell)
    return results


@pytest.fixture(scope="session")
def fig5_sweep() -> Dict[Tuple[str, int], dict]:
    """The Fig. 5 grid: placement strategy × node count (1 item/minute)."""
    results: Dict[Tuple[str, int], dict] = {}
    for solver in ("greedy", "random"):
        for node_count in PAPER_NODE_COUNTS:
            cell = [
                _cell_metrics(
                    placement_scenario(node_count, solver, seed=seed),
                    f"fig5-{solver}-n{node_count}-s{seed}",
                )
                for seed in range(PAPER_SEED_COUNT)
            ]
            results[(solver, node_count)] = _average(cell)
    return results
