"""Fog-chaos headline: lookup availability and recovery latency under attack.

One super-peer runs the summary-poisoner adversary against a 3-cluster
federation while the defenses (gateway attestation, checkpoint cross-check,
misbehavior scoring) detect, quarantine, and re-home around it.  The bench
pins the two numbers the threat model promises: the cross-cluster lookup
success rate stays at or above the containment floor, and the directory
self-heals within a bounded latency of the attack window opening.

The cell is merged into the repo-root ``BENCH_headline.json`` under a
``fog_chaos`` key (read-modify-write — sibling sections are preserved).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import PAPER_CONFIG
from repro.federation import (
    FOG_LOOKUP_SUCCESS_FLOOR,
    FederatedChaosSpec,
    FederationSpec,
    run_federated_chaos,
)

#: The attacked super-peer and when its window opens (simulated seconds).
ADVERSARY_PEER = 0
ATTACK_START_MINUTES = 1.5

#: Recovery bound: the poisoner must be quarantined (and its clusters
#: re-homed — both happen atomically) within two directory refresh /
#: gossip cycles of the window opening.  At the default 30 s cadence
#: that is one poisoned refresh, one gossiped rejection at each honest
#: peer, and one digest cross-check — far under this ceiling.
MAX_RECOVERY_SECONDS = 120.0


def test_fog_chaos_headline(headline_sink, bench_seed):
    config = replace(
        PAPER_CONFIG, data_items_per_minute=2.0, expected_block_interval=30.0
    )
    spec = FederatedChaosSpec(
        federation=FederationSpec(
            cluster_count=3,
            nodes_per_cluster=4,
            config=config,
            seed=bench_seed,
            duration_minutes=8.0,
            super_peer_count=2,
        ),
        fog_adversaries={"summary_poisoner": (ADVERSARY_PEER,)},
        start_minutes=ATTACK_START_MINUTES,
    )
    result = run_federated_chaos(spec)
    fog = result.verdict["fog"]

    assert fog["ok"], f"fog containment violated: {fog}"
    assert fog["quarantined_peers"] == [ADVERSARY_PEER]
    assert fog["honest_peers_quarantined"] == []
    assert fog["replicas_converged"]

    assert fog["success_floor_applies"]
    assert fog["lookup_success_rate"] >= FOG_LOOKUP_SUCCESS_FLOOR

    quarantined_at = fog["quarantined_at"][str(ADVERSARY_PEER)]
    recovery_seconds = quarantined_at - ATTACK_START_MINUTES * 60.0
    assert 0.0 <= recovery_seconds <= MAX_RECOVERY_SECONDS, (
        f"quarantine landed {recovery_seconds:.1f}s after the window opened "
        f"(bound {MAX_RECOVERY_SECONDS:.0f}s)"
    )

    cell = {
        "adversary": "summary_poisoner",
        "adversary_peer": ADVERSARY_PEER,
        "clusters": spec.federation.cluster_count,
        "super_peers": spec.federation.super_peer_count,
        "seed": bench_seed,
        "lookups_ok": fog["lookups_ok"],
        "lookups_failed": fog["lookups_failed"],
        "lookup_success_rate": fog["lookup_success_rate"],
        "lookup_fallbacks": fog["lookup_fallbacks"],
        "attestation_rejected": fog["attestation_rejected"],
        "recovery_seconds": recovery_seconds,
        "rehomed_clusters": fog["rehomed_clusters"],
    }
    print(headline_sink({"fog_chaos": cell}))
