"""Ablation A5 — general-information consensus overhead: Raft vs SWIM.

Section VII: "We partly use the raft algorithm in our simulation, but the
approach transmits a large number of heartbeat messages.  In the future,
we will develop a new consensus algorithm for edge environments with less
message overhead."

This bench builds that future: the same idle cluster runs Raft (leader
heartbeats to every follower, several times a second) and SWIM (one probe
per node per second with piggybacked dissemination), and compares the
idle membership-maintenance traffic across network sizes, plus SWIM's
failure-detection latency.
"""

from __future__ import annotations

from repro.membership import SWIM_CATEGORY, SwimCluster
from repro.metrics.report import render_table
from repro.raft import RAFT_CATEGORY, RaftCluster
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Topology, connected_random_positions
from repro.simnet.transport import Network

NODE_COUNTS = (10, 20, 30)
WINDOW_SECONDS = 60.0


def _idle_bytes_raft(size: int, seed: int) -> float:
    engine = EventEngine(seed=seed)
    positions = connected_random_positions(size, engine.np_rng)
    network = Network(engine, Topology(positions), ChannelModel(bandwidth=None))
    cluster = RaftCluster(list(range(size)), network, engine)
    cluster.start()
    cluster.wait_for_leader(timeout=60.0)
    start = network.trace.category_bytes(RAFT_CATEGORY)
    engine.run_until(engine.now + WINDOW_SECONDS)
    return (network.trace.category_bytes(RAFT_CATEGORY) - start) / size


def _idle_bytes_swim(size: int, seed: int) -> float:
    engine = EventEngine(seed=seed)
    positions = connected_random_positions(size, engine.np_rng)
    network = Network(engine, Topology(positions), ChannelModel(bandwidth=None))
    cluster = SwimCluster(list(range(size)), network, engine)
    cluster.start()
    engine.run_until(5.0)  # settle
    start = network.trace.category_bytes(SWIM_CATEGORY)
    engine.run_until(engine.now + WINDOW_SECONDS)
    return (network.trace.category_bytes(SWIM_CATEGORY) - start) / size


def test_ablation_membership_overhead(benchmark):
    def sweep():
        rows = []
        for size in NODE_COUNTS:
            raft_bytes = _idle_bytes_raft(size, seed=size)
            swim_bytes = _idle_bytes_swim(size, seed=size)
            rows.append(
                [size, raft_bytes / 1e3, swim_bytes / 1e3, raft_bytes / swim_bytes]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            f"Ablation A5 — idle membership traffic per node over "
            f"{WINDOW_SECONDS:.0f}s (KB)",
            ["nodes", "Raft heartbeats", "SWIM probes", "Raft/SWIM"],
            rows,
        )
    )
    # SWIM undercuts Raft by a wide margin at every network size.  (In a
    # multi-hop radio network the per-node *byte* cost of both protocols
    # grows with the network diameter — every hop is billed — so the gap
    # shows up as a near-constant ~an-order-of-magnitude ratio rather than
    # the flat-vs-linear curves of the LAN setting.)
    for _, raft_kb, swim_kb, ratio in rows:
        assert ratio > 3.0


def test_ablation_swim_detection_latency(benchmark):
    def detect():
        engine = EventEngine(seed=11)
        positions = connected_random_positions(12, engine.np_rng)
        network = Network(engine, Topology(positions), ChannelModel(bandwidth=None))
        cluster = SwimCluster(list(range(12)), network, engine)
        cluster.start()
        engine.run_until(5.0)
        victim = next(
            n for n in range(12)
            if network.topology.is_connected_subset(
                [m for m in range(12) if m != n]
            )
        )
        cluster.crash(victim)
        return cluster.wait_for_detection(victim, timeout=120.0)

    elapsed = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(f"\nSWIM detected a crashed member cluster-wide in {elapsed:.1f}s "
          f"(probe period 1 s, suspicion timeout 5 s)")
    assert elapsed < 60.0
