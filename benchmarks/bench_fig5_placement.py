"""Fig. 5 reproduction — optimal placement vs replica-matched random store.

Fig. 5 compares the UFL-optimal placement against "a naive solution that
data are randomly stored" with the same replica counts, at 1 item/minute
over 10–50 nodes: (a) average data delivery time, (b) average transmission
overhead.

Shape claims checked:

* the optimal placement delivers faster on average (the abstract's
  "15 % less time" headline — both ratio forms are printed),
* the message overhead of the two strategies is similar ("does not cost
  extra communicational overhead").
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import render_table
from repro.sim.scenarios import PAPER_NODE_COUNTS


def _series(sweep, key):
    rows = []
    for node_count in PAPER_NODE_COUNTS:
        optimal = sweep[("greedy", node_count)][key]
        random_ = sweep[("random", node_count)][key]
        rows.append([node_count, optimal, random_, optimal / random_ if random_ else float("nan")])
    return rows


def test_fig5a_delivery_time(benchmark, fig5_sweep):
    rows = benchmark.pedantic(
        _series, args=(fig5_sweep, "delivery"), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Fig. 5(a) — average data delivery time (s)",
            ["nodes", "optimal", "random", "opt/rand"],
            rows,
        )
    )
    optimal_mean = np.mean([row[1] for row in rows])
    random_mean = np.mean([row[2] for row in rows])
    saving = 100.0 * (1.0 - optimal_mean / random_mean)
    print(f"\nOptimal placement uses {saving:.1f}% less delivery time on average")
    print(f"(optimal/random time ratio: {optimal_mean / random_mean:.2f})")
    # The optimal placement must win on average (paper: 15 % less time).
    assert optimal_mean < random_mean
    assert saving > 3.0


def test_fig5b_overhead(benchmark, fig5_sweep):
    rows = benchmark.pedantic(
        _series, args=(fig5_sweep, "avg_node_mb"), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Fig. 5(b) — average transmission per node (MB)",
            ["nodes", "optimal", "random", "opt/rand"],
            rows,
        )
    )
    # "The message overhead is almost the same between two strategies."
    for _, optimal, random_, _ratio in rows:
        assert optimal <= 1.4 * random_
    optimal_mean = np.mean([row[1] for row in rows])
    random_mean = np.mean([row[2] for row in rows])
    assert optimal_mean <= 1.2 * random_mean
