"""Ablation A8 — data availability vs fraction of malicious storers.

Section III-B-2's argument, measured: "there are always replicas for
certain data.  Unless all replicas of this piece of data are stored at
malicious nodes, there will always be available data pieces."

We plant an increasing fraction of :class:`DenyingNode` free-riders
(accept storage assignments, refuse to serve) and measure the request
success rate, the delivery-time penalty of claim-driven failover, and the
number of invalidity claims broadcast.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.adversary import DenyingNode
from repro.core.config import PAPER_CONFIG
from repro.metrics.report import render_table
from repro.sim.runner import ExperimentSpec, run_experiment

NODES = 20
FRACTIONS = (0.0, 0.1, 0.25, 0.4)
SEEDS = (0, 1)


def _run(fraction: float, seed: int):
    rng = np.random.default_rng(seed + 1000)
    count = int(round(fraction * NODES))
    malicious = sorted(
        int(n) for n in rng.choice(NODES, size=count, replace=False)
    )
    config = replace(
        PAPER_CONFIG, data_items_per_minute=1.0, expected_block_interval=30.0
    )
    spec = ExperimentSpec(
        node_count=NODES,
        config=config,
        seed=seed,
        duration_minutes=45.0,
        node_classes={node: DenyingNode for node in malicious},
    )
    result = run_experiment(spec)
    metrics = result.metrics
    served = len(metrics.delivery_times)
    total = served + metrics.failed_requests
    claims = sum(
        node.counters.claims_broadcast for node in result.cluster.nodes.values()
    )
    return {
        "success": served / total if total else float("nan"),
        "delivery": metrics.average_delivery_time(),
        "claims": claims,
    }


def test_ablation_byzantine_storers(benchmark):
    def sweep():
        rows = []
        for fraction in FRACTIONS:
            cells = [_run(fraction, seed) for seed in SEEDS]
            rows.append(
                [
                    f"{fraction:.0%}",
                    float(np.mean([c["success"] for c in cells])),
                    float(np.mean([c["delivery"] for c in cells])),
                    int(np.mean([c["claims"] for c in cells])),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            f"Ablation A8 — denying storers among {NODES} nodes "
            "(invalidity-claim protocol active)",
            ["malicious", "request success", "avg delivery (s)", "claims"],
            rows,
        )
    )
    by_fraction = {row[0]: row for row in rows}
    # The honest baseline serves everything.
    assert by_fraction["0%"][1] > 0.99
    # Replication + producer fallback keeps availability high even with
    # 25 % of nodes refusing to serve (the paper's §III-B-2 argument).
    assert by_fraction["25%"][1] > 0.95
    # Claims only appear once adversaries exist.
    assert by_fraction["0%"][3] == 0
    if by_fraction["40%"][3] == 0 and by_fraction["25%"][3] == 0:
        raise AssertionError("adversaries present but no claims were broadcast")