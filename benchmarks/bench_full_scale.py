"""Full-scale validation: one Fig. 4 cell at the paper's exact settings.

The sweep benches run 60-minute cells for turnaround; this bench runs a
single cell at the paper's full scale — 500 minutes, 60 s block interval,
250-slot storage — and checks the paper's *absolute* anchors:

* "maximum about 120 MB data are transmitted for a node",
* Gini < 0.15,
* delivery "overall 4 seconds in maximum ... for a node to get the
  desired data" (we check the mean and p95 of delivery times),
* ~500 blocks at the 60 s target interval.
"""

from __future__ import annotations

from repro.metrics.report import render_table
from repro.sim.runner import run_experiment
from repro.sim.scenarios import data_amount_scenario

NODES = 30
RATE = 2.0  # items/minute — the middle of the paper's 1–3 sweep


def test_full_scale_fig4_cell(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(
            data_amount_scenario(NODES, RATE, seed=0, full_scale=True)
        ),
        rounds=1,
        iterations=1,
    )
    metrics = result.metrics
    summary = metrics.delivery_summary()
    print()
    print(
        render_table(
            f"Full scale — {NODES} nodes, {RATE:g} items/min, 500 minutes "
            "(paper Section VI-A settings)",
            ["metric", "paper anchor", "measured"],
            [
                ["avg transmission per node (MB)", "~120 (payload-level)",
                 f"{metrics.average_node_megabytes():.0f} (per-hop, both ends)"],
                ["  ≈ payload-level equivalent", "",
                 f"{metrics.average_node_megabytes() / 2 / 2.5:.0f} (÷2 ends ÷~2.5 hops)"],
                ["storage Gini", "< 0.15", round(metrics.storage_gini(), 4)],
                ["mean delivery (s)", "≤ 4", round(metrics.average_delivery_time(), 3)],
                ["p95 delivery (s)", "≤ 4", round(summary.p95, 3)],
                ["blocks mined", "~500 (60 s target)", metrics.chain_height()],
                ["mean block interval (s)", "≈ 60", round(metrics.mean_block_interval(), 1)],
                ["data items produced", "~1000", metrics.data_items_produced],
                ["failed requests", "0", metrics.failed_requests],
            ],
        )
    )
    assert metrics.storage_gini() < 0.15
    assert metrics.average_delivery_time() < 4.0
    assert summary.p95 < 4.0
    # 500 min at a 60 s target: between ~350 and ~900 blocks (stake
    # heterogeneity pulls the realised interval somewhat under t0).
    assert 350 <= metrics.chain_height() <= 900
    # Storage capacity must never be breached over the full run.
    for node in result.cluster.nodes.values():
        assert node.storage.used_slots() <= node.storage.capacity
    # Failure rate below 1 %.
    served = len(metrics.delivery_times)
    assert metrics.failed_requests <= max(1, 0.01 * served)