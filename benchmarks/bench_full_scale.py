"""Full-scale validation: Fig. 4 at the paper's settings, plus a scale sweep.

Two benches live here:

* :func:`test_full_scale_fig4_cell` runs a single cell at the paper's
  full scale — 500 minutes, 60 s block interval, 250-slot storage — and
  checks the paper's *absolute* anchors: "maximum about 120 MB data are
  transmitted for a node", Gini < 0.15, delivery "overall 4 seconds in
  maximum", ~500 blocks at the 60 s target interval.

* :func:`test_scale_sweep_headline` pushes the *node count* an order of
  magnitude past the paper's 10–50 sweep (up to 400 nodes) on the
  fast-path configuration (``placement_solver="incremental"``, batched
  deliveries — digest-identical to the slow path, see DESIGN.md §13) and
  merges the measured cells into ``BENCH_headline.json`` under a
  ``"scale"`` key.

* :func:`test_scale_profile_headline` reruns the n=400 cell under the
  continuous sampling profiler (DESIGN.md §14) and merges the top-10
  self-time hot spots into ``BENCH_headline.json`` under a ``"profile"``
  key, so perf work can be aimed at — and regressions traced to — named
  functions rather than wall-clock deltas alone.

Scenario construction is hoisted out of the timed regions: the timer
measures ``run_experiment`` — the simulation — not spec building.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.core.config import PAPER_CONFIG
from repro.metrics.report import render_table
from repro.obs.live.profiler import SamplingProfiler, top_functions
from repro.sim.runner import ExperimentSpec, run_experiment
from repro.sim.scenarios import data_amount_scenario

NODES = 30
RATE = 2.0  # items/minute — the middle of the paper's 1–3 sweep

#: The scale sweep: an order of magnitude past the paper's 50-node ceiling.
SCALE_NODE_COUNTS = (100, 400)
SCALE_RATE = 2.0
SCALE_DURATION_MINUTES = 5.0
SCALE_BLOCK_INTERVAL = 30.0


def test_full_scale_fig4_cell(benchmark, bench_seed):
    # Build the spec outside the timed region: the benchmark times the
    # simulation, not scenario construction.
    spec = data_amount_scenario(NODES, RATE, seed=bench_seed, full_scale=True)
    result = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)
    metrics = result.metrics
    summary = metrics.delivery_summary()
    print()
    print(
        render_table(
            f"Full scale — {NODES} nodes, {RATE:g} items/min, 500 minutes "
            "(paper Section VI-A settings)",
            ["metric", "paper anchor", "measured"],
            [
                ["avg transmission per node (MB)", "~120 (payload-level)",
                 f"{metrics.average_node_megabytes():.0f} (per-hop, both ends)"],
                ["  ≈ payload-level equivalent", "",
                 f"{metrics.average_node_megabytes() / 2 / 2.5:.0f} (÷2 ends ÷~2.5 hops)"],
                ["storage Gini", "< 0.15", round(metrics.storage_gini(), 4)],
                ["mean delivery (s)", "≤ 4", round(metrics.average_delivery_time(), 3)],
                ["p95 delivery (s)", "≤ 4", round(summary.p95, 3)],
                ["blocks mined", "~500 (60 s target)", metrics.chain_height()],
                ["mean block interval (s)", "≈ 60", round(metrics.mean_block_interval(), 1)],
                ["data items produced", "~1000", metrics.data_items_produced],
                ["failed requests", "0", metrics.failed_requests],
            ],
        )
    )
    assert metrics.storage_gini() < 0.15
    assert metrics.average_delivery_time() < 4.0
    assert summary.p95 < 4.0
    # 500 min at a 60 s target: between ~350 and ~900 blocks (stake
    # heterogeneity pulls the realised interval somewhat under t0).
    assert 350 <= metrics.chain_height() <= 900
    # Storage capacity must never be breached over the full run.
    for node in result.cluster.nodes.values():
        assert node.storage.used_slots() <= node.storage.capacity
    # Failure rate below 1 %.
    served = len(metrics.delivery_times)
    assert metrics.failed_requests <= max(1, 0.01 * served)


def _scale_cell(node_count: int, seed: int) -> dict:
    """One seeded scale cell on the fast-path configuration."""
    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=SCALE_RATE,
        expected_block_interval=SCALE_BLOCK_INTERVAL,
        placement_solver="incremental",
    )
    spec = ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=SCALE_DURATION_MINUTES,
        mobility_epoch_minutes=10.0,
    )
    start = time.perf_counter()
    result = run_experiment(spec)
    wall_seconds = time.perf_counter() - start
    metrics = result.metrics
    return {
        "nodes": node_count,
        "seed": seed,
        "sim_minutes": SCALE_DURATION_MINUTES,
        "items_per_minute": SCALE_RATE,
        "placement_solver": "incremental",
        "wall_seconds": round(wall_seconds, 1),
        "data_items_produced": metrics.data_items_produced,
        "chain_height": metrics.chain_height(),
        "mean_delivery_seconds": round(metrics.average_delivery_time(), 3),
        "storage_gini": round(metrics.storage_gini(), 4),
        "failed_requests": metrics.failed_requests,
    }


def test_scale_sweep_headline(headline_sink, bench_seed):
    cells = {
        f"n{node_count}": _scale_cell(node_count, bench_seed)
        for node_count in SCALE_NODE_COUNTS
    }
    for key, cell in cells.items():
        # The protocol must stay healthy at 8× the paper's largest sweep
        # point: the chain advances, placements keep storage balanced,
        # and nothing fails to deliver.
        assert cell["chain_height"] >= 3, f"{key}: chain stalled"
        assert cell["data_items_produced"] > 0, f"{key}: no workload"
        assert cell["storage_gini"] < 0.15, f"{key}: unfair placement"
        assert cell["failed_requests"] == 0, f"{key}: lost deliveries"
    print(headline_sink({"scale": cells}))


@pytest.mark.profile
def test_scale_profile_headline(headline_sink, bench_seed):
    """Profile the largest scale cell and pin its hot spots to the record."""
    node_count = SCALE_NODE_COUNTS[-1]
    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=SCALE_RATE,
        expected_block_interval=SCALE_BLOCK_INTERVAL,
        placement_solver="incremental",
    )
    spec = ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=bench_seed,
        duration_minutes=SCALE_DURATION_MINUTES,
        mobility_epoch_minutes=10.0,
    )
    start = time.perf_counter()
    with SamplingProfiler(hz=199.0) as profiler:
        result = run_experiment(spec)
    wall_seconds = time.perf_counter() - start
    assert result.metrics.chain_height() >= 3

    folded = profiler.folded()
    hot = top_functions(folded, n=10)
    assert hot, "profiler captured no samples over the n=400 cell"
    print()
    print(
        render_table(
            f"Hot spots — n={node_count} cell, {profiler.samples} samples "
            f"@ {profiler.hz:g} Hz over {wall_seconds:.1f} s",
            ["function", "self", "self %", "total", "total %"],
            [
                [row["function"], row["self"], row["self_pct"],
                 row["total"], row["total_pct"]]
                for row in hot
            ],
        )
    )
    print(headline_sink({
        "profile": {
            "nodes": node_count,
            "seed": bench_seed,
            "hz": profiler.hz,
            "samples": profiler.samples,
            "wall_seconds": round(wall_seconds, 1),
            "top_functions": hot,
        }
    }))
