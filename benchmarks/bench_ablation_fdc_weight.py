"""Ablation A1 — the FDC:RDC scaling factor A.

The paper fixes A = 1000 "after some tests ... which produces the best
result" (Section IV-A-3) without showing the sweep.  This bench regenerates
it.  A controls the replication/locality trade-off:

* tiny A → facility (storage) cost is negligible → items replicate almost
  everywhere → instant delivery but massive storage use and dissemination
  traffic (untenable at the paper's 250-slot capacity over 500 minutes);
* huge A → storage is precious → single far-away replicas → slow delivery.

A = 1000 buys near-minimal storage footprint while keeping delivery within
the paper's ≤4 s envelope and Gini < 0.15.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import render_table
from repro.sim.runner import run_experiment
from repro.sim.scenarios import fdc_weight_scenario

WEIGHTS = (1.0, 10.0, 100.0, 1000.0, 10000.0)
SEEDS = (0, 1)


def test_ablation_fdc_weight(benchmark):
    def sweep():
        rows = []
        for weight in WEIGHTS:
            cells = [
                run_experiment(
                    fdc_weight_scenario(weight, node_count=20, seed=seed)
                )
                for seed in SEEDS
            ]
            rows.append(
                [
                    weight,
                    float(np.mean([c.metrics.storage_gini() for c in cells])),
                    float(np.mean([c.metrics.average_delivery_time() for c in cells])),
                    float(np.mean([np.mean(c.metrics.storage_used) for c in cells])),
                    float(np.mean([c.metrics.average_node_megabytes() for c in cells])),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation A1 — FDC weight A (paper fixes A = 1000)",
            ["A", "Gini", "delivery (s)", "slots used/node", "MB/node"],
            rows,
        )
    )
    by_weight = {row[0]: row for row in rows}
    # Storage footprint shrinks as A grows (the point of the FDC term).
    assert by_weight[1000.0][3] < 0.5 * by_weight[1.0][3]
    # So does dissemination traffic.
    assert by_weight[1000.0][4] < by_weight[1.0][4]
    # The cost: delivery slows as replication thins...
    assert by_weight[1000.0][2] >= by_weight[1.0][2]
    # ...but stays within the paper's ≤4 s envelope at the chosen weight.
    assert by_weight[1000.0][2] < 4.0
    # And fairness stays within the paper's bound.
    assert by_weight[1000.0][1] < 0.15
