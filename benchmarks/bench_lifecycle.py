"""Lifecycle headline — bounded hot storage over a 50k-block chain.

Drives the chain lifecycle subsystem at a scale no simulated workload
reaches: 50 000 blocks minted straight at the :class:`Blockchain` level
(valid PoS timestamps, deterministic miner rotation), with in-memory
pruning after every block and periodic chainstore compaction into the
cold archive.  Asserts the hot tier never exceeds the policy bound
``hot_bound_blocks(config)`` while the archive absorbs everything below
the pruning horizon, and records the footprint split plus throughput
under the ``"lifecycle"`` key of ``BENCH_headline.json``.
"""

from __future__ import annotations

import time

from repro.core.account import Account
from repro.core.block import Block
from repro.core.blockchain import Blockchain
from repro.core.config import LifecycleSpec, SystemConfig
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.lifecycle import ARCHIVE_NAME, BlockArchive, hot_bound_blocks
from repro.metrics.report import render_table
from repro.persist.chainstore import ChainStore

NODES = 3
BLOCKS = 50_000
INTERVAL = 8
LAG = 8
RETAIN = 64
COMPACT_EVERY = 4_096


def _mine(chain: Blockchain, accounts, miner: int) -> Block:
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    delay = mining_delay(
        hit,
        state.tokens(miner),
        state.stored_items(miner, parent.timestamp),
        amendment,
    )
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        storing_nodes=(miner,),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
    )


def test_lifecycle_footprint_50k(tmp_path, headline_sink, bench_seed):
    config = SystemConfig(
        expected_block_interval=10.0,
        checkpoint_interval=INTERVAL,
        checkpoint_lag=LAG,
        lifecycle=LifecycleSpec(retain_blocks=RETAIN),
    )
    accounts = {i: Account.for_node(bench_seed, i) for i in range(NODES)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(NODES)), config, address_of)
    store = ChainStore(tmp_path / "chain.sqlite")
    archive = BlockArchive(tmp_path / ARCHIVE_NAME)
    store.put_block(chain.blocks[0])

    bound = hot_bound_blocks(config)
    max_retained = 0
    compactions = 0
    start = time.perf_counter()
    for step in range(BLOCKS):
        block = _mine(chain, accounts, step % NODES)
        chain.append_block(block)
        store.put_block(block)
        chain.maybe_prune()
        max_retained = max(max_retained, chain.retained_blocks)
        assert chain.retained_blocks <= bound
        if chain.height % COMPACT_EVERY == 0:
            store.compact(archive, chain.first_retained_index, chain.checkpoints)
            compactions += 1
    store.compact(archive, chain.first_retained_index, chain.checkpoints)
    compactions += 1
    elapsed = time.perf_counter() - start

    hot_bytes = store.footprint_bytes()
    cold_bytes = archive.size_bytes
    assert chain.height == BLOCKS
    assert store.pruned_below() == chain.first_retained_index
    assert archive.archived_below == store.pruned_below()
    assert archive.verify_integrity() == []
    assert store.verify_integrity() == []

    cell = {
        "blocks": BLOCKS,
        "blocks_per_second": BLOCKS / elapsed,
        "hot_bound_blocks": bound,
        "max_retained_blocks": max_retained,
        "final_retained_blocks": chain.retained_blocks,
        "pruned_below": store.pruned_below(),
        "hot_bytes": hot_bytes,
        "cold_bytes": cold_bytes,
        "hot_fraction": hot_bytes / (hot_bytes + cold_bytes),
        "pinned_checkpoints": len(archive.checkpoints()),
        "compactions": compactions,
    }
    print()
    print(headline_sink({"lifecycle": cell}))
    print(
        render_table(
            f"Lifecycle — {BLOCKS} blocks, k={INTERVAL}, lag={LAG}, "
            f"retain={RETAIN}",
            ["measure", "value"],
            [
                ["mint+prune+store throughput", f"{cell['blocks_per_second']:.0f} blocks/s"],
                ["hot bound (blocks)", bound],
                ["max hot tier (blocks)", max_retained],
                ["hot store", f"{hot_bytes / 1024:.0f} KiB"],
                ["cold archive", f"{cold_bytes / 1024 / 1024:.1f} MiB"],
                ["hot fraction of total", f"{cell['hot_fraction']:.1%}"],
                ["pinned checkpoints", cell["pinned_checkpoints"]],
            ],
        )
    )
    assert max_retained <= bound
    # The hot tier is O(bound); the cold tier grows with the chain.
    assert cell["hot_fraction"] < 0.05
