"""Ablation A2 — UFL solver choice: solution quality and runtime.

The paper cites Li's 1.488-approximation as the state of the art and uses
"approximation algorithms ... with high efficiency".  This bench compares
our four solvers on placement instances snapshotted from a live simulation:
cost gap to the LP lower bound, and per-solve runtime (the greedy runs in
the mining hot path, so its latency matters).
"""

from __future__ import annotations

import numpy as np

from repro.facility.costs import build_storage_ufl
from repro.facility.greedy import solve_greedy
from repro.facility.local_search import solve_local_search
from repro.facility.lp_rounding import solve_lp_relaxation, solve_lp_rounding
from repro.facility.mip import solve_milp
from repro.metrics.report import render_table
from repro.sim.cluster import build_cluster
from repro.core.config import SystemConfig


def _snapshot_instances(node_count=14, count=5, seed=3):
    """UFL instances captured from a live cluster's storage states."""
    rng = np.random.default_rng(seed)
    cluster = build_cluster(node_count, SystemConfig(), seed=seed)
    hops = cluster.topology.hop_matrix()
    ranges = [30.0] * node_count
    instances = []
    for _ in range(count):
        used = rng.uniform(1, 200, size=node_count)
        total = np.full(node_count, 250.0)
        instances.append(build_storage_ufl(used, total, hops, ranges))
    return instances


SOLVERS = [
    ("greedy", solve_greedy),
    ("local_search", solve_local_search),
    ("lp_rounding", solve_lp_rounding),
    ("milp (exact)", solve_milp),
]


def test_ablation_solver_quality(benchmark):
    instances = _snapshot_instances()

    def evaluate():
        rows = []
        bounds = [solve_lp_relaxation(p).lower_bound for p in instances]
        for name, solver in SOLVERS:
            gaps = []
            for problem, bound in zip(instances, bounds):
                cost = solver(problem).total_cost(problem)
                gaps.append(cost / bound if bound > 0 else 1.0)
            rows.append([name, float(np.mean(gaps)), float(np.max(gaps))])
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation A2 — solver cost / LP lower bound",
            ["solver", "mean gap", "max gap"],
            rows,
        )
    )
    gaps = {row[0]: row[1] for row in rows}
    assert gaps["milp (exact)"] <= gaps["greedy"] + 1e-9
    assert gaps["greedy"] < 1.5  # far inside the 1.861 theory bound
    assert gaps["local_search"] <= gaps["greedy"] + 1e-9


def test_bench_greedy_solver_latency(benchmark):
    """Per-solve latency of the hot-path greedy at 50 nodes."""
    instances = _snapshot_instances(node_count=50, count=3, seed=7)

    def solve_all():
        return [solve_greedy(problem) for problem in instances]

    solutions = benchmark(solve_all)
    assert all(s.replica_count >= 1 for s in solutions)


def test_bench_milp_solver_latency(benchmark):
    """Exact MILP latency on a small instance (tests-only usage)."""
    instance = _snapshot_instances(node_count=12, count=1, seed=9)[0]
    solution = benchmark(lambda: solve_milp(instance))
    assert solution.replica_count >= 1
