"""Ablation A3 — recent-block storage allocation on/off under churn.

Section IV-C argues that caching recent blocks pervasively makes missing-
block recovery cheap for reconnecting nodes ("the less time and overhead
are used for nodes to get them").  This bench runs the same churn-heavy
scenario with the recent cache enabled (paper design) and disabled
(recovery can only be served by each block's permanent storing nodes or by
falling back to a whole-chain transfer), and compares recovery latency and
recovery traffic.

Measured trade-off: with the cache ON, most gaps are served piecemeal by
nearby caches, cutting recovery traffic by ~2× versus the cache-OFF arm,
which escalates to heavyweight whole-chain transfers far more often.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import render_table
from repro.sim.runner import run_experiment
from repro.sim.scenarios import churn_scenario

SEEDS = (0, 1, 2)


def _arm(recent_cache_enabled):
    """Recovery stats for one configuration.

    Recovery traffic counts both the block-recovery protocol (neighbour
    requests, served blocks, TTL forwards) and the chain-sync fallback a
    recovering node escalates to when targeted recovery cannot make
    progress — with the cache disabled, far more recoveries end up paying
    for a whole-chain transfer.
    """
    durations, traffic, recoveries = [], [], 0
    for seed in SEEDS:
        result = run_experiment(
            churn_scenario(
                node_count=20, seed=seed, recent_cache_enabled=recent_cache_enabled
            )
        )
        durations.extend(result.metrics.recovery_durations)
        traffic.append(
            result.metrics.category_bytes.get("block_recovery", 0)
            + result.metrics.category_bytes.get("chain_sync", 0)
        )
        recoveries += len(result.metrics.recovery_durations)
    return {
        "mean_duration": float(np.mean(durations)) if durations else float("nan"),
        "p95_duration": float(np.percentile(durations, 95)) if durations else float("nan"),
        "recovery_kb": float(np.mean(traffic)) / 1e3,
        "recoveries": recoveries,
    }


def test_ablation_recent_block_cache(benchmark):
    on, off = benchmark.pedantic(
        lambda: (_arm(True), _arm(False)), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Ablation A3 — recent-block allocation under churn",
            ["metric", "cache ON (paper)", "cache OFF"],
            [
                ["recoveries completed", on["recoveries"], off["recoveries"]],
                ["mean recovery time (s)", on["mean_duration"], off["mean_duration"]],
                ["p95 recovery time (s)", on["p95_duration"], off["p95_duration"]],
                ["recovery traffic (KB)", on["recovery_kb"], off["recovery_kb"]],
            ],
        )
    )
    # Both arms must actually recover.
    assert on["recoveries"] > 0 and off["recoveries"] > 0
    # The paper's design cuts recovery traffic (pervasive recent blocks are
    # served piecemeal instead of via whole-chain transfers)...
    assert on["recovery_kb"] < off["recovery_kb"]
    # ...at comparable recovery latency.
    assert on["mean_duration"] <= off["mean_duration"] * 2.0
