"""Ablation A4 — PoS block-interval stability.

Section V-B derives the amendment B so the expected inter-block time stays
at t0.  This bench measures the realised mean interval against t0 across
network sizes, and shows the S-rescaling mechanism does not disturb the
pace (the paper's argument that "the relative mining advantages of each
node will remain the same").
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.metrics.report import render_table
from repro.sim.runner import run_experiment
from repro.sim.scenarios import mining_only_scenario

NODE_COUNTS = (10, 30, 50)
T0 = 60.0


def test_ablation_pos_interval_vs_network_size(benchmark):
    def sweep():
        rows = []
        for node_count in NODE_COUNTS:
            intervals = []
            for seed in (0, 1):
                metrics = run_experiment(
                    mining_only_scenario(
                        node_count, expected_interval=T0,
                        duration_minutes=120.0, seed=seed,
                    )
                ).metrics
                intervals.extend(metrics.block_intervals)
            rows.append(
                [node_count, float(np.mean(intervals)), float(np.std(intervals)),
                 len(intervals)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            f"Ablation A4 — realised block interval (target t0 = {T0:.0f} s)",
            ["nodes", "mean interval (s)", "std (s)", "blocks"],
            rows,
        )
    )
    for _, mean, _, _ in rows:
        # Stake heterogeneity (rich-get-richer) pulls the realised mean a
        # little under t0; it must stay in a sane band around the target.
        assert 0.5 * T0 <= mean <= 1.5 * T0


def test_ablation_rescaling_preserves_pace(benchmark):
    def compare():
        base = mining_only_scenario(20, expected_interval=30.0, duration_minutes=120.0)
        frequent = replace(
            base, config=replace(base.config, token_rescale_interval=10)
        )
        rare = replace(
            base, config=replace(base.config, token_rescale_interval=10_000)
        )
        mean_frequent = np.mean(run_experiment(frequent).metrics.block_intervals)
        mean_rare = np.mean(run_experiment(rare).metrics.block_intervals)
        return float(mean_frequent), float(mean_rare)

    mean_frequent, mean_rare = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nmean interval with rescale every 10 blocks: {mean_frequent:.1f} s")
    print(f"mean interval with rescaling disabled:      {mean_rare:.1f} s")
    # Rescaling S (and recomputing B) must leave the pace unchanged.
    np.testing.assert_allclose(mean_frequent, mean_rare, rtol=0.25)
