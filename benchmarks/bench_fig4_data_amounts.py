"""Fig. 4 reproduction — performance under different data amounts.

The paper's Fig. 4 plots, for node counts 10–50 and data rates 1–3
items/minute: (a) average per-node transmission, (b) the storage Gini
coefficient, (c) average data-delivery time.  Each bench prints the same
series and asserts the paper's shape claims:

* transmission is modest and the per-node average falls as nodes grow,
* Gini stays below 0.15 everywhere,
* delivery completes within a few seconds everywhere.
"""

from __future__ import annotations

from repro.metrics.report import render_table
from repro.sim.scenarios import PAPER_DATA_RATES, PAPER_NODE_COUNTS


def _panel_rows(sweep, key):
    rows = []
    for node_count in PAPER_NODE_COUNTS:
        row = [node_count]
        for rate in PAPER_DATA_RATES:
            row.append(sweep[(node_count, rate)][key])
        rows.append(row)
    return rows


HEADERS = ["nodes"] + [f"{rate:g} item/min" for rate in PAPER_DATA_RATES]


def test_fig4a_transmission(benchmark, fig4_sweep):
    rows = benchmark.pedantic(
        _panel_rows, args=(fig4_sweep, "avg_node_mb"), rounds=1, iterations=1
    )
    print()
    print(render_table("Fig. 4(a) — average transmission per node (MB)", HEADERS, rows))
    for row in rows:
        for value in row[1:]:
            # Paper: "maximum about 120 MB data are transmitted for a node"
            # at 500 min; our bench runs 60 min → proportionally bounded.
            assert 0 < value < 400
    # Scalability: per-node traffic grows sub-linearly in network size —
    # 5× the nodes costs each node well under 2× the traffic (the paper's
    # "the system performs well under the larger size of networks"; note
    # the demand itself scales with n because 10 % of nodes request each
    # item).
    for rate_index in range(1, len(HEADERS)):
        per_node_at_10 = rows[0][rate_index]
        per_node_at_50 = rows[-1][rate_index]
        assert per_node_at_50 < 2.0 * per_node_at_10


def test_fig4b_gini(benchmark, fig4_sweep):
    rows = benchmark.pedantic(
        _panel_rows, args=(fig4_sweep, "gini"), rounds=1, iterations=1
    )
    print()
    print(render_table("Fig. 4(b) — storage Gini coefficient", HEADERS, rows))
    # Paper: "the Gini coefficient for all the tests is below 0.15".
    for row in rows:
        for value in row[1:]:
            assert 0.0 <= value < 0.15


def test_fig4c_delivery_time(benchmark, fig4_sweep):
    rows = benchmark.pedantic(
        _panel_rows, args=(fig4_sweep, "delivery"), rounds=1, iterations=1
    )
    print()
    print(render_table("Fig. 4(c) — average data delivery time (s)", HEADERS, rows))
    # Paper: "overall 4 seconds in maximum is used for a node to get the
    # desired data".
    for row in rows:
        for value in row[1:]:
            assert 0.0 <= value < 4.0
    # Essentially every request is served (fork-orphaned items can race the
    # requester's retry window; tolerate < 1 % per cell).
    for node_count in PAPER_NODE_COUNTS:
        for rate in PAPER_DATA_RATES:
            cell = fig4_sweep[(node_count, rate)]
            assert cell["failed"] <= max(1, 0.01 * cell["served"])
