"""Ablation A7 — network-level consensus energy: full PoW vs PoS chains.

Fig. 6 measures one device; this bench runs the *whole system* under each
consensus (every node mining, blocks propagating, forks resolving) with
per-node energy meters, at a matched network block rate (PoW difficulty is
retuned for the miner count — more miners would otherwise just mine
faster).  The per-node power draw and the per-block energy reproduce the
paper's 64 %-less-energy claim in situ.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import PAPER_CONFIG
from repro.core.pow import PowMiner, pow_difficulty_for
from repro.metrics.report import render_table
from repro.sim.cluster import build_cluster

NODES = 10
T0 = 30.0
MINUTES = 20.0
HASH_RATE = 16**4 / 25.0  # the paper's handset


def _network_run(consensus: str):
    config = replace(
        PAPER_CONFIG,
        consensus=consensus,
        data_items_per_minute=0.0,
        expected_block_interval=T0,
        pow_hash_rate=HASH_RATE,
        pow_difficulty=pow_difficulty_for(T0, NODES, HASH_RATE),
    )
    cluster = build_cluster(NODES, config, seed=5, with_energy_meters=True)
    cluster.start()
    cluster.engine.run_until(MINUTES * 60.0)
    chain = cluster.longest_chain_node().chain
    total_joules = sum(node.meter.total_consumed() for node in cluster.nodes.values())
    return {
        "height": chain.height,
        "network_watts": total_joules / (MINUTES * 60.0),
        "joules_per_block": total_joules / max(1, chain.height),
        "per_node_watts": total_joules / (MINUTES * 60.0) / NODES,
    }


def test_ablation_network_energy(benchmark):
    pos, pow_ = benchmark.pedantic(
        lambda: (_network_run("pos"), _network_run("pow")), rounds=1, iterations=1
    )
    saving = 100.0 * (1.0 - pos["network_watts"] / pow_["network_watts"])
    print()
    print(
        render_table(
            f"Ablation A7 — network-level consensus energy "
            f"({NODES} nodes, t0={T0:.0f}s, {MINUTES:.0f} min)",
            ["metric", "PoS (paper)", "PoW baseline"],
            [
                ["chain height", pos["height"], pow_["height"]],
                ["network power (W)", round(pos["network_watts"], 1),
                 round(pow_["network_watts"], 1)],
                ["per-device power (W)", round(pos["per_node_watts"], 2),
                 round(pow_["per_node_watts"], 2)],
                ["energy per block (J)", round(pos["joules_per_block"]),
                 round(pow_["joules_per_block"])],
            ],
        )
    )
    print(f"\nPoS draws {saving:.1f}% less network power than PoW "
          f"(paper's single-device figure: 64% less)")
    # Both chains advance at a comparable rate.
    assert 0.4 < pos["height"] / pow_["height"] < 2.5
    # The energy gap survives the move from one device to the full network.
    assert saving > 50.0
