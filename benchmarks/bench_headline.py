"""The paper's abstract headline numbers, regenerated in one place.

"On average, the new system uses 15% less time and consumes 64% less
battery power when compared with traditional blockchain systems", plus the
contribution list's "fair data storage with disparity measurement less
than 0.15".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pow import PowMiner
from repro.energy.meter import EnergyMeter
from repro.metrics.report import render_table
from repro.sim.scenarios import PAPER_NODE_COUNTS


def test_headline_numbers(benchmark, fig5_sweep, fig4_sweep, headline_sink):
    def compute():
        optimal = np.mean(
            [fig5_sweep[("greedy", n)]["delivery"] for n in PAPER_NODE_COUNTS]
        )
        random_ = np.mean(
            [fig5_sweep[("random", n)]["delivery"] for n in PAPER_NODE_COUNTS]
        )
        time_saving = 100.0 * (1.0 - optimal / random_)

        rng = np.random.default_rng(0)
        pow_meter = EnergyMeter()
        miner = PowMiner(pow_meter, difficulty=4)
        for _ in range(100):
            miner.mine_block(rng)
        pos_meter = EnergyMeter()
        pos_meter.charge_pos_ticks(100 * 25.0)
        energy_saving = 100.0 * (
            1.0 - pos_meter.total_consumed() / pow_meter.total_consumed()
        )

        worst_gini = max(cell["gini"] for cell in fig4_sweep.values())
        return time_saving, energy_saving, worst_gini

    time_saving, energy_saving, worst_gini = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    sink_path = headline_sink(
        {
            "time_saving_percent": time_saving,
            "energy_saving_percent": energy_saving,
            "worst_gini": worst_gini,
            "fig4": {
                f"n{nodes}-r{rate:g}": cell
                for (nodes, rate), cell in sorted(fig4_sweep.items())
            },
            "fig5": {
                f"{solver}-n{nodes}": cell
                for (solver, nodes), cell in sorted(fig5_sweep.items())
            },
        }
    )
    print()
    print(f"wrote {sink_path}")
    print(
        render_table(
            "Headline claims (paper vs measured)",
            ["claim", "paper", "measured"],
            [
                ["data access time saved vs random store", "15% less", f"{time_saving:.1f}% less"],
                ["mining energy saved vs PoW", "64% less", f"{energy_saving:.1f}% less"],
                ["worst-case storage Gini", "< 0.15", f"{worst_gini:.3f}"],
            ],
        )
    )
    assert time_saving > 3.0  # optimal placement wins
    assert energy_saving == pytest.approx(64.0, abs=8.0)
    assert worst_gini < 0.15
