"""Protocol messages exchanged between edge blockchain nodes.

Each message type knows its approximate wire size so the transmission
trace reproduces the paper's overhead accounting: data request/response
traffic, proactive data dissemination, blockchain broadcasts, and block
recovery (Sections IV-B through IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.block import Block
from repro.core.metadata import MetadataItem

# Traffic categories (the Fig. 4a / 5b breakdown).
CATEGORY_METADATA = "metadata_announce"
CATEGORY_BLOCK = "block_broadcast"
CATEGORY_DATA_REQUEST = "data_request"
CATEGORY_DATA_RESPONSE = "data_response"
CATEGORY_DISSEMINATION_REQUEST = "dissemination_request"
CATEGORY_DISSEMINATION = "data_dissemination"
CATEGORY_BLOCK_RECOVERY = "block_recovery"
CATEGORY_CHAIN_SYNC = "chain_sync"
CATEGORY_STORAGE_CLAIM = "storage_claim"

#: Size of a small control message (requests, NACKs).
CONTROL_BYTES = 100


@dataclass(frozen=True)
class MetadataAnnounce:
    """Producer broadcasts a freshly signed metadata item (Section IV-B)."""

    metadata: MetadataItem

    def wire_size(self) -> int:
        return self.metadata.wire_size()


@dataclass(frozen=True)
class BlockAnnounce:
    """Miner broadcasts a newly mined block."""

    block: Block

    def wire_size(self) -> int:
        return self.block.wire_size()


@dataclass(frozen=True)
class DataRequest:
    """Consumer asks a storing node for a data item (Section IV-D)."""

    data_id: str
    requester: int
    request_id: int

    def wire_size(self) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class DataResponse:
    """Storing node returns the data payload."""

    data_id: str
    request_id: int
    size_bytes: int

    def wire_size(self) -> int:
        return self.size_bytes + CONTROL_BYTES


@dataclass(frozen=True)
class DataNack:
    """Storing node cannot serve (payload not yet disseminated / dropped)."""

    data_id: str
    request_id: int

    def wire_size(self) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class DisseminationRequest:
    """Assigned storing node proactively fetches the payload from the producer."""

    data_id: str
    requester: int

    def wire_size(self) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class DisseminationResponse:
    """Producer ships the payload to an assigned storing node."""

    data_id: str
    size_bytes: int

    def wire_size(self) -> int:
        return self.size_bytes + CONTROL_BYTES


@dataclass(frozen=True)
class BlockRequest:
    """A node asks for missing blocks by index (Section IV-D).

    ``origin`` is the node that ultimately needs the blocks; a relay that
    cannot satisfy an index forwards the request and the holder responds to
    the origin directly.  ``ttl`` bounds recursive forwarding.
    """

    indices: Tuple[int, ...]
    origin: int
    ttl: int = 3

    def wire_size(self) -> int:
        return CONTROL_BYTES + 4 * len(self.indices)


@dataclass(frozen=True)
class BlockResponse:
    """Blocks returned toward a recovering node."""

    blocks: Tuple[Block, ...]

    def wire_size(self) -> int:
        return CONTROL_BYTES + sum(block.wire_size() for block in self.blocks)


@dataclass(frozen=True)
class InvalidStorageClaim:
    """A denied requester tells everyone a storing node would not serve.

    Section III-B-2: claims mark a (data, node) storage as invalid so
    later requesters skip it; the data stays available through its other
    replicas unless every replica is malicious.
    """

    data_id: str
    storing_node: int
    claimer: int

    def wire_size(self) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class ChainRequest:
    """A forked node asks a peer for its full chain (longest-chain rule)."""

    origin: int

    def wire_size(self) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class ChainResponse:
    """Full chain shipped to a forked/new node."""

    blocks: Tuple[Block, ...]

    def wire_size(self) -> int:
        return CONTROL_BYTES + sum(block.wire_size() for block in self.blocks)
