"""Proof-of-Work baseline miner (the Fig. 6 comparator).

The paper's PoW experiment sets "the difficulty of PoW as 4 zeros at the
beginning of the block hash" with an average mining time of 25 seconds on
the phone.  A difficulty of ``d`` leading hex zeros succeeds per attempt
with probability ``16^-d``, so the attempt count is geometric with mean
``16^d`` — 65 536 at the paper's difficulty 4.

Two modes are provided:

* :func:`find_pow_nonce` — an *actual* brute-force SHA-256 loop, used by
  tests at low difficulty to show the scheme is real,
* :class:`PowMiner.mine_block` — a *sampled* run (geometric attempt count
  drawn from the simulation RNG) used by the energy benchmarks, where
  difficulty-4 loops would waste wall-clock time without changing the
  energy arithmetic (energy = attempts × per-hash joules either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.crypto.hashing import hash_items_hex
from repro.energy.meter import EnergyMeter
from repro.obs import runtime as _obs

#: Paper's PoW difficulty: leading hex zeros of the block hash.
PAPER_POW_DIFFICULTY = 4

#: Hash rate matching the paper's setup: difficulty 4 (65 536 expected
#: attempts) at a 25 s average block time → ≈2 621 hashes/second, consistent
#: with SHA-256 in a react-native JS runtime on a 2017 handset.
PAPER_HASH_RATE = 16**PAPER_POW_DIFFICULTY / 25.0


def expected_attempts(difficulty: int) -> int:
    """Mean attempts to find a hash with ``difficulty`` leading hex zeros."""
    if difficulty < 0:
        raise ValueError("difficulty cannot be negative")
    return 16**difficulty


def pow_difficulty_for(
    target_interval: float, node_count: int, hash_rate: float
) -> float:
    """The (fractional) difficulty giving the network the target block time.

    With ``node_count`` independent miners at ``hash_rate`` attempts/s, the
    network finds a block every ``16^d / (n · rate)`` seconds on average.
    Real chains retune an integer difficulty periodically; the simulation
    accepts fractional difficulties (the success probability ``16^-d`` is
    continuous), which is equivalent to Bitcoin's fractional target.
    """
    if target_interval <= 0 or node_count < 1 or hash_rate <= 0:
        raise ValueError("interval, node count, and hash rate must be positive")
    import math

    return math.log(target_interval * node_count * hash_rate, 16.0)


def hash_meets_difficulty(block_hash: str, difficulty: int) -> bool:
    return block_hash.startswith("0" * difficulty)


def find_pow_nonce(
    payload: str, difficulty: int, max_attempts: int = 10_000_000
) -> Tuple[int, int]:
    """Actually brute-force a nonce; returns ``(nonce, attempts)``.

    Only intended for tests at difficulty ≤ 3 — at the paper's difficulty 4
    use the sampled miner instead.
    """
    with _obs.span("pow.brute_force", "pow", difficulty=difficulty) as obs_span:
        for nonce in range(max_attempts):
            digest = hash_items_hex("pow", payload, nonce)
            if hash_meets_difficulty(digest, difficulty):
                if _obs.is_enabled():
                    obs_span.set(attempts=nonce + 1)
                    _obs.add("pow.attempts", nonce + 1)
                    _obs.observe("pow.attempts_per_block", nonce + 1)
                return nonce, nonce + 1
    raise RuntimeError(f"no nonce found within {max_attempts} attempts")


@dataclass
class PowBlockResult:
    """Outcome of one (possibly sampled) PoW mining run."""

    attempts: int
    duration_seconds: float
    energy_joules: float
    battery_remaining_percent: float


class PowMiner:
    """A PoW miner on one edge device, billing energy per hash attempt."""

    def __init__(
        self,
        meter: EnergyMeter,
        difficulty: int = PAPER_POW_DIFFICULTY,
        hash_rate: float = PAPER_HASH_RATE,
    ):
        if difficulty < 0:
            raise ValueError("difficulty cannot be negative")
        if hash_rate <= 0:
            raise ValueError("hash rate must be positive")
        self.meter = meter
        self.difficulty = difficulty
        self.hash_rate = hash_rate
        self.blocks_mined = 0

    @property
    def success_probability(self) -> float:
        return 16.0**-self.difficulty

    def mine_block(self, rng: np.random.Generator) -> PowBlockResult:
        """Mine one block with a sampled geometric attempt count."""
        attempts = int(rng.geometric(self.success_probability))
        energy = self.meter.charge_pow_hashes(attempts)
        self.blocks_mined += 1
        if _obs.is_enabled():
            _obs.add("pow.attempts", attempts)
            _obs.observe("pow.attempts_per_block", attempts)
            _obs.observe("pow.energy_joules_per_block", energy)
        return PowBlockResult(
            attempts=attempts,
            duration_seconds=attempts / self.hash_rate,
            energy_joules=energy,
            battery_remaining_percent=self.meter.remaining_percent,
        )

    def mine_until_depleted(
        self, rng: np.random.Generator, max_blocks: int = 100_000
    ) -> list:
        """Mine until the battery dies; returns the per-block results.

        This regenerates the PoW series of Fig. 6 (battery percent after
        each mined block).
        """
        results = []
        while not self.meter.depleted and len(results) < max_blocks:
            results.append(self.mine_block(rng))
        return results
