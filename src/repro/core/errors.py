"""Exception hierarchy for the edge blockchain core."""

from __future__ import annotations


class EdgeChainError(Exception):
    """Base class for all protocol-level errors."""


class ValidationError(EdgeChainError):
    """A block, metadata item, or signature failed validation."""


class ChainLinkError(ValidationError):
    """A block does not link to its predecessor (hash/index mismatch)."""


class ConsensusError(ValidationError):
    """A PoS hit/target claim does not verify against chain state."""


class CheckpointError(ValidationError):
    """A candidate chain would rewrite a block at or below the last
    checkpoint (Section V-D's nothing-at-stake mitigation).

    Subclasses :class:`ValidationError` so existing chain-adoption
    handlers keep rejecting these chains; admission control additionally
    records the rejection under its own structured reason.
    """


class SerializationError(ValidationError):
    """A serialised payload is structurally unacceptable (oversized,
    absurdly nested, wrong shape) before any content validation runs.

    Subclasses :class:`ValidationError` so every existing handler that
    treats malformed wire input as a validation failure keeps working.
    """


class PrunedBlockError(IndexError, EdgeChainError):
    """A block body below the retention horizon was requested.

    Subclasses :class:`IndexError` so callers that already treat
    ``block_at`` misses as index errors keep working; lifecycle-aware
    callers can catch it specifically to distinguish "pruned" from
    "never existed".
    """


class StorageError(EdgeChainError):
    """A storage operation failed (capacity exhausted, unknown item...)."""


class AllocationError(EdgeChainError):
    """The placement problem could not be solved (e.g. all nodes full)."""


class SyncError(EdgeChainError):
    """Block synchronisation failed (unsatisfiable request, bad response)."""


class PersistError(EdgeChainError):
    """A durable-persistence operation failed (corrupt journal, bad
    snapshot, incompatible store schema, unresumable run)."""
