"""System-wide configuration.

Defaults follow the paper's evaluation setup (Section VI):

* 300 m × 300 m field, 70 m radio range, 30 m mobility range,
* 250 storage slots per node (data items or blocks),
* 60 s expected block interval, 500-minute runs,
* 1 MB data items, blocks well under 10 KB,
* 10 ms per-hop propagation delay,
* 10 % of nodes request each data item,
* FDC:RDC weighting A = 1000.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Size of one data item in bytes (paper: 1 MB).
DATA_ITEM_BYTES = 1_000_000

#: Largest possible hit value M (Eq. 7).  2^64 keeps arithmetic exact in
#: Python ints while being "very large" as the paper requires.
DEFAULT_HIT_MODULUS = 2**64


@dataclass(frozen=True)
class LifecycleSpec:
    """Finite-lifetime-block policy (see :mod:`repro.lifecycle`).

    With a spec configured (and ``checkpoint_interval > 0``), a node keeps
    only the most recent ``retain_blocks`` block bodies in memory: once a
    checkpoint is buried deeper than the retention window, the chain pins
    a :class:`~repro.lifecycle.checkpoint.CheckpointRecord` (cumulative
    ledger digest + stake summary) at that checkpoint and drops every body
    below it.  The durable chain store migrates the same range into the
    cold archive tier on its next compaction.
    """

    #: Block bodies kept above the pruning horizon.  The horizon only ever
    #: advances to checkpoint indices, so the retained window can be up to
    #: one checkpoint interval larger than this.
    retain_blocks: int = 256

    def __post_init__(self) -> None:
        if self.retain_blocks < 1:
            raise ValueError("retain_blocks must be at least 1")


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of the edge blockchain system."""

    # --- network geometry (paper Section VI) ---
    field_size: float = 300.0
    comm_range: float = 70.0
    mobility_range: float = 30.0
    hop_delay: float = 0.010
    bandwidth: Optional[float] = 5_000_000.0

    # --- storage ---
    storage_capacity: int = 250
    #: Default metadata validity in minutes (paper examples use 720–2880).
    default_valid_time_minutes: float = 1440.0
    #: FIFO capacity of the recent-block cache (beyond the mandatory last
    #: block every node keeps).
    recent_cache_capacity: int = 10

    # --- allocation ---
    fdc_weight: float = 1000.0
    #: UFL solver for placement: "greedy", "local_search", "lp_rounding",
    #: "incremental" (warm-started greedy, digest-identical to "greedy"),
    #: or "random" (the Fig. 5 baseline).
    placement_solver: str = "greedy"
    #: Coalesce same-time message deliveries into one event-queue pop.
    #: Digest-identical to per-delivery scheduling; off retains the slow
    #: path for the differential harness.
    batch_deliveries: bool = True
    #: Replica count the random baseline copies from the optimal solution;
    #: None means "match the optimal solver's choice per item".
    random_replicas: Optional[int] = None
    #: Re-derive every block's storing-node decisions on receipt and reject
    #: mismatches (catches crony miners; deterministic solvers only).
    validate_allocations: bool = False

    # --- consensus ---
    #: "pos" runs the paper's mechanism (Section V); "pow" runs the
    #: traditional-blockchain baseline at network level (each node
    #: brute-forces; energy billed per hash attempt).
    consensus: str = "pos"
    pow_difficulty: float = 4.0
    #: PoW hash rate per node, attempts/second (default: the paper's
    #: handset rate — difficulty 4 at a 25 s average block time).
    pow_hash_rate: float = 16**4 / 25.0

    # --- PoS consensus (Section V) ---
    expected_block_interval: float = 60.0  # t0, seconds
    hit_modulus: int = DEFAULT_HIT_MODULUS  # M
    mining_incentive: float = 1.0  # tokens per mined block
    storage_incentive: float = 1.0  # tokens per storage assignment (paper:
    # "the same incentive as the nodes that store a data item or a block")
    initial_tokens: float = 1.0  # new nodes need ≥ 1 token
    #: Rescale S_i (and recompute B) every this many blocks to keep B sane.
    token_rescale_interval: int = 100
    token_rescale_ratio: float = 0.5
    #: Checkpoint every this many blocks: reorganisations that would rewrite
    #: a block at or below the last checkpoint are refused (Section V-D's
    #: nothing-at-stake mitigation).  0 disables checkpointing.
    checkpoint_interval: int = 0
    #: Confirmation depth before a block may become a checkpoint.  A node
    #: must never checkpoint a block that live forks could still replace —
    #: otherwise a briefly-forked node locks itself out of the honest
    #: chain.  None defaults to 2× the interval.
    checkpoint_lag: Optional[int] = None
    #: Finite-lifetime-block policy: checkpoint-anchored pruning of block
    #: bodies below the retention horizon (None = chains grow unbounded,
    #: the historical behaviour).  Requires ``checkpoint_interval > 0``.
    lifecycle: Optional[LifecycleSpec] = None

    # --- adversarial hardening (admission control / quarantine) ---
    #: Misbehavior score at which a peer is quarantined (no longer
    #: accepted from or forwarded to).  Honest peers never accumulate
    #: score, so the default only ever triggers under attack.
    quarantine_threshold: float = 8.0
    #: Cap on out-of-order blocks buffered during gap recovery; blocks
    #: furthest ahead of the tip are evicted first past the limit.
    sync_buffer_limit: int = 512
    #: Cap on requested-and-not-yet-received gap indices per recovery.
    sync_outstanding_limit: int = 256
    #: Verify producer ECDSA signatures on inbound metadata items.  Off
    #: by default (pure-Python ECDSA is slow and honest runs never fail
    #: it); chaos scenarios with metadata tamperers switch it on.
    verify_metadata_signatures: bool = False

    # --- workload (Section VI-A) ---
    data_items_per_minute: float = 1.0
    requester_fraction: float = 0.10
    simulation_minutes: float = 500.0

    def __post_init__(self) -> None:
        if self.field_size <= 0 or self.comm_range <= 0:
            raise ValueError("field size and comm range must be positive")
        if self.mobility_range < 0:
            raise ValueError("mobility range must be non-negative")
        if self.storage_capacity < 1:
            raise ValueError("storage capacity must be at least 1 slot")
        if self.expected_block_interval <= 0:
            raise ValueError("expected block interval must be positive")
        if self.hit_modulus < 2:
            raise ValueError("hit modulus must be at least 2")
        if not (0.0 <= self.requester_fraction <= 1.0):
            raise ValueError("requester fraction must be in [0, 1]")
        if self.placement_solver not in (
            "greedy",
            "local_search",
            "lp_rounding",
            "incremental",
            "random",
        ):
            raise ValueError(f"unknown placement solver: {self.placement_solver}")
        if not (0 < self.token_rescale_ratio <= 1):
            raise ValueError("token rescale ratio must be in (0, 1]")
        if self.token_rescale_interval < 1:
            raise ValueError("token rescale interval must be ≥ 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint interval cannot be negative")
        if self.checkpoint_lag is not None and self.checkpoint_lag < 0:
            raise ValueError("checkpoint lag cannot be negative")
        if self.lifecycle is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                "lifecycle pruning is checkpoint-anchored: "
                "set checkpoint_interval > 0"
            )
        if self.consensus not in ("pos", "pow"):
            raise ValueError(f"unknown consensus mechanism: {self.consensus}")
        if self.pow_difficulty < 0:
            raise ValueError("PoW difficulty cannot be negative")
        if self.pow_hash_rate <= 0:
            raise ValueError("PoW hash rate must be positive")
        if self.initial_tokens < 1.0:
            raise ValueError("new nodes need at least one token (Section V-A)")
        if self.quarantine_threshold <= 0:
            raise ValueError("quarantine threshold must be positive")
        if self.sync_buffer_limit < 1:
            raise ValueError("sync buffer limit must be at least 1")
        if self.sync_outstanding_limit < 1:
            raise ValueError("sync outstanding limit must be at least 1")


#: The paper's evaluation configuration.
PAPER_CONFIG = SystemConfig()
