"""Canonical JSON serialisation of chain objects.

A real deployment ships blocks and metadata between devices as bytes; this
module defines that wire format: plain-JSON dictionaries with stable field
names, round-tripping exactly (hashes recompute identically after a
decode, so a deserialised block still validates).

* :func:`metadata_to_dict` / :func:`metadata_from_dict`
* :func:`block_to_dict` / :func:`block_from_dict`
* :func:`chain_to_json` / :func:`chain_from_json` — whole-chain transfer
  (the ChainResponse payload of Section IV-D's new-node sync).
* :func:`storage_to_dict` / :func:`storage_from_dict` — a node's full
  local storage (data-slot FIFO order and per-item ``has_payload`` flags,
  block assignments, the recent-block FIFO cache, the mandatory last
  block), used by the persistence snapshots of :mod:`repro.persist`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.core.block import Block
from repro.core.errors import SerializationError, ValidationError
from repro.core.metadata import MetadataItem
from repro.core.storage import NodeStorage, StoredData

#: Format tag embedded in every serialised object, bumped on breaking
#: changes so peers can reject incompatible encodings.
WIRE_FORMAT_VERSION = 1


def _require(mapping: Dict[str, Any], key: str) -> Any:
    if key not in mapping:
        raise ValidationError(f"serialised object is missing field {key!r}")
    return mapping[key]


def metadata_to_dict(item: MetadataItem) -> Dict[str, Any]:
    """Encode a metadata item as a JSON-safe dict."""
    return {
        "v": WIRE_FORMAT_VERSION,
        "data_id": item.data_id,
        "data_type": item.data_type,
        "created_at": item.created_at,
        "location": item.location,
        "producer": item.producer,
        "producer_address": item.producer_address,
        "producer_public_key": item.producer_public_key_hex,
        "signature": item.signature_hex,
        "valid_time_minutes": item.valid_time_minutes,
        "properties": item.properties,
        "size_bytes": item.size_bytes,
        "storing_nodes": list(item.storing_nodes),
    }


def metadata_from_dict(payload: Dict[str, Any]) -> MetadataItem:
    """Decode a metadata item; raises ValidationError on malformed input."""
    if _require(payload, "v") != WIRE_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported metadata wire format {payload.get('v')!r}"
        )
    try:
        return MetadataItem(
            data_id=str(_require(payload, "data_id")),
            data_type=str(_require(payload, "data_type")),
            created_at=float(_require(payload, "created_at")),
            location=str(_require(payload, "location")),
            producer=int(_require(payload, "producer")),
            producer_address=str(_require(payload, "producer_address")),
            producer_public_key_hex=str(_require(payload, "producer_public_key")),
            signature_hex=str(_require(payload, "signature")),
            valid_time_minutes=float(_require(payload, "valid_time_minutes")),
            properties=str(payload.get("properties", "")),
            size_bytes=int(_require(payload, "size_bytes")),
            storing_nodes=tuple(int(n) for n in _require(payload, "storing_nodes")),
        )
    except (TypeError, ValueError) as error:
        raise ValidationError(f"malformed metadata item: {error}") from error


def block_to_dict(block: Block) -> Dict[str, Any]:
    """Encode a block as a JSON-safe dict (including its hash)."""
    return {
        "v": WIRE_FORMAT_VERSION,
        "index": block.index,
        "timestamp": block.timestamp,
        "previous_hash": block.previous_hash,
        "pos_hash": block.pos_hash,
        "miner": block.miner,
        "miner_address": block.miner_address,
        "hit": block.hit,
        "target_b": block.target_b,
        "metadata_items": [metadata_to_dict(item) for item in block.metadata_items],
        "storing_nodes": list(block.storing_nodes),
        "previous_storing_nodes": list(block.previous_storing_nodes),
        "recent_cache_nodes": list(block.recent_cache_nodes),
        "current_hash": block.current_hash,
    }


def block_from_dict(payload: Dict[str, Any], verify_hash: bool = True) -> Block:
    """Decode a block; optionally verify the embedded hash recomputes.

    ``verify_hash=True`` (the default) rejects any payload whose contents
    were altered in transit: the recomputed hash must equal the embedded
    one.
    """
    if _require(payload, "v") != WIRE_FORMAT_VERSION:
        raise ValidationError(f"unsupported block wire format {payload.get('v')!r}")
    try:
        block = Block(
            index=int(_require(payload, "index")),
            timestamp=float(_require(payload, "timestamp")),
            previous_hash=str(_require(payload, "previous_hash")),
            pos_hash=str(_require(payload, "pos_hash")),
            miner=int(_require(payload, "miner")),
            miner_address=str(_require(payload, "miner_address")),
            hit=int(_require(payload, "hit")),
            target_b=float(_require(payload, "target_b")),
            metadata_items=tuple(
                metadata_from_dict(item)
                for item in _require(payload, "metadata_items")
            ),
            storing_nodes=tuple(int(n) for n in _require(payload, "storing_nodes")),
            previous_storing_nodes=tuple(
                int(n) for n in _require(payload, "previous_storing_nodes")
            ),
            recent_cache_nodes=tuple(
                int(n) for n in _require(payload, "recent_cache_nodes")
            ),
            current_hash=str(_require(payload, "current_hash")),
        )
    except (TypeError, ValueError) as error:
        raise ValidationError(f"malformed block: {error}") from error
    if verify_hash and not block.hash_is_valid():
        raise ValidationError(
            f"block {block.index} hash does not match its contents"
        )
    return block


def chain_to_json(blocks: Sequence[Block]) -> str:
    """Serialise a whole chain to a JSON string."""
    return json.dumps(
        {"v": WIRE_FORMAT_VERSION, "blocks": [block_to_dict(b) for b in blocks]},
        sort_keys=True,
    )


#: Ceiling on a serialised chain accepted by :func:`chain_from_json`.
#: A 500-minute paper run serialises to well under 10 MB; an input past
#: this is hostile or corrupt, and rejecting it up front keeps a peer
#: from making us parse an arbitrarily large document.
MAX_CHAIN_JSON_BYTES = 64 * 1024 * 1024

#: Ceiling on JSON nesting depth.  Honest chain documents nest ~6 deep
#: (chain → block → metadata → storing nodes); deeply nested input only
#: exists to exhaust the parser's recursion.
MAX_CHAIN_JSON_DEPTH = 32


def _check_depth(value: Any, limit: int, depth: int = 0) -> None:
    if depth > limit:
        raise SerializationError(
            f"chain payload nests deeper than {limit} levels"
        )
    if isinstance(value, dict):
        for item in value.values():
            _check_depth(item, limit, depth + 1)
    elif isinstance(value, list):
        for item in value:
            _check_depth(item, limit, depth + 1)


def chain_from_json(text: str, verify_hashes: bool = True) -> List[Block]:
    """Deserialise a chain, checking linkage between consecutive blocks.

    Structural defences run before content validation: payloads larger
    than :data:`MAX_CHAIN_JSON_BYTES` or nested deeper than
    :data:`MAX_CHAIN_JSON_DEPTH` raise :class:`SerializationError`
    (a :class:`ValidationError`, so existing handlers already catch it).
    """
    if len(text) > MAX_CHAIN_JSON_BYTES:
        raise SerializationError(
            f"chain payload of {len(text)} bytes exceeds the "
            f"{MAX_CHAIN_JSON_BYTES}-byte limit"
        )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValidationError(f"chain payload is not valid JSON: {error}") from error
    except RecursionError as error:
        raise SerializationError(
            "chain payload nests too deeply to parse"
        ) from error
    _check_depth(payload, MAX_CHAIN_JSON_DEPTH)
    if not isinstance(payload, dict) or _require(payload, "v") != WIRE_FORMAT_VERSION:
        raise ValidationError("unsupported chain wire format")
    blocks = [
        block_from_dict(entry, verify_hash=verify_hashes)
        for entry in _require(payload, "blocks")
    ]
    for parent, child in zip(blocks, blocks[1:]):
        if not child.links_to(parent):
            raise ValidationError(
                f"serialised chain breaks at block {child.index}"
            )
    return blocks


def stored_data_to_dict(entry: StoredData) -> Dict[str, Any]:
    """Encode one stored data slot, including its payload-received flag."""
    return {
        "v": WIRE_FORMAT_VERSION,
        "metadata": metadata_to_dict(entry.metadata),
        "has_payload": bool(entry.has_payload),
    }


def stored_data_from_dict(payload: Dict[str, Any]) -> StoredData:
    if _require(payload, "v") != WIRE_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported stored-data wire format {payload.get('v')!r}"
        )
    return StoredData(
        metadata=metadata_from_dict(_require(payload, "metadata")),
        has_payload=bool(_require(payload, "has_payload")),
    )


def storage_to_dict(storage: NodeStorage) -> Dict[str, Any]:
    """Encode a node's full local storage.

    Order matters and is preserved: data slots serialise in insertion
    order (expiry eviction scans in that order) and the recent-block
    cache serialises oldest-first so FIFO replacement resumes exactly
    where it left off.
    """
    last = storage.last_block
    return {
        "v": WIRE_FORMAT_VERSION,
        "capacity": storage.capacity,
        "recent_cache_capacity": storage.recent_cache_capacity,
        "rejected_for_capacity": storage.rejected_for_capacity,
        "data": [stored_data_to_dict(entry) for entry in storage.data_entries()],
        "blocks": [block_to_dict(block) for block in storage.assigned_blocks()],
        "recent": [block_to_dict(block) for block in storage.recent_blocks()],
        "last_block": None if last is None else block_to_dict(last),
        "pruned_block_slots": storage.pruned_block_slots,
    }


def storage_from_dict(
    payload: Dict[str, Any], verify_hashes: bool = True
) -> NodeStorage:
    """Decode a node's local storage; raises ValidationError when malformed."""
    if _require(payload, "v") != WIRE_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported storage wire format {payload.get('v')!r}"
        )
    try:
        storage = NodeStorage(
            capacity=int(_require(payload, "capacity")),
            recent_cache_capacity=int(_require(payload, "recent_cache_capacity")),
        )
    except (TypeError, ValueError) as error:
        raise ValidationError(f"malformed storage payload: {error}") from error
    last = _require(payload, "last_block")
    if last is not None:
        storage.set_last_block(block_from_dict(last, verify_hash=verify_hashes))
    for entry_payload in _require(payload, "data"):
        entry = stored_data_from_dict(entry_payload)
        storage.store_data(entry.metadata, has_payload=entry.has_payload)
    for block_payload in _require(payload, "blocks"):
        storage.store_block(block_from_dict(block_payload, verify_hash=verify_hashes))
    for block_payload in _require(payload, "recent"):
        storage.cache_recent_block(
            block_from_dict(block_payload, verify_hash=verify_hashes)
        )
    storage.rejected_for_capacity = int(_require(payload, "rejected_for_capacity"))
    # Optional for wire compatibility with pre-lifecycle encoders.
    storage._pruned_block_slots = int(payload.get("pruned_block_slots", 0))
    return storage
