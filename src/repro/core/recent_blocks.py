"""Recent-block storage allocation (Section IV-C).

Recent blocks are the blocks disconnected nodes need most, so beyond the
block's permanent storing nodes the miner selects *additional* nodes to
cache the new block in their FIFO recent cache:

    "The node that finds the next block also calculates nodes which need to
     store one more recent block.  The nodes are chosen by solving the same
     problem, i.e., the fair and efficient storage problem considering the
     current situations of the network."

The selection reuses the UFL machinery, excluding nodes that will already
hold the block (the miner and the block's storing nodes), and the chosen
nodes earn the same storage incentive.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import AllocationEngine
from repro.core.errors import AllocationError


def select_recent_cache_nodes(
    engine: AllocationEngine,
    used_slots: Sequence[float],
    total_slots: Sequence[float],
    hop_matrix: np.ndarray,
    ranges: Sequence[float],
    already_storing: Sequence[int],
    offline_nodes: Optional[Sequence[int]] = None,
) -> Tuple[int, ...]:
    """Pick the extra nodes that cache the new block.

    ``already_storing`` are the block's permanent storing nodes (and the
    miner); picking them again would waste cache slots, so they are
    excluded from the facility side.  Returns an empty tuple when no
    eligible node remains — every node still holds the last block, so
    recovery stays possible, just less pervasive.
    """
    exclude = sorted(set(already_storing) | set(offline_nodes or ()))
    if len(exclude) >= len(used_slots):
        return ()
    try:
        decision = engine.place_item(
            used_slots=used_slots,
            total_slots=total_slots,
            hop_matrix=hop_matrix,
            ranges=ranges,
            exclude_nodes=exclude,
        )
    except AllocationError:
        return ()
    return decision.storing_nodes


def recent_block_coverage(
    storing_by_node: Sequence[Sequence[int]], block_index: int
) -> float:
    """Fraction of nodes holding ``block_index`` — the "pervasiveness" the
    paper wants to maximise for recent blocks."""
    if not storing_by_node:
        return 0.0
    holders = sum(1 for held in storing_by_node if block_index in held)
    return holders / len(storing_by_node)
