"""The paper's Proof-of-Stake mechanism (Section V).

Mechanism recap:

* Every node derives a **hit** from the previous block's POSHash and its own
  account address (Eq. 7)::

      POSHash(t+1, i) = Hash[POSHash(t) ‖ Account_i]
      h_i = POSHash(t+1, i) mod M

* Every node has a **target value** ``R_i = S_i · Q_i · t · B`` (Eq. 8)
  growing with the seconds ``t`` since the previous block; the first node
  whose ``h_i ≤ R_i`` (Eq. 9) mines the block.

* ``B`` is the **expectation-time amendment** (Eq. 14) keeping the expected
  inter-block time at ``t0``::

      B = M / ((n+1) · t0 · Ū),     Ū = mean(S_i · Q_i)

Everything is verifiable from public chain state: any node can recompute
``h_i``, ``S_i``, ``Q_i`` and ``B`` for any other node and reject a block
whose claim does not hold.

Both mining-time computations are provided: the **analytic** earliest
satisfying second (used by the event-driven simulation) and the paper's
literal **per-second polling loop** (Section V-C, used by the energy meter
and by the test that proves the two agree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.hashing import hash_items, hash_to_int
from repro.obs import runtime as _obs


def compute_pos_hash(previous_pos_hash_hex: str, account_address: str) -> str:
    """POSHash(t+1, i) = Hash[POSHash(t) ‖ Account_i] (Eq. 7, first line)."""
    return hash_items("poshash", previous_pos_hash_hex, account_address).hex()


def compute_hit(previous_pos_hash_hex: str, account_address: str, modulus: int) -> int:
    """h_i = POSHash(t+1, i) mod M (Eq. 7, second line)."""
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    digest = bytes.fromhex(compute_pos_hash(previous_pos_hash_hex, account_address))
    hit = hash_to_int(digest) % modulus
    if _obs.is_enabled():
        _obs.add("pos.hits_computed")
        _obs.observe("pos.hit_value", hit)
    return hit


def compute_amendment(
    modulus: int, node_count: int, expected_interval: float, mean_u: float
) -> float:
    """The expectation-time amendment B (Eq. 14, taken with equality).

    ``mean_u`` is Ū = (1/n) Σ S_i Q_i.  Raises when no node can mine
    (Ū = 0) because B would be infinite.
    """
    if node_count < 1:
        raise ValueError("need at least one node")
    if expected_interval <= 0:
        raise ValueError("expected interval must be positive")
    if mean_u <= 0:
        raise ValueError("mean stake-storage product must be positive")
    amendment = modulus / ((node_count + 1) * expected_interval * mean_u)
    if _obs.is_enabled():
        _obs.gauge_set("pos.amendment_b", amendment)
    return amendment


def target_value(stake: float, stored: float, elapsed: float, amendment: float) -> float:
    """R_i = S_i · Q_i · t · B (Eq. 8)."""
    if elapsed < 0:
        raise ValueError("elapsed time cannot be negative")
    return stake * stored * elapsed * amendment


def satisfies_target(
    hit: int, stake: float, stored: float, elapsed: float, amendment: float
) -> bool:
    """The mining condition h_i ≤ R_i (Eq. 9).

    Evaluated in exact rational arithmetic: hits are 64-bit integers, and
    a float product can round across the h = R boundary, which would let
    miners and validators disagree about the earliest valid second.
    """
    if elapsed < 0:
        raise ValueError("elapsed time cannot be negative")
    target = (
        Fraction(stake) * Fraction(stored) * Fraction(elapsed) * Fraction(amendment)
    )
    satisfied = Fraction(hit) <= target
    if _obs.is_enabled():
        _obs.add("pos.target_checks")
        if satisfied:
            _obs.add("pos.target_hits")
    return satisfied


def _exact_ceil_quotient(hit: int, stake: float, stored: float, amendment: float) -> int:
    """⌈hit / (stake·stored·amendment)⌉ in exact integer arithmetic.

    ``float.as_integer_ratio`` decomposes each factor exactly, so the
    rate is the integer ratio N/D = stake·stored·amendment and the
    ceiling division ``-(-hit·D // N)`` equals
    ``math.ceil(Fraction(hit) / exact_rate)`` — without building Fraction
    objects (which normalise by gcd on every operation) on a path hit
    once per node per block.
    """
    s_num, s_den = stake.as_integer_ratio()
    q_num, q_den = stored.as_integer_ratio()
    b_num, b_den = amendment.as_integer_ratio()
    numerator = s_num * q_num * b_num
    denominator = s_den * q_den * b_den
    return -((-hit * denominator) // numerator)


def mining_delay(hit: int, stake: float, stored: float, amendment: float) -> Optional[int]:
    """Earliest whole second t ≥ 1 at which h_i ≤ S_i·Q_i·t·B.

    This is the closed form of the paper's per-second polling loop
    (Section V-C): the node's target grows linearly each second until it
    crosses the hit.  Returns ``None`` when the node can never mine
    (``S_i·Q_i·B = 0``).

    Exact integer arithmetic throughout: float division of a >2^53 hit
    can be off by many ULPs, which would return a second at which Eq. 9
    does not hold (``tests/property`` pins this against the Fraction
    reference, :func:`_mining_delay_reference`).
    """
    rate = stake * stored * amendment
    if rate <= 0:
        if _obs.is_enabled():
            _obs.add("pos.unmineable")
        return None
    if hit <= 0:
        delay = 1  # the loop checks at t = 1 first
    else:
        delay = max(1, _exact_ceil_quotient(hit, stake, stored, amendment))
    if _obs.is_enabled():
        _obs.add("pos.delays_computed")
        _obs.observe("pos.mining_delay_seconds", delay)
    return delay


def _mining_delay_reference(
    hit: int, stake: float, stored: float, amendment: float
) -> Optional[int]:
    """The original Fraction-based :func:`mining_delay` (differential oracle)."""
    rate = stake * stored * amendment
    if rate <= 0:
        return None
    if hit <= 0:
        return 1
    exact_rate = Fraction(stake) * Fraction(stored) * Fraction(amendment)
    return max(1, math.ceil(Fraction(hit) / exact_rate))


def compute_hits(
    previous_pos_hash_hex: str, addresses: "Sequence[str]", modulus: int
) -> "List[int]":
    """The whole lottery's hits in one call (Eq. 7 across accounts).

    Element-for-element identical to calling :func:`compute_hit` per
    address (hashing is inherently per-account; the batch saves the
    per-call guard/observability overhead and gives callers one place to
    draw a cluster's lottery).
    """
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    hits = [
        hash_to_int(
            bytes.fromhex(compute_pos_hash(previous_pos_hash_hex, address))
        )
        % modulus
        for address in addresses
    ]
    if _obs.is_enabled():
        _obs.add("pos.hits_computed", len(hits))
        for hit in hits:
            _obs.observe("pos.hit_value", hit)
    return hits


def mining_delays(
    hits: "Sequence[int]",
    stakes: "Sequence[float]",
    storeds: "Sequence[float]",
    amendment: float,
) -> "List[Optional[int]]":
    """Vectorised :func:`mining_delay` across accounts.

    The float rate test (mineable at all?) and the ``hit ≤ 0`` screen run
    as numpy array operations; only the mineable accounts with positive
    hits pay the exact integer ceiling division.  Per-element results are
    identical to the scalar function's (same branch structure, same exact
    arithmetic), which the differential suite asserts.
    """
    hits_list = [int(h) for h in hits]
    stakes_arr = np.asarray(stakes, dtype=float)
    storeds_arr = np.asarray(storeds, dtype=float)
    if not (len(hits_list) == stakes_arr.shape[0] == storeds_arr.shape[0]):
        raise ValueError("hits, stakes, and storeds must have equal lengths")
    rates = stakes_arr * storeds_arr * amendment
    # ``~(rate <= 0)`` (not ``rate > 0``) so NaN rates fall through to the
    # exact-arithmetic branch and raise exactly as the scalar path does.
    mineable = ~(rates <= 0)
    delays: "List[Optional[int]]" = []
    for index, hit in enumerate(hits_list):
        if not mineable[index]:
            delays.append(None)
        elif hit <= 0:
            delays.append(1)
        else:
            delays.append(
                max(
                    1,
                    _exact_ceil_quotient(
                        hit,
                        float(stakes_arr[index]),
                        float(storeds_arr[index]),
                        amendment,
                    ),
                )
            )
    if _obs.is_enabled():
        computed = [d for d in delays if d is not None]
        if len(computed) < len(delays):
            _obs.add("pos.unmineable", len(delays) - len(computed))
        if computed:
            _obs.add("pos.delays_computed", len(computed))
        for delay in computed:
            _obs.observe("pos.mining_delay_seconds", delay)
    return delays


def lottery_delays(
    previous_pos_hash_hex: str,
    addresses: "Sequence[str]",
    stakes: "Sequence[float]",
    storeds: "Sequence[float]",
    amendment: float,
    modulus: int,
) -> "List[Tuple[int, Optional[int]]]":
    """One full mining race: each account's ``(hit, delay)`` pair.

    Convenience composition of :func:`compute_hits` and
    :func:`mining_delays` — what every node computes per tip, batched
    across the cluster.
    """
    hits = compute_hits(previous_pos_hash_hex, addresses, modulus)
    return list(zip(hits, mining_delays(hits, stakes, storeds, amendment)))


def per_second_mining_loop(
    hit: int,
    stake: float,
    stored: float,
    amendment: float,
    max_seconds: int = 1_000_000,
) -> Iterator[Tuple[int, float, bool]]:
    """The literal Algorithm of Section V-C, one tick per second.

    Yields ``(t, R_i, satisfied)`` per second until the condition holds or
    ``max_seconds`` elapses.  Used by the energy meter (each tick costs
    energy) and by the equivalence test against :func:`mining_delay`.
    """
    for t in range(1, max_seconds + 1):
        target = target_value(stake, stored, float(t), amendment)
        satisfied = hit <= target
        _obs.add("pos.poll_ticks")
        yield t, target, satisfied
        if satisfied:
            return


@dataclass(frozen=True)
class MiningClaim:
    """A verifiable statement of why a miner won a block."""

    miner_address: str
    hit: int
    stake: float
    stored: float
    elapsed: float
    amendment: float

    def is_valid(self, previous_pos_hash_hex: str, modulus: int) -> bool:
        """Re-derive the hit and re-check Eq. 9."""
        expected_hit = compute_hit(previous_pos_hash_hex, self.miner_address, modulus)
        if expected_hit != self.hit:
            return False
        return satisfies_target(
            self.hit, self.stake, self.stored, self.elapsed, self.amendment
        )
