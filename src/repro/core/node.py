"""The edge blockchain protocol node.

One :class:`EdgeNode` per edge device, tying every subsystem together
(Section III): it produces signed data + metadata, relays and pools
metadata, mines blocks with the PoS lottery, computes storage allocations
when it wins, stores what the chain assigns it, proactively fetches
assigned payloads from producers, serves data requests, and recovers
missing blocks after disconnections.

The node is event-driven: the network delivers messages into
:meth:`EdgeNode.handle`, and mining is a scheduled event at the node's
earliest Eq.-9-satisfying second (see ``repro.core.pos.mining_delay`` —
provably the same instant the paper's per-second polling loop fires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.account import Account
from repro.core.admission import (
    BAD_ALLOCATION,
    EQUIVOCATION,
    FLOOD,
    MAX_REQUEST_INDICES,
    MAX_RESPONSE_BLOCKS,
    AdmissionControl,
    block_admissible,
    classify_rejection,
    foreign_metadata_admissible,
    metadata_admissible,
)
from repro.core.allocation import AllocationEngine
from repro.core.block import Block
from repro.core.blockchain import Blockchain, BlockOutcome
from repro.core.config import SystemConfig
from repro.core.errors import ConsensusError, StorageError, ValidationError
from repro.obs import runtime as _obs
from repro.core.messages import (
    CATEGORY_BLOCK,
    CATEGORY_BLOCK_RECOVERY,
    CATEGORY_CHAIN_SYNC,
    CATEGORY_DATA_REQUEST,
    CATEGORY_DATA_RESPONSE,
    CATEGORY_DISSEMINATION,
    CATEGORY_DISSEMINATION_REQUEST,
    CATEGORY_METADATA,
    CATEGORY_STORAGE_CLAIM,
    BlockAnnounce,
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    DataNack,
    DataRequest,
    DataResponse,
    DisseminationRequest,
    DisseminationResponse,
    InvalidStorageClaim,
    MetadataAnnounce,
)
from repro.core.metadata import MetadataItem, create_metadata, rehost_metadata
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.core.recent_blocks import select_recent_cache_nodes
from repro.core.storage import NodeStorage
from repro.core.sync import SyncState, plan_block_requests
from repro.energy.meter import EnergyMeter
from repro.simnet.engine import EventEngine, EventHandle
from repro.simnet.topology import Topology
from repro.simnet.transport import Network


@dataclass
class PendingRequest:
    """An outstanding data request from this node."""

    data_id: str
    started_at: float
    candidates: List[int]
    tried: Set[int] = field(default_factory=set)
    retries: int = 0
    #: Node currently being waited on, and a serial that invalidates stale
    #: response timeouts once the request moves on.
    current_target: Optional[int] = None
    attempt_serial: int = 0


#: Seconds to wait for a data response before declaring the storing node
#: unresponsive (paper: no response → claim the storage invalid).
_RESPONSE_TIMEOUT = 10.0


#: When every replica is unreachable (mobility partition), retry after this
#: long — the topology usually re-merges within a mobility epoch.
_REQUEST_RETRY_DELAY = 30.0

#: Retry attempts before a request counts as failed.
_REQUEST_MAX_RETRIES = 3


@dataclass
class NodeCounters:
    """Per-node protocol statistics."""

    blocks_mined: int = 0
    data_produced: int = 0
    data_adopted: int = 0  # foreign items migrated in from sibling clusters
    data_requests_sent: int = 0
    data_requests_served: int = 0
    data_requests_failed: int = 0
    data_nacks_sent: int = 0
    blocks_rejected: int = 0
    recoveries_completed: int = 0
    claims_broadcast: int = 0


class EdgeNode:
    """A full protocol participant."""

    def __init__(
        self,
        node_id: int,
        account: Account,
        config: SystemConfig,
        network: Network,
        engine: EventEngine,
        topology: Topology,
        allocator: AllocationEngine,
        address_of: Dict[int, str],
        mobility_ranges: Sequence[float],
        meter: Optional[EnergyMeter] = None,
    ):
        self.node_id = node_id
        self.account = account
        self.config = config
        self.network = network
        self.engine = engine
        self.topology = topology
        self.allocator = allocator
        self.mobility_ranges = list(mobility_ranges)
        self.meter = meter

        node_ids = sorted(address_of.keys())
        self.chain = Blockchain(node_ids, config, address_of)
        self.storage = NodeStorage(
            capacity=config.storage_capacity,
            recent_cache_capacity=config.recent_cache_capacity,
        )
        self.storage.set_last_block(self.chain.tip)
        self.mempool: Dict[str, MetadataItem] = {}
        self.own_payloads: Set[str] = set()
        self.sync = SyncState(
            max_buffered=config.sync_buffer_limit,
            max_outstanding=config.sync_outstanding_limit,
        )
        self.admission = AdmissionControl(
            quarantine_threshold=config.quarantine_threshold
        )
        #: Per-source time of the last fork-triggered chain request;
        #: repeats within a block interval are suppressed while the first
        #: response is pending, so an invalid-block spammer cannot goad
        #: this node into a chain-request storm.
        self._fork_chain_request_at: Dict[int, float] = {}
        self.counters = NodeCounters()
        self.delivery_times: List[float] = []
        #: (data_id, storing_node) pairs marked invalid by claims
        #: (Section III-B-2); such replicas are skipped when fetching.
        self.invalid_storage: Set[Tuple[str, int]] = set()

        self._mining_handle: Optional[EventHandle] = None
        self._pos_wait_started: float = 0.0
        self._pending: Dict[int, PendingRequest] = {}
        self._next_request_id = 0
        self._produce_sequence = 0

        network.register(node_id, self.handle)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin mining off the genesis block."""
        self._pos_wait_started = self.engine.now
        self._schedule_mining()

    def on_reconnect(self) -> None:
        """Called by the churn injector when this node comes back online."""
        self._pos_wait_started = self.engine.now
        self._schedule_mining()

    @property
    def online(self) -> bool:
        return self.network.is_online(self.node_id)

    # ------------------------------------------------------------------ data production

    def produce_data(
        self,
        data_type: str = "Sensor/Generic",
        location: str = "Field/0,0",
        valid_time_minutes: Optional[float] = None,
        properties: str = "",
        size_bytes: Optional[int] = None,
    ) -> MetadataItem:
        """Create, sign, and announce a new data item (Section IV-B)."""
        valid = (
            valid_time_minutes
            if valid_time_minutes is not None
            else self.config.default_valid_time_minutes
        )
        kwargs = {} if size_bytes is None else {"size_bytes": size_bytes}
        metadata = create_metadata(
            account=self.account,
            producer=self.node_id,
            sequence=self._produce_sequence,
            created_at=self.engine.now,
            data_type=data_type,
            location=location,
            valid_time_minutes=valid,
            properties=properties,
            **kwargs,
        )
        self._produce_sequence += 1
        self.counters.data_produced += 1
        self.own_payloads.add(metadata.data_id)
        self.mempool[metadata.data_id] = metadata
        self.network.broadcast(
            self.node_id,
            MetadataAnnounce(metadata),
            MetadataAnnounce(metadata).wire_size(),
            CATEGORY_METADATA,
        )
        return metadata

    def adopt_foreign_metadata(self, item: MetadataItem) -> Optional[MetadataItem]:
        """Import a metadata item minted in another cluster (migration).

        The fog tier hands this gateway an item from a sibling allocation
        domain whose producer is not in the local roster.  The gateway
        re-signs it under its own identity (:func:`rehost_metadata`),
        keeps the payload locally, and announces it like home-grown data —
        from here the local miner's UFL allocation places it and normal
        dissemination replicates the payload.  Returns the rehosted item,
        or ``None`` if the data id is already known locally (on-chain or
        pending), making migration idempotent.

        The item is untrusted until proven otherwise: it must pass
        structural admission (embedded key derives to the claimed
        producer address, producer signature verifies, not expired)
        before the gateway re-signs it — otherwise a tampered migration
        would launder a forgery into the local mempool under the
        gateway's own identity.  Rejections count under
        ``chaos.rejections{reason="foreign_metadata"}``; the sender is
        unknown at this layer, so nobody is charged here (the fog tier
        attributes pushes to the pushing super-peer).
        """
        if item.data_id in self.mempool or self.chain.metadata_of(item.data_id) is not None:
            return None
        reason = foreign_metadata_admissible(item, self.engine.now)
        if reason is not None:
            self.admission.reject(None, reason)
            return None
        adopted = rehost_metadata(item, self.account, self.node_id)
        self.counters.data_adopted += 1
        self.own_payloads.add(adopted.data_id)
        self.mempool[adopted.data_id] = adopted
        self.network.broadcast(
            self.node_id,
            MetadataAnnounce(adopted),
            MetadataAnnounce(adopted).wire_size(),
            CATEGORY_METADATA,
        )
        return adopted

    # ------------------------------------------------------------------ mining

    def _mining_inputs(self) -> Tuple[int, Optional[int]]:
        """(hit, delay-in-seconds) for the race on top of the current tip."""
        parent = self.chain.tip
        hit = compute_hit(
            parent.pos_hash, self.account.address, self.config.hit_modulus
        )
        stake = self.chain.state.tokens(self.node_id)
        stored = self.chain.state.stored_items(self.node_id, parent.timestamp)
        amendment = self.chain.state.amendment(parent.timestamp)
        return hit, mining_delay(hit, stake, stored, amendment)

    def _schedule_mining(self) -> None:
        if self._mining_handle is not None:
            self._mining_handle.cancel()
            self._mining_handle = None
        if not self.online:
            return
        parent = self.chain.tip
        if self.config.consensus == "pow":
            # Traditional baseline: brute-force from the moment we saw the
            # tip; the success time is geometric in the attempt count.
            attempts = int(
                self.engine.np_rng.geometric(16.0**-self.config.pow_difficulty)
            )
            fire_at = self.engine.now + attempts / self.config.pow_hash_rate
        else:
            _, delay = self._mining_inputs()
            if delay is None:
                return  # cannot mine (zero stake-storage product)
            fire_at = max(parent.timestamp + delay, self.engine.now)
        self._mining_handle = self.engine.call_at(
            fire_at, self._try_mine, parent.current_hash
        )

    def _try_mine(self, expected_parent_hash: str) -> None:
        if not self.online:
            return
        parent = self.chain.tip
        if parent.current_hash != expected_parent_hash:
            return  # tip moved; a newer schedule exists
        block = self._build_block(parent)
        try:
            self.chain.append_block(block)
        except ValidationError:
            # Should not happen: we built it from our own state.  Reschedule.
            self._schedule_mining()
            return
        self.counters.blocks_mined += 1
        self._bill_pos_wait()
        self._apply_tip_assignments(block)
        self.network.broadcast(
            self.node_id, BlockAnnounce(block), BlockAnnounce(block).wire_size(), CATEGORY_BLOCK
        )
        self._schedule_mining()

    def _build_block(self, parent: Block) -> Block:
        """Assemble the next block: pack metadata, compute all placements.

        All placement inputs are evaluated at the block's timestamp (not
        the wall-clock mining instant), so a validator holding the same
        chain state and topology can re-derive every storing-node decision
        bit for bit (see ``repro.core.validation``).
        """
        now = max(self.engine.now, parent.timestamp + 1.0)  # = block timestamp
        state = self.chain.state
        hop_matrix = self.topology.hop_matrix()
        node_ids = list(state.node_ids)
        capacity = float(self.config.storage_capacity)
        # Clamp: a chain carrying forged assignments can credit a node with
        # more slots than physically exist; for placement it is just full.
        used = [
            min(float(state.used_slots(node, now)), capacity) for node in node_ids
        ]
        total = [capacity] * len(node_ids)

        packed: List[MetadataItem] = []
        for data_id in sorted(self.mempool):
            item = self.mempool[data_id]
            if self.chain.metadata_of(data_id) is not None:
                continue  # already packed by an earlier block
            if item.is_expired(now):
                continue
            decision = self.allocator.place_item(
                used, total, hop_matrix, self.mobility_ranges
            )
            packed.append(item.with_storing_nodes(decision.storing_nodes))
            for node in decision.storing_nodes:
                used[node_ids.index(node)] += 1.0

        block_decision = self.allocator.place_item(
            used, total, hop_matrix, self.mobility_ranges
        )
        for node in block_decision.storing_nodes:
            used[node_ids.index(node)] += 1.0

        recent_nodes = select_recent_cache_nodes(
            self.allocator,
            used,
            total,
            hop_matrix,
            self.mobility_ranges,
            already_storing=tuple(block_decision.storing_nodes) + (self.node_id,),
        )

        if self.config.consensus == "pow":
            hit, target_b = 0, 0.0
        else:
            hit, _ = self._mining_inputs()
            target_b = state.amendment(parent.timestamp)
        timestamp = now  # already clamped past the parent above
        return Block(
            index=parent.index + 1,
            timestamp=timestamp,
            previous_hash=parent.current_hash,
            pos_hash=compute_pos_hash(parent.pos_hash, self.account.address),
            miner=self.node_id,
            miner_address=self.account.address,
            hit=hit,
            target_b=target_b,
            metadata_items=tuple(packed),
            storing_nodes=tuple(block_decision.storing_nodes),
            previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
            recent_cache_nodes=tuple(recent_nodes),
        )

    def _bill_pos_wait(self) -> None:
        """Charge mining energy for the seconds since the last tip change.

        PoS bills the per-second polling loop; PoW bills the hash attempts
        a continuously-hashing miner would have burned in the same window.
        """
        if self.meter is not None:
            waited = max(0.0, self.engine.now - self._pos_wait_started)
            if self.config.consensus == "pow":
                self.meter.charge_pow_hashes(
                    int(waited * self.config.pow_hash_rate)
                )
            else:
                self.meter.charge_pos_ticks(waited)
        self._pos_wait_started = self.engine.now

    # ------------------------------------------------------------------ tip processing

    def _apply_tip_assignments(self, block: Block) -> None:
        """React to a block that just became the tip."""
        now = self.engine.now
        self.storage.evict_expired(now)
        self.storage.set_last_block(block)
        for item in block.metadata_items:
            self.mempool.pop(item.data_id, None)
        for data_id in [d for d, it in self.mempool.items() if it.is_expired(now)]:
            del self.mempool[data_id]
        if self.node_id in block.storing_nodes:
            try:
                self.storage.store_block(block)
            except StorageError:
                pass  # full: the chain credit stands but we can't serve it
        if self.node_id in block.recent_cache_nodes:
            self.storage.cache_recent_block(block)
        for item in block.metadata_items:
            if self.node_id not in item.storing_nodes:
                continue
            try:
                self.storage.store_data(
                    item, has_payload=(item.data_id in self.own_payloads)
                )
            except StorageError:
                continue
            if item.data_id not in self.own_payloads and item.producer != self.node_id:
                request = DisseminationRequest(
                    data_id=item.data_id, requester=self.node_id
                )
                self.network.send(
                    self.node_id,
                    item.producer,
                    request,
                    request.wire_size(),
                    CATEGORY_DISSEMINATION_REQUEST,
                )
        self._maybe_prune()

    def _maybe_prune(self) -> None:
        """Advance the lifecycle pruning horizon after a tip change.

        No-op unless the config carries a :class:`LifecycleSpec`.  When
        the chain drops a prefix, locally stored bodies below the new
        floor go with it — their slots stay accounted (the chain-recorded
        assignment stands), only the serveable copies move to the cold
        tier handled by the persistence layer.
        """
        dropped = self.chain.maybe_prune()
        if not dropped:
            return
        self.storage.prune_block_bodies(self.chain.first_retained_index)
        if _obs.is_enabled():
            _obs.add("lifecycle.pruned_blocks", dropped)

    # ------------------------------------------------------------------ data access

    def request_data(self, data_id: str) -> Optional[int]:
        """Fetch a data item per Section IV-D.

        Returns the request id, or None when the request resolved locally
        (we store the payload ourselves) or no metadata exists on-chain.
        """
        metadata = self.chain.metadata_of(data_id)
        if metadata is None:
            self.counters.data_requests_failed += 1
            return None
        if self.storage.can_serve(data_id) or data_id in self.own_payloads:
            self.delivery_times.append(0.0)
            self.counters.data_requests_sent += 1
            self.counters.data_requests_served += 1
            return None
        candidates = self._candidates_for(metadata)
        if not candidates:
            self.counters.data_requests_failed += 1
            return None
        request_id = self._next_request_id
        self._next_request_id += 1
        self._pending[request_id] = PendingRequest(
            data_id=data_id, started_at=self.engine.now, candidates=candidates
        )
        self.counters.data_requests_sent += 1
        self._try_next_candidate(request_id)
        return request_id

    def _candidates_for(self, metadata: MetadataItem) -> List[int]:
        """Serving candidates, nearest first, skipping claimed-invalid pairs."""
        candidates = sorted(
            (
                node
                for node in metadata.storing_nodes
                if node != self.node_id
                and (metadata.data_id, node) not in self.invalid_storage
            ),
            key=lambda node: (self._hops_to(node), node),
        )
        producer = metadata.producer
        if (
            producer != self.node_id
            and producer not in candidates
            and (metadata.data_id, producer) not in self.invalid_storage
        ):
            candidates.append(producer)  # last resort: the source
        return candidates

    def _hops_to(self, node: int) -> int:
        hops = self.topology.hop_count(self.node_id, node)
        return hops if hops >= 0 else 10**6

    def _try_next_candidate(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        for candidate in pending.candidates:
            if candidate in pending.tried:
                continue
            pending.tried.add(candidate)
            request = DataRequest(
                data_id=pending.data_id,
                requester=self.node_id,
                request_id=request_id,
            )
            receipt = self.network.send(
                self.node_id,
                candidate,
                request,
                request.wire_size(),
                CATEGORY_DATA_REQUEST,
            )
            if receipt.delivered:
                pending.current_target = candidate
                pending.attempt_serial += 1
                self.engine.schedule(
                    _RESPONSE_TIMEOUT,
                    self._on_response_timeout,
                    request_id,
                    pending.attempt_serial,
                )
                return  # wait for the response / NACK / timeout
        # Every candidate unreachable or NACKed: retry once the topology has
        # had a chance to re-merge, with a fresh candidate list.
        if pending.retries < _REQUEST_MAX_RETRIES:
            pending.retries += 1
            pending.tried.clear()
            pending.current_target = None
            pending.attempt_serial += 1  # invalidate in-flight timeouts
            self.engine.schedule(
                _REQUEST_RETRY_DELAY, self._retry_request, request_id
            )
            return
        self._pending.pop(request_id, None)
        self.counters.data_requests_failed += 1

    def _on_response_timeout(self, request_id: int, serial: int) -> None:
        """No response within the timeout — the paper's invalidity rule."""
        pending = self._pending.get(request_id)
        if pending is None or pending.attempt_serial != serial:
            return  # answered (or moved on) in the meantime
        target = pending.current_target
        if target is not None:
            pair = (pending.data_id, target)
            if pair not in self.invalid_storage:
                self.invalid_storage.add(pair)
                self.counters.claims_broadcast += 1
                claim = InvalidStorageClaim(
                    data_id=pending.data_id,
                    storing_node=target,
                    claimer=self.node_id,
                )
                self.network.broadcast(
                    self.node_id, claim, claim.wire_size(), CATEGORY_STORAGE_CLAIM
                )
        self._try_next_candidate(request_id)

    def _retry_request(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None or not self.online:
            return
        metadata = self.chain.metadata_of(pending.data_id)
        if metadata is not None:
            pending.candidates = self._candidates_for(metadata)
        self._try_next_candidate(request_id)

    # ------------------------------------------------------------------ message dispatch

    def handle(self, source: int, payload: object, category: str) -> None:
        """Network delivery entry point."""
        if self.admission.is_quarantined(source):
            _obs.add("chaos.dropped_quarantined")
            return
        if isinstance(payload, MetadataAnnounce):
            self._on_metadata(source, payload.metadata)
        elif isinstance(payload, BlockAnnounce):
            self._on_block_announce(source, payload.block)
        elif isinstance(payload, DataRequest):
            self._on_data_request(source, payload)
        elif isinstance(payload, DataResponse):
            self._on_data_response(payload)
        elif isinstance(payload, DataNack):
            self._on_data_nack(source, payload)
        elif isinstance(payload, InvalidStorageClaim):
            self._on_storage_claim(payload)
        elif isinstance(payload, DisseminationRequest):
            self._on_dissemination_request(payload)
        elif isinstance(payload, DisseminationResponse):
            self._on_dissemination_response(payload)
        elif isinstance(payload, BlockRequest):
            self._on_block_request(source, payload)
        elif isinstance(payload, BlockResponse):
            self._on_block_response(source, payload)
        elif isinstance(payload, ChainRequest):
            self._on_chain_request(source, payload)
        elif isinstance(payload, ChainResponse):
            self._on_chain_response(source, payload)

    # ------------------------------------------------------------------ handlers

    def _on_metadata(self, source: int, item: MetadataItem) -> None:
        reason = metadata_admissible(
            item,
            self.chain.address_of,
            verify_signature=self.config.verify_metadata_signatures,
            signature_cache=self.admission.signature_cache,
        )
        if reason is not None:
            self.admission.reject(source, reason)
            return
        if self.chain.metadata_of(item.data_id) is not None:
            return
        if item.is_expired(self.engine.now):
            return
        self.mempool.setdefault(item.data_id, item)

    def _allocations_acceptable(self, block: Block) -> bool:
        """Re-derive the block's placements when validation is enabled."""
        if not self.config.validate_allocations:
            return True
        from repro.core.validation import (
            allocations_verifiable,
            verify_block_allocations,
        )

        if not allocations_verifiable(self.config.placement_solver):
            return True  # the random baseline cannot be re-derived
        violations = verify_block_allocations(
            block,
            self.chain.state,
            self.allocator,
            self.topology.hop_matrix(),
            self.mobility_ranges,
            self.config.storage_capacity,
        )
        return not violations

    def _on_block_announce(self, source: int, block: Block) -> None:
        reason = block_admissible(block, self.chain.address_of)
        if reason is not None:
            self.counters.blocks_rejected += 1
            self.admission.reject(source, reason)
            return
        if self.admission.equivocation.observe(block, self.chain.height):
            # One miner, one height, two distinct blocks: nothing-at-stake
            # equivocation.  The block is dropped and the miner charged.
            self.counters.blocks_rejected += 1
            self.admission.reject(block.miner, EQUIVOCATION)
            return
        tip = self.chain.tip
        if (
            block.index == tip.index + 1
            and block.previous_hash == tip.current_hash
            and not self._allocations_acceptable(block)
        ):
            self.counters.blocks_rejected += 1
            # Allocation re-derivation uses the *current* topology, which
            # under mobility can lag the miner's view — count the
            # rejection but charge nobody (see DESIGN.md §11).
            self.admission.reject(None, BAD_ALLOCATION)
            return
        if block.index == tip.index + 1 and block.previous_hash != tip.current_hash:
            # Fork at the next height: our tip and the miner's parent differ.
            # Longest-chain resolution: fetch the sender's chain — at most
            # once per block interval per source while a response is
            # pending, so forged forks cannot amplify into request storms.
            last = self._fork_chain_request_at.get(source)
            if (
                last is not None
                and self.engine.now - last < self.config.expected_block_interval
            ):
                return
            self._fork_chain_request_at[source] = self.engine.now
            request = ChainRequest(origin=self.node_id)
            self.network.send(
                self.node_id, source, request, request.wire_size(), CATEGORY_CHAIN_SYNC
            )
            return
        try:
            outcome = self.chain.consider_block(block)
        except ValidationError as error:
            self.counters.blocks_rejected += 1
            self.admission.reject(source, classify_rejection(error))
            return
        if outcome is BlockOutcome.APPENDED:
            self._bill_pos_wait()
            self._apply_tip_assignments(block)
            self._drain_sync_buffer()
            self._schedule_mining()
        elif outcome is BlockOutcome.GAP:
            self._start_gap_recovery(block, source)
        # DUPLICATE / STALE: drop (first-received wins at equal height).

    def _start_gap_recovery(self, block: Block, source: Optional[int] = None) -> None:
        """Buffer an ahead-of-tip block and request the gap (Section IV-D)."""
        self.sync.begin(self.engine.now)
        self.sync.buffer_block(block, source)
        self._request_missing_blocks()
        # Escalation: if targeted recovery has stalled for two block
        # intervals (requested blocks never arrived — e.g. their storing
        # nodes are offline too), fetch the whole chain from the announcing
        # miner instead of waiting forever.
        stalled_for = self.engine.now - (self.sync.started_at or self.engine.now)
        if (
            not self.sync.chain_requested
            and stalled_for > 2 * self.config.expected_block_interval
            and self.network.is_online(block.miner)
        ):
            self.sync.chain_requested = True
            request = ChainRequest(origin=self.node_id)
            self.network.send(
                self.node_id,
                block.miner,
                request,
                request.wire_size(),
                CATEGORY_CHAIN_SYNC,
            )

    def _request_missing_blocks(self) -> None:
        missing = [
            index
            for index in self.sync.missing_below(self.chain.height)
            if index not in self.sync.outstanding
        ]
        if not missing:
            return
        neighbors = [
            node
            for node in self.topology.neighbors(self.node_id)
            if self.network.is_online(node)
            and not self.admission.is_quarantined(node)
        ]
        plan = plan_block_requests(missing, neighbors)
        for neighbor, indices in plan.items():
            fresh = self.sync.note_requested(indices)
            if not fresh:
                continue
            request = BlockRequest(indices=tuple(fresh), origin=self.node_id)
            self.network.send(
                self.node_id,
                neighbor,
                request,
                request.wire_size(),
                CATEGORY_BLOCK_RECOVERY,
            )

    def _drain_sync_buffer(self) -> None:
        """Append buffered blocks that now extend the tip."""
        while True:
            nxt = self.sync.next_appendable(self.chain.height)
            if nxt is None:
                break
            if not self._allocations_acceptable(nxt):
                self.sync.pop(nxt.index)
                self.counters.blocks_rejected += 1
                continue
            try:
                outcome = self.chain.consider_block(nxt)
            except ConsensusError as error:
                # The block links to our tip but its PoS claim fails — that
                # is provably forged regardless of forks (the claim is
                # deterministic in the shared parent state).  Charge the
                # peer that delivered it and do not react further.
                delivered_by = self.sync.source_of(nxt.index)
                self.sync.pop(nxt.index)
                self.counters.blocks_rejected += 1
                self.admission.reject(delivered_by, classify_rejection(error))
                continue
            except ValidationError:
                # The recovered block does not build on our chain: we hold a
                # stale fork (we went offline on the losing branch).  Escalate
                # once to a whole-chain fetch from that block's miner — it
                # certainly holds the chain it mined on.
                self.sync.pop(nxt.index)
                self.counters.blocks_rejected += 1
                if not self.sync.chain_requested and self.network.is_online(nxt.miner):
                    self.sync.chain_requested = True
                    request = ChainRequest(origin=self.node_id)
                    self.network.send(
                        self.node_id,
                        nxt.miner,
                        request,
                        request.wire_size(),
                        CATEGORY_CHAIN_SYNC,
                    )
                continue
            self.sync.pop(nxt.index)
            if outcome is BlockOutcome.APPENDED:
                self._apply_tip_assignments(nxt)
        if self.sync.recovering:
            if not self.sync.buffered:
                self.sync.finish(self.engine.now)
                self.counters.recoveries_completed += 1
                self._schedule_mining()
            else:
                self._request_missing_blocks()

    def _on_block_request(self, source: int, request: BlockRequest) -> None:
        if len(request.indices) > MAX_REQUEST_INDICES:
            self.admission.reject(source, FLOOD)
            return
        if not self.admission.request_rate.allow(source, self.engine.now):
            self.admission.reject(source, FLOOD)
            return
        served: List[Block] = []
        unsatisfied: List[int] = []
        for index in request.indices:
            block = self.storage.get_block(index)
            if block is not None:
                served.append(block)
            else:
                unsatisfied.append(index)
        if served:
            response = BlockResponse(blocks=tuple(served))
            self.network.send(
                self.node_id,
                request.origin,
                response,
                response.wire_size(),
                CATEGORY_BLOCK_RECOVERY,
            )
        if unsatisfied and request.ttl > 0:
            # Forward toward a node the chain says stores the block (Fig. 3:
            # J and H "request the missing block 1 from Node F").
            forward_targets: Dict[int, List[int]] = {}
            for index in unsatisfied:
                holders = [
                    node
                    for node in self.chain.state.block_storing.get(index, ())
                    if node not in (self.node_id, request.origin, source)
                    and self.network.is_online(node)
                    and not self.admission.is_quarantined(node)
                ]
                if not holders:
                    continue
                nearest = min(holders, key=lambda n: (self._hops_to(n), n))
                forward_targets.setdefault(nearest, []).append(index)
            for target, indices in forward_targets.items():
                forwarded = BlockRequest(
                    indices=tuple(indices), origin=request.origin, ttl=request.ttl - 1
                )
                self.network.send(
                    self.node_id,
                    target,
                    forwarded,
                    forwarded.wire_size(),
                    CATEGORY_BLOCK_RECOVERY,
                )

    def _on_block_response(self, source: int, response: BlockResponse) -> None:
        if len(response.blocks) > MAX_RESPONSE_BLOCKS:
            self.admission.reject(source, FLOOD)
            return
        for block in sorted(response.blocks, key=lambda b: b.index):
            if block.index <= self.chain.height:
                continue
            reason = block_admissible(block, self.chain.address_of)
            if reason is not None:
                # Poisoned sync response: drop the block before it ever
                # enters the recovery buffer, and charge the sender.
                self.counters.blocks_rejected += 1
                self.admission.reject(source, reason)
                continue
            self.sync.buffer_block(block, source)
        self._drain_sync_buffer()

    def _on_chain_request(self, source: int, request: ChainRequest) -> None:
        if not self.admission.chain_rate.allow(source, self.engine.now):
            # Whole-chain responses are the heaviest reply a peer can goad
            # us into; cap how often any one peer can ask.
            self.admission.reject(source, FLOOD)
            return
        response = ChainResponse(blocks=tuple(self.chain.blocks))
        self.network.send(
            self.node_id,
            request.origin,
            response,
            response.wire_size(),
            CATEGORY_CHAIN_SYNC,
        )

    def _chain_allocations_acceptable(self, blocks: Sequence[Block]) -> bool:
        """Validate every block's placements before adopting a chain.

        Replays the candidate from genesis, verifying each block against
        the pre-block state.  Uses the *current* topology: exact when the
        topology is static; under mobility epochs a production system
        would verify against topology commitments agreed through the
        general-information consensus layer (see DESIGN.md).
        """
        if not self.config.validate_allocations:
            return True
        from repro.core.validation import (
            allocations_verifiable,
            verify_block_allocations,
        )

        if not allocations_verifiable(self.config.placement_solver):
            return True
        if not blocks:
            return False
        start = blocks[0].index
        if start == 0:
            replica = Blockchain(
                list(self.chain.node_ids),
                self.config,
                self.chain.address_of,
                genesis=blocks[0],
            )
        elif getattr(self.config, "lifecycle", None) is None:
            return False
        else:
            # A pruned peer serves an anchored suffix.  Verify placements
            # on top of our own state at the anchor; anchor mismatches and
            # out-of-range starts are deferred to ``consider_chain``,
            # which classifies them (checkpoint rewrite vs. bad anchor).
            first = self.chain.first_retained_index
            if start < first:
                offset = first - start
                if offset >= len(blocks) or blocks[offset].index != first:
                    return True  # not contiguous; consider_chain rejects it
                blocks = blocks[offset:]
                start = first
            if (
                start > self.chain.height
                or self.chain.block_at(start).current_hash
                != blocks[0].current_hash
            ):
                return True
            replica = self.chain._replica_at(start)
        hop_matrix = self.topology.hop_matrix()
        for block in blocks[1:]:
            violations = verify_block_allocations(
                block,
                replica.state,
                self.allocator,
                hop_matrix,
                self.mobility_ranges,
                self.config.storage_capacity,
            )
            if violations:
                return False
            try:
                replica.append_block(block)
            except ValidationError:
                if start != 0:
                    return True  # let consider_chain classify the failure
                return False
        return True

    def _on_chain_response(self, source: int, response: ChainResponse) -> None:
        self._fork_chain_request_at.pop(source, None)
        if not self._chain_allocations_acceptable(response.blocks):
            self.counters.blocks_rejected += 1
            self.admission.reject(None, BAD_ALLOCATION)
            return
        old_metadata = dict(self.chain.state.metadata_index)
        try:
            replaced = self.chain.consider_chain(list(response.blocks))
        except ValidationError as error:
            # A candidate chain that fails genesis/checkpoint/replay
            # validation is provably bogus — honest peers always ship a
            # replayable chain sharing our genesis, and the checkpoint lag
            # keeps honest forks above the rewrite horizon.
            self.counters.blocks_rejected += 1
            self.admission.reject(source, classify_rejection(error))
            return
        if replaced:
            if self.sync.recovering:
                self.sync.finish(self.engine.now)
                self.counters.recoveries_completed += 1
            self.sync.reset()
            tip = self.chain.tip
            self.storage.set_last_block(tip)
            new_index = self.chain.state.metadata_index
            # Items orphaned by the abandoned branch go back to the mempool
            # so a future block can pack them again.
            for data_id, item in old_metadata.items():
                if data_id not in new_index and not item.is_expired(self.engine.now):
                    bare = item.with_storing_nodes(())
                    self.mempool.setdefault(data_id, bare)
            for data_id in new_index:
                self.mempool.pop(data_id, None)
            self._bill_pos_wait()
            self._maybe_prune()
            self._schedule_mining()

    def _on_data_request(self, source: int, request: DataRequest) -> None:
        metadata = self.chain.metadata_of(request.data_id)
        can_serve = (
            request.data_id in self.own_payloads
            or self.storage.can_serve(request.data_id)
        )
        if metadata is not None and can_serve:
            response = DataResponse(
                data_id=request.data_id,
                request_id=request.request_id,
                size_bytes=metadata.size_bytes,
            )
            self.network.send(
                self.node_id,
                request.requester,
                response,
                response.wire_size(),
                CATEGORY_DATA_RESPONSE,
            )
        else:
            self.counters.data_nacks_sent += 1
            nack = DataNack(data_id=request.data_id, request_id=request.request_id)
            self.network.send(
                self.node_id,
                request.requester,
                nack,
                nack.wire_size(),
                CATEGORY_DATA_RESPONSE,
            )

    def _on_data_response(self, response: DataResponse) -> None:
        pending = self._pending.pop(response.request_id, None)
        if pending is None:
            return
        self.delivery_times.append(self.engine.now - pending.started_at)
        self.counters.data_requests_served += 1

    def _on_data_nack(self, source: int, nack: DataNack) -> None:
        if nack.request_id not in self._pending:
            return
        # The storing node refused (or could not) serve: claim its storage
        # invalid so everyone skips it (Section III-B-2), then fail over.
        pair = (nack.data_id, source)
        if pair not in self.invalid_storage:
            self.invalid_storage.add(pair)
            self.counters.claims_broadcast += 1
            claim = InvalidStorageClaim(
                data_id=nack.data_id, storing_node=source, claimer=self.node_id
            )
            self.network.broadcast(
                self.node_id, claim, claim.wire_size(), CATEGORY_STORAGE_CLAIM
            )
        self._try_next_candidate(nack.request_id)

    def _on_storage_claim(self, claim: InvalidStorageClaim) -> None:
        self.invalid_storage.add((claim.data_id, claim.storing_node))

    def _on_dissemination_request(self, request: DisseminationRequest) -> None:
        if request.data_id not in self.own_payloads and not self.storage.can_serve(
            request.data_id
        ):
            return  # cannot provide; requester will be served by other replicas
        metadata = self.chain.metadata_of(request.data_id)
        size = metadata.size_bytes if metadata is not None else 0
        response = DisseminationResponse(data_id=request.data_id, size_bytes=size)
        self.network.send(
            self.node_id,
            request.requester,
            response,
            response.wire_size(),
            CATEGORY_DISSEMINATION,
        )

    def _on_dissemination_response(self, response: DisseminationResponse) -> None:
        try:
            self.storage.mark_payload_received(response.data_id)
        except StorageError:
            pass  # the slot was evicted (expiry) while the payload was in flight
