"""Ledger audit: explain every token a node holds from chain history.

"S and Q of each node can be obtained and validated through the history of
the blockchain" (Section V-A).  This module makes that auditable: a replay
over the chain that attributes every token to its source event (mining a
block, storing a data item, storing a block, caching a recent block) and
every rescaling, so a dispute about a balance can be settled by pointing
at blocks.

Used by the marketplace example and the incentive tests; also a practical
debugging tool when a PoS validation fails with an unexpected S_i.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.block import Block
from repro.core.config import SystemConfig


class EarningKind(enum.Enum):
    INITIAL = "initial"
    MINING = "mining"
    DATA_STORAGE = "data_storage"
    BLOCK_STORAGE = "block_storage"
    RECENT_CACHE = "recent_cache"
    RESCALE = "rescale"


@dataclass(frozen=True)
class LedgerEvent:
    """One attribution: which block paid (or rescaled) which node."""

    block_index: int
    node: int
    kind: EarningKind
    amount: float  # token delta (multiplicative events record the delta too)
    detail: str = ""


@dataclass
class AuditReport:
    """Full attribution of balances for a chain."""

    events: List[LedgerEvent]
    balances: Dict[int, float]

    def events_for(self, node: int) -> List[LedgerEvent]:
        return [event for event in self.events if event.node == node]

    def earned_by_kind(self, node: int) -> Dict[EarningKind, float]:
        totals: Dict[EarningKind, float] = {}
        for event in self.events_for(node):
            totals[event.kind] = totals.get(event.kind, 0.0) + event.amount
        return totals

    def balance(self, node: int) -> float:
        return self.balances[node]


def audit_chain(
    blocks: Sequence[Block], node_ids: Sequence[int], config: SystemConfig
) -> AuditReport:
    """Replay a chain and attribute every token movement.

    The resulting balances must equal ``ChainState.tokens`` after the same
    replay — the equivalence test in the suite checks exactly that.
    """
    balances: Dict[int, float] = {node: config.initial_tokens for node in node_ids}
    events: List[LedgerEvent] = [
        LedgerEvent(0, node, EarningKind.INITIAL, config.initial_tokens, "genesis stake")
        for node in sorted(node_ids)
    ]
    known = set(node_ids)

    for block in blocks:
        if block.is_genesis:
            continue
        if block.miner in known:
            balances[block.miner] += config.mining_incentive
            events.append(
                LedgerEvent(
                    block.index,
                    block.miner,
                    EarningKind.MINING,
                    config.mining_incentive,
                    f"mined block {block.index}",
                )
            )
        for item in block.metadata_items:
            for node in item.storing_nodes:
                if node not in known:
                    continue
                balances[node] += config.storage_incentive
                events.append(
                    LedgerEvent(
                        block.index,
                        node,
                        EarningKind.DATA_STORAGE,
                        config.storage_incentive,
                        f"stores data {item.data_id[:8]}",
                    )
                )
        for node in block.storing_nodes:
            if node not in known:
                continue
            balances[node] += config.storage_incentive
            events.append(
                LedgerEvent(
                    block.index,
                    node,
                    EarningKind.BLOCK_STORAGE,
                    config.storage_incentive,
                    f"stores block {block.index}",
                )
            )
        for node in block.recent_cache_nodes:
            if node not in known:
                continue
            balances[node] += config.storage_incentive
            events.append(
                LedgerEvent(
                    block.index,
                    node,
                    EarningKind.RECENT_CACHE,
                    config.storage_incentive,
                    f"caches recent block {block.index}",
                )
            )
        if block.index % config.token_rescale_interval == 0:
            ratio = config.token_rescale_ratio
            for node in sorted(known):
                delta = balances[node] * (ratio - 1.0)
                balances[node] *= ratio
                events.append(
                    LedgerEvent(
                        block.index,
                        node,
                        EarningKind.RESCALE,
                        delta,
                        f"S-rescale ×{ratio}",
                    )
                )
    return AuditReport(events=events, balances=balances)
