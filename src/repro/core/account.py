"""Node accounts and addresses.

"Each node has its private and public keys for identification purposes.
Keys then generate an account of that node.  Each account is unique and
associated with each node and has a unique address (hash value) satisfying
a certain pattern.  The account address can be generated from public keys
but not in reverse." — Section III-A.

The address is the SHA-256 of the compressed public key, ground to satisfy
a vanity pattern (a fixed prefix nibble) by appending a grinding counter —
the same mechanism Bitcoin-style vanity addresses use, kept cheap here
(one nibble) because the pattern is an identification aid, not a
proof-of-work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.hashing import hash_items
from repro.crypto.keys import PrivateKey, PublicKey, generate_keypair
from repro.crypto.signature import Signature, sign, verify

#: Addresses must start with this hex nibble ("satisfying a certain pattern").
ADDRESS_PREFIX = "e"

#: Address length in hex characters (truncated SHA-256).
ADDRESS_HEX_LENGTH = 40


#: Canonical per-node accounts, keyed by ``(simulation_seed, node_id)``.
#: Bounded so pathological seed sweeps can't grow it without limit; a
#: full memo is simply cleared (re-derivation is always correct).
_FOR_NODE_MEMO: Dict[Tuple[int, int], "Account"] = {}
_FOR_NODE_MEMO_MAX = 4096


def derive_address(public_key: PublicKey) -> str:
    """Derive the account address from a public key (one-way).

    Grinds a counter until the hash starts with :data:`ADDRESS_PREFIX`; the
    counter is deterministic, so the same key always yields the same
    address and anyone can re-derive and check it.
    """
    counter = 0
    while True:
        digest = hash_items(public_key.encode(), counter)
        candidate = digest.hex()[:ADDRESS_HEX_LENGTH]
        if candidate.startswith(ADDRESS_PREFIX):
            return candidate
        counter += 1


def address_is_valid(address: str) -> bool:
    """Syntactic address check (pattern + length + hex)."""
    if len(address) != ADDRESS_HEX_LENGTH:
        return False
    if not address.startswith(ADDRESS_PREFIX):
        return False
    try:
        int(address, 16)
    except ValueError:
        return False
    return True


def verify_address(address: str, public_key: PublicKey) -> bool:
    """Check that ``address`` really derives from ``public_key``."""
    return address_is_valid(address) and derive_address(public_key) == address


@dataclass(frozen=True)
class Account:
    """A node's identity: key pair plus derived address."""

    private_key: PrivateKey
    public_key: PublicKey
    address: str

    @classmethod
    def create(cls, seed: Optional[Tuple["str | int | bytes", ...]] = None) -> "Account":
        """Create an account, deterministically when ``seed`` is given."""
        private, public = generate_keypair(seed)
        return cls(private_key=private, public_key=public, address=derive_address(public))

    @classmethod
    def for_node(cls, simulation_seed: int, node_id: int) -> "Account":
        """The canonical deterministic account for a simulated node.

        Memoised on ``(simulation_seed, node_id)``: derivation is a pure
        function of the key, and the account is a frozen value object, so
        a cache hit is observably identical to re-deriving — same keys,
        same address, same digests.  ECDSA keygen plus vanity grinding
        dominates cluster construction in sweeps that rebuild the same
        seeded cluster many times; the memo makes rebuilds near-free.
        """
        key = (simulation_seed, node_id)
        account = _FOR_NODE_MEMO.get(key)
        if account is None:
            if len(_FOR_NODE_MEMO) >= _FOR_NODE_MEMO_MAX:
                _FOR_NODE_MEMO.clear()
            account = cls.create(seed=("repro/account", simulation_seed, node_id))
            _FOR_NODE_MEMO[key] = account
        return account

    def sign(self, message: bytes) -> Signature:
        return sign(self.private_key, message)

    def verify_own(self, message: bytes, signature: Signature) -> bool:
        return verify(self.public_key, message, signature)

    def __repr__(self) -> str:  # keep private key out of logs
        return f"Account(address={self.address!r})"
