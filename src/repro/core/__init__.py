"""The edge blockchain core — the paper's primary contribution.

Public surface: accounts, metadata, blocks, the validated chain with its
derived state, the PoS mechanism (Eqs. 7–9, 14), the PoW baseline, storage
management, the UFL-backed allocation engine, recent-block allocation,
block-recovery sync, protocol messages, and the full :class:`EdgeNode`.
"""

from repro.core.account import Account, address_is_valid, derive_address, verify_address
from repro.core.adversary import CronyMiner, DenyingNode, SilentNode
from repro.core.validation import allocations_verifiable, verify_block_allocations
from repro.core.audit import AuditReport, EarningKind, LedgerEvent, audit_chain
from repro.core.serialization import (
    block_from_dict,
    block_to_dict,
    chain_from_json,
    chain_to_json,
    metadata_from_dict,
    metadata_to_dict,
)
from repro.core.allocation import AllocationDecision, AllocationEngine
from repro.core.migration import (
    MigrationMove,
    MigrationPlan,
    MoveKind,
    placement_drift,
    plan_migration,
)
from repro.core.block import GENESIS_PREVIOUS_HASH, Block, make_genesis
from repro.core.blockchain import Blockchain, BlockOutcome, ChainState
from repro.core.config import DATA_ITEM_BYTES, PAPER_CONFIG, SystemConfig
from repro.core.errors import (
    AllocationError,
    ChainLinkError,
    ConsensusError,
    EdgeChainError,
    StorageError,
    SyncError,
    ValidationError,
)
from repro.core.metadata import MetadataItem, create_metadata
from repro.core.node import EdgeNode, NodeCounters
from repro.core.pos import (
    MiningClaim,
    compute_amendment,
    compute_hit,
    compute_pos_hash,
    mining_delay,
    per_second_mining_loop,
    satisfies_target,
    target_value,
)
from repro.core.pow import (
    PAPER_POW_DIFFICULTY,
    PowBlockResult,
    PowMiner,
    expected_attempts,
    find_pow_nonce,
    hash_meets_difficulty,
)
from repro.core.recent_blocks import recent_block_coverage, select_recent_cache_nodes
from repro.core.storage import NodeStorage, StoredData
from repro.core.sync import SyncState, plan_block_requests

__all__ = [
    "Account",
    "derive_address",
    "verify_address",
    "address_is_valid",
    "MetadataItem",
    "create_metadata",
    "Block",
    "make_genesis",
    "GENESIS_PREVIOUS_HASH",
    "Blockchain",
    "BlockOutcome",
    "ChainState",
    "SystemConfig",
    "PAPER_CONFIG",
    "DATA_ITEM_BYTES",
    "compute_pos_hash",
    "compute_hit",
    "compute_amendment",
    "target_value",
    "satisfies_target",
    "mining_delay",
    "per_second_mining_loop",
    "MiningClaim",
    "PowMiner",
    "PowBlockResult",
    "find_pow_nonce",
    "expected_attempts",
    "hash_meets_difficulty",
    "PAPER_POW_DIFFICULTY",
    "NodeStorage",
    "StoredData",
    "AllocationEngine",
    "AllocationDecision",
    "select_recent_cache_nodes",
    "recent_block_coverage",
    "SyncState",
    "plan_block_requests",
    "EdgeNode",
    "NodeCounters",
    "DenyingNode",
    "SilentNode",
    "CronyMiner",
    "allocations_verifiable",
    "verify_block_allocations",
    "MigrationMove",
    "MigrationPlan",
    "MoveKind",
    "placement_drift",
    "plan_migration",
    "audit_chain",
    "AuditReport",
    "LedgerEvent",
    "EarningKind",
    "block_to_dict",
    "block_from_dict",
    "metadata_to_dict",
    "metadata_from_dict",
    "chain_to_json",
    "chain_from_json",
    "EdgeChainError",
    "ValidationError",
    "ChainLinkError",
    "ConsensusError",
    "StorageError",
    "AllocationError",
    "SyncError",
]
