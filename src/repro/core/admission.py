"""Typed admission control for inbound protocol traffic.

The paper's fault model is crash/churn — peers vanish (§IV-C/D) — but a
pervasive edge deployment must also survive peers that *lie*: forged
blocks, equivocating miners, tampered metadata, poisoned sync responses,
request floods.  This module gives every receive path in
:class:`~repro.core.node.EdgeNode` a shared vocabulary and bookkeeping:

* **structural admission checks** (:func:`block_admissible`,
  :func:`metadata_admissible`) — context-free predicates an honest
  message always passes, evaluated before any state is touched;
* **rejection classification** (:func:`classify_rejection`) — maps the
  typed validation errors raised by deeper checks onto stable, structured
  reason strings for counters and verdicts;
* **per-peer misbehavior scoring with quarantine**
  (:class:`AdmissionControl`) — each rejection charges its sender a
  weighted score; past ``quarantine_threshold`` the peer is quarantined:
  nothing further is accepted from it and nothing is forwarded to it;
* **equivocation detection** (:class:`EquivocationTracker`) — two
  distinct blocks from one miner at one height near the tip;
* **rate limiting** (:class:`RateLimiter`) — bounded per-peer inbound
  request rates so a flooder cannot amplify gap recovery into a storm.

Everything here is deterministic and side-effect-free with respect to
the simulation: no randomness is drawn, no events are scheduled, and on
honest runs no rejection is ever recorded — so enabling the checks
leaves honest-run digests bit-identical (the golden-run regression pins
this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.block import Block
from repro.core.errors import (
    ChainLinkError,
    CheckpointError,
    ConsensusError,
    SerializationError,
    ValidationError,
)
from repro.core.metadata import MetadataItem
from repro.obs import runtime as _obs

# -- rejection reasons -----------------------------------------------------------

#: Block content hash does not commit to the block's own fields.
BAD_HASH = "bad_hash"
#: Miner id unknown or miner address forged.
BAD_MINER = "bad_miner"
#: Non-positive index on a non-genesis message.
BAD_INDEX = "bad_index"
#: Block does not link to its predecessor (ChainLinkError).
BAD_LINKAGE = "bad_linkage"
#: PoS hit/target claim fails re-verification — Eq. 9 (ConsensusError).
BAD_POS = "bad_pos"
#: Storing-node / recent-cache assignments diverge from the deterministic
#: allocation re-derivation (crony placement).
BAD_ALLOCATION = "bad_allocation"
#: One miner, one height, two distinct blocks.
EQUIVOCATION = "equivocation"
#: Metadata producer id unknown or producer address forged.
BAD_PRODUCER = "bad_producer"
#: Metadata producer signature fails ECDSA verification.
BAD_SIGNATURE = "bad_signature"
#: A candidate chain would rewrite a checkpointed block (CheckpointError).
CHECKPOINT_REWRITE = "checkpoint_rewrite"
#: A candidate chain failed full replay validation.
BAD_CHAIN = "bad_chain"
#: Structurally unacceptable payload (SerializationError).
MALFORMED = "malformed"
#: Request rate or payload cardinality over the per-peer cap.
FLOOD = "flood"
#: A migrated (foreign) metadata item failed structural admission —
#: forged producer address, bad signature, or already expired.
FOREIGN_METADATA = "foreign_metadata"
#: Any other validation failure.
INVALID = "invalid"

#: Misbehavior score charged per rejection.  Content forgeries are
#: unambiguous protocol violations and weigh heavily; floods weigh
#: lightly so a single burst does not quarantine a peer, but a sustained
#: storm does.
REASON_WEIGHTS: Dict[str, float] = {
    BAD_HASH: 4.0,
    BAD_MINER: 4.0,
    BAD_INDEX: 4.0,
    BAD_LINKAGE: 4.0,
    BAD_POS: 4.0,
    BAD_ALLOCATION: 4.0,
    EQUIVOCATION: 10.0,
    BAD_PRODUCER: 4.0,
    BAD_SIGNATURE: 4.0,
    CHECKPOINT_REWRITE: 4.0,
    BAD_CHAIN: 4.0,
    MALFORMED: 4.0,
    FLOOD: 1.0,
    FOREIGN_METADATA: 4.0,
    INVALID: 4.0,
}


def classify_rejection(error: ValidationError) -> str:
    """Stable reason string for a typed validation error."""
    if isinstance(error, CheckpointError):
        return CHECKPOINT_REWRITE
    if isinstance(error, ChainLinkError):
        return BAD_LINKAGE
    if isinstance(error, ConsensusError):
        return BAD_POS
    if isinstance(error, SerializationError):
        return MALFORMED
    return INVALID


# -- structural admission checks -------------------------------------------------


def block_admissible(block: Block, address_of: Mapping[int, str]) -> Optional[str]:
    """Context-free checks every honest non-genesis block passes.

    Returns a rejection reason, or ``None`` when admissible.  These run
    before the block touches any chain or sync state, so a forged block
    is dropped without buffering it or reacting to it.
    """
    if block.index <= 0:
        return BAD_INDEX
    expected = address_of.get(block.miner)
    if expected is None or block.miner_address != expected:
        return BAD_MINER
    if not block.hash_is_valid():
        return BAD_HASH
    return None


def metadata_admissible(
    item: MetadataItem,
    address_of: Mapping[int, str],
    *,
    verify_signature: bool = False,
    signature_cache: Optional[Dict[Tuple[bytes, str], bool]] = None,
) -> Optional[str]:
    """Context-free checks every honest metadata item passes.

    The producer address must match the roster; with
    ``verify_signature`` the producer's ECDSA signature over the signed
    attributes (placement excluded — see :mod:`repro.core.metadata`) is
    checked too, memoised in ``signature_cache`` because pure-Python
    ECDSA is expensive and items are rebroadcast.
    """
    expected = address_of.get(item.producer)
    if expected is None or item.producer_address != expected:
        return BAD_PRODUCER
    if verify_signature:
        key = (item.signing_payload(), item.signature_hex)
        if signature_cache is not None and key in signature_cache:
            valid = signature_cache[key]
        else:
            valid = item.verify_signature()
            if signature_cache is not None:
                signature_cache[key] = valid
        if not valid:
            return BAD_SIGNATURE
    return None


def foreign_metadata_admissible(item: MetadataItem, now: float) -> Optional[str]:
    """Structural checks a migrated item passes before a gateway rehosts it.

    A foreign producer is not on the local address roster, so the claim
    is checked against the item itself: the embedded public key must
    derive to the claimed producer address, the producer's ECDSA
    signature over the signed attributes must verify, and the item must
    not already be expired.  Returns :data:`FOREIGN_METADATA` on any
    failure, ``None`` when admissible.
    """
    from repro.core.account import verify_address
    from repro.crypto.keys import PublicKey

    try:
        public = PublicKey.from_hex(item.producer_public_key_hex)
    except ValueError:
        return FOREIGN_METADATA
    if not verify_address(item.producer_address, public):
        return FOREIGN_METADATA
    if not item.verify_signature():
        return FOREIGN_METADATA
    if item.is_expired(now):
        return FOREIGN_METADATA
    return None


# -- equivocation detection ------------------------------------------------------


@dataclass
class EquivocationTracker:
    """Detects one miner announcing two distinct blocks at one height.

    Only heights within ``window`` of the local tip are tracked: an
    honest node that lost its chain (crash restart) may legitimately
    re-mine low heights before whole-chain sync completes, and those
    stale announcements must not read as equivocation.  Near the tip the
    signal is sound — honest miners extend strictly longer chains, so
    they never produce two blocks at the same height.
    """

    window: int = 4
    seen: Dict[Tuple[int, int], str] = field(default_factory=dict)

    def observe(self, block: Block, tip_index: int) -> bool:
        """Record ``block``; True iff it equivocates with a seen block."""
        floor = tip_index - self.window
        if floor > 0:
            for key in [k for k in self.seen if k[0] <= floor]:
                del self.seen[key]
        if block.index <= floor:
            return False
        key = (block.index, block.miner)
        prior = self.seen.get(key)
        if prior is None:
            self.seen[key] = block.current_hash
            return False
        return prior != block.current_hash


# -- rate limiting ---------------------------------------------------------------


@dataclass
class RateLimiter:
    """Sliding-window per-key event budget (deterministic, no RNG)."""

    window: float = 60.0
    limit: int = 20
    events: Dict[int, Deque[float]] = field(default_factory=dict)

    def allow(self, key: int, now: float) -> bool:
        """Charge one event for ``key``; False when over budget."""
        bucket = self.events.setdefault(key, deque())
        cutoff = now - self.window
        while bucket and bucket[0] <= cutoff:
            bucket.popleft()
        if len(bucket) >= self.limit:
            return False
        bucket.append(now)
        return True


# -- per-peer misbehavior ledger -------------------------------------------------

#: Indices per BlockRequest / blocks per BlockResponse an honest peer
#: could plausibly send (gap recovery splits a bounded gap over fan-out
#: 2); anything larger is treated as a flood and dropped whole.
MAX_REQUEST_INDICES = 64
MAX_RESPONSE_BLOCKS = 128
#: Inbound block-request budget per peer per minute.
REQUEST_RATE_LIMIT = 20
REQUEST_RATE_WINDOW = 60.0
#: Inbound whole-chain-request budget per peer per minute (chain
#: responses are the heaviest reply a node can be goaded into sending).
CHAIN_RATE_LIMIT = 4
CHAIN_RATE_WINDOW = 60.0


@dataclass
class AdmissionControl:
    """One node's rejection counters and peer-misbehavior ledger."""

    quarantine_threshold: float = 8.0
    #: Total rejections by structured reason.
    rejections: Dict[str, int] = field(default_factory=dict)
    #: Accumulated misbehavior score per peer.
    scores: Dict[int, float] = field(default_factory=dict)
    #: Peers past the threshold; nothing is accepted from or routed to them.
    quarantined: Set[int] = field(default_factory=set)
    equivocation: EquivocationTracker = field(default_factory=EquivocationTracker)
    request_rate: RateLimiter = field(
        default_factory=lambda: RateLimiter(
            window=REQUEST_RATE_WINDOW, limit=REQUEST_RATE_LIMIT
        )
    )
    chain_rate: RateLimiter = field(
        default_factory=lambda: RateLimiter(
            window=CHAIN_RATE_WINDOW, limit=CHAIN_RATE_LIMIT
        )
    )
    signature_cache: Dict[Tuple[bytes, str], bool] = field(default_factory=dict)

    def reject(self, peer: Optional[int], reason: str) -> bool:
        """Record a rejection attributed to ``peer``.

        Returns True when this rejection newly quarantines the peer.
        ``peer`` may be ``None``/negative when the sender is unknown —
        the rejection is still counted, but nobody is charged.
        """
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        _obs.add("chaos.rejections")
        _obs.add(f"chaos.rejections.{reason}")
        if peer is None or peer < 0:
            return False
        score = self.scores.get(peer, 0.0) + REASON_WEIGHTS.get(reason, 4.0)
        self.scores[peer] = score
        if peer not in self.quarantined and score >= self.quarantine_threshold:
            self.quarantined.add(peer)
            _obs.add("chaos.quarantined")
            return True
        return False

    def is_quarantined(self, peer: int) -> bool:
        return peer in self.quarantined

    def permitted(self, peers: List[int]) -> List[int]:
        """Filter a routing candidate list down to non-quarantined peers."""
        return [p for p in peers if p not in self.quarantined]

    @property
    def total_rejections(self) -> int:
        return sum(self.rejections.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary for verdicts and reports."""
        return {
            "rejections": dict(sorted(self.rejections.items())),
            "total_rejections": self.total_rejections,
            "scores": {str(k): v for k, v in sorted(self.scores.items())},
            "quarantined": sorted(self.quarantined),
        }
