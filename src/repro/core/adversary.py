"""Malicious-node behaviours (the paper's Section III-B-2 threat).

"another malicious behavior is to deny storing or offering data to the
demanding user ... If a node requests data and does not get any response,
it then claims that the data is invalid.  Everyone will be informed of
this information, and this data storage will be marked as invalid.  At the
same time, there are always replicas for certain data.  Unless all
replicas of this piece of data are stored at malicious nodes, there will
always be available data pieces."

The claim message itself lives in :mod:`repro.core.messages`
(:class:`~repro.core.messages.InvalidStorageClaim`); honest
:class:`~repro.core.node.EdgeNode` instances broadcast one whenever a
storing node refuses them and skip claimed-invalid replicas thereafter.
This module provides the adversaries the tests run against.
"""

from __future__ import annotations

from repro.core.messages import CATEGORY_DATA_RESPONSE, DataNack
from repro.core.node import EdgeNode


class DenyingNode(EdgeNode):
    """A *rational* free-rider: hoards storage credit, refuses to serve
    other producers' data — but still sells its own (that is where its
    revenue comes from).

    It mines and relays blocks normally, so the chain keeps crediting it
    Q and S for storage assignments it never honours — the exploit the
    claim protocol exposes.
    """

    def _refuses(self, data_id: str) -> bool:
        return data_id not in self.own_payloads

    def _on_data_request(self, source: int, request) -> None:  # type: ignore[override]
        if not self._refuses(request.data_id):
            super()._on_data_request(source, request)
            return
        self.counters.data_nacks_sent += 1
        nack = DataNack(data_id=request.data_id, request_id=request.request_id)
        self.network.send(
            self.node_id,
            request.requester,
            nack,
            nack.wire_size(),
            CATEGORY_DATA_RESPONSE,
        )

    def _on_dissemination_request(self, request) -> None:  # type: ignore[override]
        if not self._refuses(request.data_id):
            super()._on_dissemination_request(request)


class CronyMiner(EdgeNode):
    """A miner that assigns every storage incentive to itself.

    Instead of solving the fair-placement UFL, its blocks list the miner
    as the sole storing node for every item, the block, and the recent
    cache — inflating its own Q (and tokens) to snowball future mining
    advantage.  With ``validate_allocations`` enabled, honest nodes
    re-derive the placements and reject these blocks.
    """

    def _build_block(self, parent):  # type: ignore[override]
        import dataclasses

        block = super()._build_block(parent)
        selfish_items = tuple(
            item.with_storing_nodes((self.node_id,))
            for item in block.metadata_items
        )
        return dataclasses.replace(
            block,
            metadata_items=selfish_items,
            storing_nodes=(self.node_id,),
            recent_cache_nodes=(self.node_id,),
            current_hash="",
        )


class SilentNode(EdgeNode):
    """A harsher adversary: drops foreign data requests without even a NACK.

    Requesters cannot distinguish silence from packet loss, so failover
    relies on the response timeout (the paper's "does not get any response
    → claims the data is invalid" rule) rather than NACK-driven retry.
    """

    def _on_data_request(self, source: int, request) -> None:  # type: ignore[override]
        if request.data_id in self.own_payloads:
            super()._on_data_request(source, request)

    def _on_dissemination_request(self, request) -> None:  # type: ignore[override]
        if request.data_id in self.own_payloads:
            super()._on_dissemination_request(request)
