"""Allocation verification: re-derive a miner's placement decisions.

The paper's placements are computed from *public* inputs — the chain-
derived storage state (FDC) and the shared topology (RDC) — with a
deterministic solver.  That makes them verifiable: any node can replay the
miner's UFL solves and reject a block whose storing-node lists differ,
closing the "crony miner" loophole where a miner hands the storage
incentives (and the PoS advantage that comes with Q) to itself or friends.

Verification replays the block's decisions in block order against state at
the block's timestamp, exactly as :meth:`EdgeNode._build_block` computes
them.  Only deterministic solvers are verifiable; the Fig. 5 ``random``
baseline is exempt by construction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.allocation import AllocationEngine
from repro.core.block import Block
from repro.core.blockchain import ChainState
from repro.core.errors import AllocationError
from repro.core.recent_blocks import select_recent_cache_nodes

#: Solvers whose decisions a validator can reproduce exactly.  The
#: incremental solver qualifies because it is digest-identical to greedy.
DETERMINISTIC_SOLVERS = ("greedy", "local_search", "lp_rounding", "incremental")


def allocations_verifiable(solver: str) -> bool:
    return solver in DETERMINISTIC_SOLVERS


def verify_block_allocations(
    block: Block,
    state: ChainState,
    allocator: AllocationEngine,
    hop_matrix: np.ndarray,
    mobility_ranges: Sequence[float],
    storage_capacity: int,
) -> List[str]:
    """Re-derive every placement in ``block``; returns found violations.

    ``state`` must be the chain state *before* applying the block (i.e.
    after its parent).  An empty list means the block's storing-node
    choices match what the configured solver produces from public inputs.
    """
    if not allocations_verifiable(allocator.config.placement_solver):
        raise ValueError(
            f"solver {allocator.config.placement_solver!r} is not verifiable"
        )
    violations: List[str] = []
    now = block.timestamp
    node_ids = list(state.node_ids)
    capacity = float(storage_capacity)
    used = [
        min(float(state.used_slots(node, now)), capacity) for node in node_ids
    ]
    total = [capacity] * len(node_ids)

    def place():
        try:
            return allocator.place_item(used, total, hop_matrix, mobility_ranges)
        except AllocationError:
            return None

    for item in block.metadata_items:
        decision = place()
        expected = decision.storing_nodes if decision else ()
        if tuple(sorted(item.storing_nodes)) != tuple(sorted(expected)):
            violations.append(
                f"data {item.data_id[:8]}: block assigns "
                f"{sorted(item.storing_nodes)}, solver derives {sorted(expected)}"
            )
        # Continue the replay with the block's (claimed) assignment so one
        # divergence does not cascade into spurious reports.  Clamp at
        # capacity: a forged block can claim physically impossible fills.
        for node in item.storing_nodes:
            if node in node_ids:
                index = node_ids.index(node)
                used[index] = min(used[index] + 1.0, total[index])

    decision = place()
    expected_block = decision.storing_nodes if decision else ()
    if tuple(sorted(block.storing_nodes)) != tuple(sorted(expected_block)):
        violations.append(
            f"block storage: block assigns {sorted(block.storing_nodes)}, "
            f"solver derives {sorted(expected_block)}"
        )
    for node in block.storing_nodes:
        if node in node_ids:
            index = node_ids.index(node)
            used[index] = min(used[index] + 1.0, total[index])

    expected_recent = select_recent_cache_nodes(
        allocator,
        used,
        total,
        hop_matrix,
        mobility_ranges,
        already_storing=tuple(block.storing_nodes) + (block.miner,),
    )
    if tuple(sorted(block.recent_cache_nodes)) != tuple(sorted(expected_recent)):
        violations.append(
            f"recent cache: block assigns {sorted(block.recent_cache_nodes)}, "
            f"solver derives {sorted(expected_recent)}"
        )
    return violations
