"""Blocks of the edge blockchain.

Per Fig. 2 of the paper, a block carries, beyond the usual chain plumbing
(index, timestamp, previous hash, current hash):

* the **metadata items** packed since the previous block, each annotated
  with its storing nodes (Section IV-B),
* the **block storing nodes** — which nodes persist *this* block — plus the
  storing nodes of the *previous* block, so a chain can be fetched
  backwards hop by hop (Section IV-B),
* the **recent-block assignments** — extra nodes told to cache this block
  in their FIFO recent cache (Section IV-C),
* the **POSHash** used by the PoS lottery (Eq. 7) and the miner's claimed
  hit/target inputs so everyone can re-verify the win (Section V-A),
* the **B amendment** in force for the next inter-block race (Eq. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.core.metadata import MetadataItem
from repro.crypto.hashing import hash_items
from repro.crypto.merkle import merkle_root

#: Serialized size of the block header fields (hashes, indices, PoS claim).
BLOCK_HEADER_BYTES = 256

#: The previous-hash value of the genesis block.
GENESIS_PREVIOUS_HASH = "0" * 64


@dataclass(frozen=True)
class Block:
    """One block.  Immutable; ``current_hash`` commits to everything else."""

    index: int
    timestamp: float
    previous_hash: str
    pos_hash: str  # POSHash(t) — Eq. 7 state for the *next* lottery
    miner: int  # node id of the winner (-1 for genesis)
    miner_address: str
    hit: int  # the miner's h_i, re-verifiable from pos_hash of parent
    target_b: float  # the B amendment used for this block's race
    metadata_items: Tuple[MetadataItem, ...] = ()
    storing_nodes: Tuple[int, ...] = ()  # who persists this block
    previous_storing_nodes: Tuple[int, ...] = ()  # who persists the parent
    recent_cache_nodes: Tuple[int, ...] = ()  # extra recent-block caching
    current_hash: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("block index cannot be negative")
        if self.timestamp < 0:
            raise ValueError("timestamp cannot be negative")
        if self.hit < 0:
            raise ValueError("hit cannot be negative")
        if not self.current_hash:
            object.__setattr__(self, "current_hash", self.compute_hash())

    # -- hashing ---------------------------------------------------------------------

    def content_root(self) -> bytes:
        """Merkle root over the packed metadata items."""
        leaves = [item.signing_payload() for item in self.metadata_items]
        return merkle_root(leaves)

    def compute_hash(self) -> str:
        """The block hash: SHA-256 over header fields and the content root."""
        return hash_items(
            "block",
            self.index,
            str(self.timestamp),
            self.previous_hash,
            self.pos_hash,
            self.miner,
            self.miner_address,
            self.hit,
            str(self.target_b),
            self.content_root(),
            ",".join(map(str, self.storing_nodes)),
            ",".join(map(str, self.previous_storing_nodes)),
            ",".join(map(str, self.recent_cache_nodes)),
        ).hex()

    def hash_is_valid(self) -> bool:
        return self.current_hash == self.compute_hash()

    # -- properties --------------------------------------------------------------------

    @property
    def is_genesis(self) -> bool:
        return self.index == 0

    def wire_size(self) -> int:
        """Approximate serialised size (paper: average block < 10 KB)."""
        return (
            BLOCK_HEADER_BYTES
            + sum(item.wire_size() for item in self.metadata_items)
            + 4
            * (
                len(self.storing_nodes)
                + len(self.previous_storing_nodes)
                + len(self.recent_cache_nodes)
            )
        )

    def links_to(self, parent: "Block") -> bool:
        """Chain-linkage check against the claimed parent."""
        return (
            self.index == parent.index + 1
            and self.previous_hash == parent.current_hash
            and self.timestamp >= parent.timestamp
        )


def make_genesis(
    node_ids: Tuple[int, ...],
    initial_b: float,
    timestamp: float = 0.0,
) -> Block:
    """Build the genesis block.

    All participating nodes store the genesis block (every node keeps at
    least the last block, Section IV-C, and at genesis that is this one).
    The genesis POSHash seeds the first lottery.
    """
    pos_hash = hash_items("genesis-poshash", *sorted(node_ids)).hex()
    return Block(
        index=0,
        timestamp=timestamp,
        previous_hash=GENESIS_PREVIOUS_HASH,
        pos_hash=pos_hash,
        miner=-1,
        miner_address="",
        hit=0,
        target_b=initial_b,
        metadata_items=(),
        storing_nodes=tuple(sorted(node_ids)),
        previous_storing_nodes=(),
        recent_cache_nodes=(),
    )
