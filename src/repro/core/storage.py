"""Per-node local storage.

Each edge device can hold a fixed number of slots ("each node has the
capability to store 250 data items or blocks", Section VI), shared between:

* **data items** it was assigned to store (evicted when they expire),
* **blocks** it was assigned to persist (permanent),
* the **recent-block FIFO cache** (Section IV-C; bounded, FIFO-replaced),
* the mandatory **last block** every node keeps for mining.

This is the node's *actual* storage, as opposed to the chain-derived
assignment view in :class:`~repro.core.blockchain.ChainState`: a node that
was assigned an item but hasn't fetched the bytes yet holds the slot but
cannot serve the data (``can_serve`` is False until the fetch completes).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.block import Block
from repro.core.errors import StorageError
from repro.core.metadata import MetadataItem


@dataclass
class StoredData:
    """One locally stored data item."""

    metadata: MetadataItem
    #: True once the actual bytes were fetched from the producer.
    has_payload: bool = False


class NodeStorage:
    """Slot-based storage manager for one node."""

    def __init__(self, capacity: int, recent_cache_capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1 slot")
        if recent_cache_capacity < 0:
            raise ValueError("recent cache capacity cannot be negative")
        self.capacity = capacity
        self.recent_cache_capacity = recent_cache_capacity
        self._data: "OrderedDict[str, StoredData]" = OrderedDict()
        self._blocks: Dict[int, Block] = {}
        self._recent: Deque[Block] = deque()
        self._last_block: Optional[Block] = None
        #: Count of items dropped because the node was full.
        self.rejected_for_capacity = 0
        #: Assigned-block bodies released by lifecycle pruning.  The slots
        #: stay occupied — the chain-recorded assignment (and its Q_i
        #: credit) stands, only the serveable body moved to the cold tier.
        self._pruned_block_slots = 0

    # -- accounting --------------------------------------------------------------

    @property
    def pruned_block_slots(self) -> int:
        return getattr(self, "_pruned_block_slots", 0)

    def used_slots(self) -> int:
        """Slots in use (data + blocks + recent cache + the last block)."""
        return (
            len(self._data)
            + len(self._blocks)
            + self.pruned_block_slots
            + len(self._recent)
            + (1 if self._last_block is not None else 0)
        )

    def free_slots(self) -> int:
        return self.capacity - self.used_slots()

    @property
    def is_full(self) -> bool:
        return self.free_slots() <= 0

    # -- data items ------------------------------------------------------------------

    def store_data(self, metadata: MetadataItem, has_payload: bool = False) -> None:
        """Reserve a slot for an assigned data item.

        Raises :class:`StorageError` when the node is full (the caller
        counts the rejection; the allocator should not have picked a full
        node, but races with expiry can cause this).
        """
        if metadata.data_id in self._data:
            existing = self._data[metadata.data_id]
            existing.has_payload = existing.has_payload or has_payload
            return
        if self.is_full:
            self.rejected_for_capacity += 1
            raise StorageError("storage full")
        self._data[metadata.data_id] = StoredData(
            metadata=metadata, has_payload=has_payload
        )

    def mark_payload_received(self, data_id: str) -> None:
        entry = self._data.get(data_id)
        if entry is None:
            raise StorageError(f"data {data_id} is not stored here")
        entry.has_payload = True

    def has_data(self, data_id: str) -> bool:
        return data_id in self._data

    def can_serve(self, data_id: str) -> bool:
        """True when this node holds the actual payload, not just the slot."""
        entry = self._data.get(data_id)
        return entry is not None and entry.has_payload

    def drop_data(self, data_id: str) -> None:
        self._data.pop(data_id, None)

    def evict_expired(self, now: float) -> List[str]:
        """Drop expired data items; returns the evicted ids."""
        expired = [
            data_id
            for data_id, entry in self._data.items()
            if entry.metadata.is_expired(now)
        ]
        for data_id in expired:
            del self._data[data_id]
        return expired

    def data_ids(self) -> Set[str]:
        return set(self._data.keys())

    def data_entries(self) -> Tuple[StoredData, ...]:
        """Stored data entries in insertion order (the snapshot wire order)."""
        return tuple(self._data.values())

    # -- blocks --------------------------------------------------------------------------

    def store_block(self, block: Block) -> None:
        """Persist a block this node was assigned to store."""
        if block.index in self._blocks:
            return
        if self.is_full:
            self.rejected_for_capacity += 1
            raise StorageError("storage full")
        self._blocks[block.index] = block

    def has_block(self, index: int) -> bool:
        if index in self._blocks:
            return True
        if self._last_block is not None and self._last_block.index == index:
            return True
        return any(block.index == index for block in self._recent)

    def get_block(self, index: int) -> Optional[Block]:
        if index in self._blocks:
            return self._blocks[index]
        if self._last_block is not None and self._last_block.index == index:
            return self._last_block
        for block in self._recent:
            if block.index == index:
                return block
        return None

    def prune_block_bodies(self, before_index: int) -> int:
        """Drop assigned-block bodies below the lifecycle horizon.

        The slots stay counted (``pruned_block_slots``): the chain assigned
        them and Q_i credit is chain-derived, so releasing the slot would
        change placement inputs.  Only the serveable body goes — a
        ``get_block`` for a pruned index misses, exactly as if the body
        lived on the cold tier.  Returns the number of bodies dropped.
        """
        pruned = [index for index in self._blocks if index < before_index]
        for index in pruned:
            del self._blocks[index]
        self._pruned_block_slots = self.pruned_block_slots + len(pruned)
        return len(pruned)

    def stored_block_indices(self) -> Set[int]:
        indices = set(self._blocks.keys())
        indices.update(block.index for block in self._recent)
        if self._last_block is not None:
            indices.add(self._last_block.index)
        return indices

    # -- recent-block cache (Section IV-C) --------------------------------------------------

    def set_last_block(self, block: Block) -> None:
        """Every node keeps the last block (mining needs its POSHash)."""
        self._last_block = block

    @property
    def last_block(self) -> Optional[Block]:
        return self._last_block

    def cache_recent_block(self, block: Block) -> None:
        """Add a block to the FIFO recent cache (replacing the oldest)."""
        if any(cached.index == block.index for cached in self._recent):
            return
        self._recent.append(block)
        while len(self._recent) > self.recent_cache_capacity:
            self._recent.popleft()

    def recent_blocks(self) -> Tuple[Block, ...]:
        return tuple(self._recent)

    def assigned_blocks(self) -> Tuple[Block, ...]:
        """Permanently assigned blocks in insertion order (snapshot order)."""
        return tuple(self._blocks.values())
