"""Data migration under topology drift (the paper's §VII future work).

"Over time, data items may become obsolete, and nodes will also change the
location.  The distributed storage will not remain optimal during that
time.  Calculating the optimal storage problem is not necessary if the
change over the network is small.  In the future, we will discuss the data
migration problem, which will study how to use less operation to achieve
less offset from the optimal result."

This module implements that study:

* :func:`placement_drift` — how far a placement has drifted from optimal
  on the *current* UFL instance (cost ratio ≥ 1).
* :func:`plan_migration` — a bounded-operation greedy repair: starting
  from the current replica set, apply the single most cost-reducing
  add / drop / swap move, up to ``max_operations`` moves.  Each move is
  one "operation" (a swap transfers the item once; an add copies it once;
  a drop is free storage-wise but counts as a management operation).
* :class:`MigrationPlan` — the resulting move list with before/after
  costs, so callers can decide whether the improvement justifies the
  transfer traffic.

The ablation bench (``bench_ablation_migration.py``) sweeps the operation
budget and plots the drift-vs-operations frontier the paper asks about.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.facility.greedy import solve_greedy
from repro.facility.problem import UFLProblem, solution_cost_of_open_set


class MoveKind(enum.Enum):
    ADD = "add"  # open a new replica (one data copy transferred)
    DROP = "drop"  # retire a replica (no transfer)
    SWAP = "swap"  # move a replica between nodes (one transfer)


@dataclass(frozen=True)
class MigrationMove:
    """One repair operation on a placement."""

    kind: MoveKind
    source: Optional[int]  # node losing the replica (DROP/SWAP)
    target: Optional[int]  # node gaining the replica (ADD/SWAP)

    def __post_init__(self) -> None:
        if self.kind is MoveKind.ADD and (self.target is None or self.source is not None):
            raise ValueError("ADD needs a target and no source")
        if self.kind is MoveKind.DROP and (self.source is None or self.target is not None):
            raise ValueError("DROP needs a source and no target")
        if self.kind is MoveKind.SWAP and (self.source is None or self.target is None):
            raise ValueError("SWAP needs both source and target")

    @property
    def transfers_data(self) -> bool:
        """Whether executing this move ships a data copy over the network."""
        return self.kind is not MoveKind.DROP


@dataclass(frozen=True)
class MigrationPlan:
    """The outcome of planning: ordered moves plus the cost trajectory."""

    moves: Tuple[MigrationMove, ...]
    initial_cost: float
    final_cost: float
    optimal_cost: float

    @property
    def operations(self) -> int:
        return len(self.moves)

    @property
    def transfers(self) -> int:
        return sum(1 for move in self.moves if move.transfers_data)

    @property
    def initial_drift(self) -> float:
        """Cost ratio before migration (≥ 1; 1 means already optimal)."""
        return _ratio(self.initial_cost, self.optimal_cost)

    @property
    def final_drift(self) -> float:
        """Cost ratio after applying the plan."""
        return _ratio(self.final_cost, self.optimal_cost)

    def final_open_set(self, current: Iterable[int]) -> Tuple[int, ...]:
        """Apply the moves to a replica set and return the result."""
        replicas: Set[int] = set(current)
        for move in self.moves:
            if move.kind is MoveKind.ADD:
                replicas.add(move.target)
            elif move.kind is MoveKind.DROP:
                replicas.discard(move.source)
            else:
                replicas.discard(move.source)
                replicas.add(move.target)
        return tuple(sorted(replicas))


def _ratio(cost: float, optimal: float) -> float:
    if optimal <= 0:
        return 1.0 if cost <= 0 else math.inf
    return cost / optimal


def placement_drift(problem: UFLProblem, current_replicas: Sequence[int]) -> float:
    """How sub-optimal the current replica set is on the current instance.

    Returns ``cost(current) / cost(greedy-optimal)``; ``inf`` when the
    current placement is infeasible on the new topology (e.g. all replicas
    ended up unreachable from some client).
    """
    current_cost = solution_cost_of_open_set(problem, current_replicas)
    optimal_cost = solve_greedy(problem).total_cost(problem)
    return _ratio(current_cost, optimal_cost)


def plan_migration(
    problem: UFLProblem,
    current_replicas: Sequence[int],
    max_operations: int = 3,
    min_relative_gain: float = 0.02,
) -> MigrationPlan:
    """Greedy bounded-operation repair of a drifted placement.

    Each round evaluates every single add / drop / swap against the
    current set and applies the best one, stopping when the budget is
    spent or no move improves cost by at least ``min_relative_gain``
    (relative to the current cost) — the "not necessary if the change over
    the network is small" rule.
    """
    if max_operations < 0:
        raise ValueError("operation budget cannot be negative")
    optimal_cost = solve_greedy(problem).total_cost(problem)
    current: Set[int] = set(current_replicas)
    initial_cost = solution_cost_of_open_set(problem, current)
    current_cost = initial_cost
    openable = set(int(i) for i in problem.openable_facilities())

    moves: List[MigrationMove] = []
    for _ in range(max_operations):
        best_cost = current_cost
        best_move: Optional[MigrationMove] = None
        best_set: Optional[Set[int]] = None

        for target in sorted(openable - current):
            candidate = current | {target}
            cost = solution_cost_of_open_set(problem, candidate)
            if cost < best_cost:
                best_cost, best_set = cost, candidate
                best_move = MigrationMove(MoveKind.ADD, None, target)
        if len(current) > 1:
            for source in sorted(current):
                candidate = current - {source}
                cost = solution_cost_of_open_set(problem, candidate)
                if cost < best_cost:
                    best_cost, best_set = cost, candidate
                    best_move = MigrationMove(MoveKind.DROP, source, None)
        for source in sorted(current):
            for target in sorted(openable - current):
                candidate = (current - {source}) | {target}
                cost = solution_cost_of_open_set(problem, candidate)
                if cost < best_cost:
                    best_cost, best_set = cost, candidate
                    best_move = MigrationMove(MoveKind.SWAP, source, target)

        if best_move is None:
            break
        # Infeasible current placements (inf cost) always accept repairs;
        # finite ones require the minimum relative gain.
        if math.isfinite(current_cost):
            gain = (current_cost - best_cost) / current_cost
            if gain < min_relative_gain:
                break
        moves.append(best_move)
        current = best_set
        current_cost = best_cost

    return MigrationPlan(
        moves=tuple(moves),
        initial_cost=initial_cost,
        final_cost=current_cost,
        optimal_cost=optimal_cost,
    )
