"""Missing-block recovery and whole-chain synchronisation (Section IV-D).

Two recovery paths, mirroring Fig. 3 of the paper:

* **Recent-gap recovery** (Node A in the figure): a node that reconnects
  and sees a block with index > tip+1 buffers it and asks its radio
  neighbours for the gap.  Because the recent-block allocation keeps fresh
  blocks pervasive, neighbours usually hold them; a neighbour missing an
  index forwards the request (bounded TTL) to a node the chain says stores
  that block, and the holder responds directly to the origin.

* **Whole-chain sync** (Node K): a brand-new or long-offline node requests
  the full chain from a neighbour and adopts it via the longest-chain rule.

:class:`SyncState` tracks one node's in-flight recovery: buffered
out-of-order blocks, outstanding requested indices, and assembly of
contiguous runs that can be appended to the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.block import Block


@dataclass
class SyncState:
    """Per-node recovery bookkeeping."""

    #: Blocks received ahead of the tip, keyed by index.
    buffered: Dict[int, Block] = field(default_factory=dict)
    #: Indices currently requested and not yet received.
    outstanding: Set[int] = field(default_factory=set)
    #: Simulation time the current recovery started (None when idle).
    started_at: Optional[float] = None
    #: Completed recovery durations (for the recovery-latency metrics).
    completed_durations: List[float] = field(default_factory=list)
    #: Whether this recovery already escalated to a whole-chain request
    #: (fork detected while draining); prevents request storms.
    chain_requested: bool = False
    #: Cap on ``buffered``; blocks furthest ahead of the tip (the lowest
    #: priority — they are appendable last) are evicted past the limit,
    #: so a flooder cannot grow the buffer without bound.
    max_buffered: int = 512
    #: Cap on ``outstanding``; requests past the limit are not issued.
    max_outstanding: int = 256
    #: Out-of-order blocks evicted because the buffer was full.
    evicted: int = 0
    #: Which peer delivered each buffered block (for misbehavior
    #: attribution when a buffered block later fails validation).
    sources: Dict[int, int] = field(default_factory=dict)

    @property
    def recovering(self) -> bool:
        return self.started_at is not None

    def begin(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now

    def buffer_block(self, block: Block, source: Optional[int] = None) -> None:
        """Hold an out-of-order block until the gap below it fills."""
        existing = self.buffered.get(block.index)
        if existing is None:
            self.buffered[block.index] = block
            if source is not None:
                self.sources[block.index] = source
        self.outstanding.discard(block.index)
        while len(self.buffered) > self.max_buffered:
            furthest = max(self.buffered)
            self.buffered.pop(furthest)
            self.sources.pop(furthest, None)
            self.evicted += 1

    def missing_below(self, tip_index: int) -> List[int]:
        """Gap indices between the tip and the highest buffered block."""
        if not self.buffered:
            return []
        highest = max(self.buffered)
        return [
            index
            for index in range(tip_index + 1, highest)
            if index not in self.buffered
        ]

    def next_appendable(self, tip_index: int) -> Optional[Block]:
        """The buffered block that directly extends the tip, if present."""
        return self.buffered.get(tip_index + 1)

    def pop(self, index: int) -> None:
        self.buffered.pop(index, None)
        self.sources.pop(index, None)

    def source_of(self, index: int) -> Optional[int]:
        """The peer that delivered the buffered block at ``index``, if known."""
        return self.sources.get(index)

    def note_requested(self, indices: Tuple[int, ...]) -> List[int]:
        """Mark indices as requested; returns only the newly requested ones.

        Stops adding once ``max_outstanding`` is reached, bounding the
        re-request rate — remaining gaps are picked up by later rounds
        once earlier requests resolve.
        """
        fresh = []
        for i in indices:
            if i in self.outstanding:
                continue
            if len(self.outstanding) >= self.max_outstanding:
                break
            self.outstanding.add(i)
            fresh.append(i)
        return fresh

    def finish(self, now: float) -> Optional[float]:
        """Recovery complete: record and return its duration."""
        if self.started_at is None:
            return None
        duration = now - self.started_at
        self.completed_durations.append(duration)
        self.started_at = None
        self.outstanding.clear()
        self.chain_requested = False
        return duration

    def reset(self) -> None:
        """Abandon any in-flight recovery (e.g. chain replaced wholesale)."""
        self.buffered.clear()
        self.sources.clear()
        self.outstanding.clear()
        self.started_at = None
        self.chain_requested = False


def plan_block_requests(
    missing: List[int], neighbors: List[int], fan_out: int = 2
) -> Dict[int, Tuple[int, ...]]:
    """Split missing indices across up to ``fan_out`` neighbours.

    Round-robins the gap over the nearest neighbours so no single peer
    carries the whole recovery (Fig. 3 shows Node A asking B, C, D, E).
    Returns ``{neighbor: indices}``; empty when there are no neighbours.
    """
    if not missing or not neighbors:
        return {}
    targets = neighbors[: max(1, fan_out)]
    plan: Dict[int, List[int]] = {target: [] for target in targets}
    for position, index in enumerate(sorted(missing)):
        plan[targets[position % len(targets)]].append(index)
    return {target: tuple(indices) for target, indices in plan.items() if indices}
