"""Metadata items — the block payload.

Blocks store metadata *about* data items instead of the (large) data itself
(Section III-B).  A metadata item carries the attributes from the paper's
examples — data type, creation time, location, producer (with signature),
storing nodes, valid time, free-form properties — and the producer's ECDSA
signature binding them together, so any consumer can verify the data it
later fetches from a storing node.

The storing-node list is *not* signed: the producer signs the content
description, and the miner fills in the placement when it packs the item
into a block (Section IV-B).  :meth:`MetadataItem.with_storing_nodes`
produces that miner-side copy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.core.account import Account
from repro.core.config import DATA_ITEM_BYTES
from repro.crypto.hashing import hash_items
from repro.crypto.keys import PublicKey
from repro.crypto.signature import Signature, verify

#: Serialized overhead of one metadata item on the wire: attribute text
#: (~150 B), compressed public key (33 B), signature (64 B), framing.
METADATA_WIRE_BYTES = 300


@dataclass(frozen=True)
class MetadataItem:
    """A signed descriptor of one data item.

    Attributes mirror the paper's examples, e.g.::

        (AirQuality/PM2.5; 11:00AM 06-11-2018; NewYork,NY/40.72,-74.00;
         17,[signature]; 10,11,12,15; 1440; NULL)
    """

    data_id: str  # unique id (hash of producer + sequence)
    data_type: str  # e.g. "AirQuality/PM2.5"
    created_at: float  # simulation timestamp, seconds
    location: str  # e.g. "NewYork,NY/40.72,-74.00"
    producer: int  # producer node id
    producer_address: str
    producer_public_key_hex: str
    signature_hex: str
    valid_time_minutes: float  # lifetime of the data item
    properties: str = ""  # free-form extras ("Camera", a key, ...)
    size_bytes: int = DATA_ITEM_BYTES
    #: Filled in by the miner when packed into a block (Section IV-B).
    storing_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.valid_time_minutes <= 0:
            raise ValueError("valid time must be positive")
        if self.size_bytes <= 0:
            raise ValueError("data size must be positive")
        if self.created_at < 0:
            raise ValueError("creation time cannot be negative")

    # -- signing ------------------------------------------------------------------

    def signing_payload(self) -> bytes:
        """The bytes the producer signs (placement excluded — see module doc)."""
        return hash_items(
            "metadata",
            self.data_id,
            self.data_type,
            str(self.created_at),
            self.location,
            self.producer,
            self.producer_address,
            str(self.valid_time_minutes),
            self.properties,
            self.size_bytes,
        )

    def verify_signature(self) -> bool:
        """Validate the producer signature with the embedded public key."""
        try:
            public_key = PublicKey.from_hex(self.producer_public_key_hex)
            signature = Signature.from_hex(self.signature_hex)
        except ValueError:
            return False
        return verify(public_key, self.signing_payload(), signature)

    # -- lifecycle -------------------------------------------------------------------

    @property
    def expires_at(self) -> float:
        """Simulation time at which the data item expires."""
        return self.created_at + self.valid_time_minutes * 60.0

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def with_storing_nodes(self, storing_nodes: Tuple[int, ...]) -> "MetadataItem":
        """Miner-side copy with the placement decision recorded."""
        return replace(self, storing_nodes=tuple(sorted(set(storing_nodes))))

    def wire_size(self) -> int:
        """Approximate serialised size, including the storing-node list."""
        return METADATA_WIRE_BYTES + 4 * len(self.storing_nodes)


def data_id_for(account: Account, sequence: int) -> str:
    """The data id the producer's ``sequence``-th item will carry.

    Depends only on the account address and the per-producer counter —
    not on production time — so any party that knows the deterministic
    workload can precompute ids without running the producer (the live
    harness uses this to schedule requests ahead of production).
    """
    return hash_items("data", account.address, sequence).hex()[:32]


def create_metadata(
    account: Account,
    producer: int,
    sequence: int,
    created_at: float,
    data_type: str = "Sensor/Generic",
    location: str = "Field/0,0",
    valid_time_minutes: float = 1440.0,
    properties: str = "",
    size_bytes: int = DATA_ITEM_BYTES,
) -> MetadataItem:
    """Create and sign a metadata item for a freshly produced data item.

    ``sequence`` is the producer's local counter; the data id is the hash of
    (producer address, sequence), which is unique per producer.
    """
    data_id = data_id_for(account, sequence)
    unsigned = MetadataItem(
        data_id=data_id,
        data_type=data_type,
        created_at=created_at,
        location=location,
        producer=producer,
        producer_address=account.address,
        producer_public_key_hex=account.public_key.hex(),
        signature_hex="00" * 64,
        valid_time_minutes=valid_time_minutes,
        properties=properties,
        size_bytes=size_bytes,
    )
    signature = account.sign(unsigned.signing_payload())
    return replace(unsigned, signature_hex=signature.hex())


def rehost_metadata(
    item: MetadataItem, account: Account, producer: int
) -> MetadataItem:
    """Re-sign a foreign metadata item under a local gateway identity.

    Cross-cluster migration imports an item minted in another allocation
    domain: the original producer is not in the local roster, so the item
    as signed can never pass local admission.  The gateway — which holds
    the payload after a cross-cluster fetch — takes over as producer: the
    content description (data id, type, creation time, location, validity,
    properties, size) is preserved verbatim, the producer identity fields
    are swapped for the gateway's, the placement is cleared for the local
    miner's UFL allocation to fill, and the result is re-signed.  The data
    id keeps its global identity, so directory blooms and consumers keep
    resolving it across clusters.
    """
    unsigned = replace(
        item,
        producer=producer,
        producer_address=account.address,
        producer_public_key_hex=account.public_key.hex(),
        signature_hex="00" * 64,
        storing_nodes=(),
    )
    signature = account.sign(unsigned.signing_payload())
    return replace(unsigned, signature_hex=signature.hex())
