"""Storage allocation: which nodes store a data item or block.

Implements Section IV-A/B: for each item, build the UFL instance from the
current chain-derived storage state (FDC) and topology (RDC), solve it with
the configured solver, and return the open facilities as the storing nodes.

The allocator is deterministic given the same chain state and topology, so
the miner's placement decision can be reproduced by any validator.  The
``random`` solver is the Fig. 5 baseline: it opens as many replicas as the
optimal solver would have, uniformly at random.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.errors import AllocationError
from repro.facility.costs import build_storage_ufl
from repro.facility.greedy import solve_greedy
from repro.facility.incremental import IncrementalUFLSolver
from repro.facility.local_search import solve_local_search
from repro.facility.lp_rounding import solve_lp_rounding
from repro.facility.problem import UFLProblem, UFLSolution
from repro.facility.random_baseline import solve_random
from repro.obs import runtime as _obs


@dataclass(frozen=True)
class AllocationDecision:
    """The outcome of placing one item."""

    storing_nodes: Tuple[int, ...]
    total_cost: float
    replica_count: int


class AllocationEngine:
    """Solves the per-item placement problem against live network state."""

    def __init__(self, config: SystemConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Count of placements that needed the least-loaded fallback.
        self.fallback_placements = 0
        #: Warm-started solver state, shared across this cluster's solves.
        self._incremental: Optional[IncrementalUFLSolver] = None

    def build_problem(
        self,
        used_slots: Sequence[float],
        total_slots: Sequence[float],
        hop_matrix: np.ndarray,
        ranges: Sequence[float],
        exclude_nodes: Optional[Sequence[int]] = None,
    ) -> UFLProblem:
        """The Eq. 3 instance for the current network state."""
        return build_storage_ufl(
            used_storage=used_slots,
            total_storage=total_slots,
            hop_matrix=hop_matrix,
            ranges=ranges,
            fdc_weight=self.config.fdc_weight,
            exclude_nodes=exclude_nodes,
        )

    def _solve(self, problem: UFLProblem) -> UFLSolution:
        solver = self.config.placement_solver
        if solver == "greedy":
            return solve_greedy(problem)
        if solver == "local_search":
            return solve_local_search(problem)
        if solver == "lp_rounding":
            return solve_lp_rounding(problem)
        if solver == "incremental":
            if self._incremental is None:
                self._incremental = IncrementalUFLSolver(base="greedy")
            return self._incremental.solve(problem)
        if solver == "random":
            # Replica-matched baseline: random placement with the replica
            # count the optimal (greedy) solution would have chosen.
            optimal = solve_greedy(problem)
            replicas = self.config.random_replicas or optimal.replica_count
            replicas = min(replicas, len(problem.openable_facilities()))
            return solve_random(problem, replicas, self._rng)
        raise AllocationError(f"unknown placement solver: {solver}")

    def place_item(
        self,
        used_slots: Sequence[float],
        total_slots: Sequence[float],
        hop_matrix: np.ndarray,
        ranges: Sequence[float],
        exclude_nodes: Optional[Sequence[int]] = None,
    ) -> AllocationDecision:
        """Choose the storing nodes for one data item or block.

        Falls back to the least-loaded reachable node when the UFL instance
        is infeasible (e.g. nearly all nodes full) — the item still needs at
        least one replica.  Raises :class:`AllocationError` only when not a
        single node has a free slot.
        """
        with _obs.span(
            "facility.place_item", "facility", solver=self.config.placement_solver
        ) as obs_span:
            return self._place_item(
                used_slots, total_slots, hop_matrix, ranges, exclude_nodes, obs_span
            )

    def _place_item(
        self, used_slots, total_slots, hop_matrix, ranges, exclude_nodes, obs_span
    ) -> AllocationDecision:
        problem = self.build_problem(
            used_slots, total_slots, hop_matrix, ranges, exclude_nodes
        )
        if problem.is_feasible():
            solution = self._solve(problem)
            decision = AllocationDecision(
                storing_nodes=tuple(solution.open_facilities),
                total_cost=solution.total_cost(problem),
                replica_count=solution.replica_count,
            )
            if _obs.is_enabled():
                obs_span.set(
                    replicas=decision.replica_count, cost=decision.total_cost
                )
                _obs.add("facility.placements")
                _obs.observe("facility.replicas_per_item", decision.replica_count)
                if math.isfinite(decision.total_cost):
                    _obs.observe("facility.place_cost", decision.total_cost)
            return decision
        # Fallback: any node with capacity, preferring the least loaded.
        candidates = [
            (used / total, node)
            for node, (used, total) in enumerate(zip(used_slots, total_slots))
            if used < total and not (exclude_nodes and node in set(exclude_nodes))
        ]
        if not candidates:
            raise AllocationError("no node has a free storage slot")
        self.fallback_placements += 1
        _obs.add("facility.fallback_placements")
        _, chosen = min(candidates)
        return AllocationDecision(
            storing_nodes=(chosen,), total_cost=math.inf, replica_count=1
        )
