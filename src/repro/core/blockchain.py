"""The blockchain: chain storage, validation, fork choice, and chain state.

Two classes:

* :class:`ChainState` — the ledger derived by replaying blocks: per-node
  tokens ``S_i`` (mining + storage incentives, Section III-A and IV-C),
  per-node stored-item counts ``Q_i`` (chain-recorded storage assignments
  with data expiry), and the amendment ``B`` for the next mining race.
  Every node derives the same state from the same blocks, which is what
  makes hits and targets publicly verifiable (Section V-A).

* :class:`Blockchain` — an append-only validated chain with longest-chain
  fork choice and gap detection (the input signal for the missing-block
  recovery protocol of Section IV-D).
"""

from __future__ import annotations

import bisect
import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.block import Block, make_genesis
from repro.core.config import SystemConfig
from repro.core.errors import (
    ChainLinkError,
    CheckpointError,
    ConsensusError,
    PrunedBlockError,
    ValidationError,
)
from repro.core.metadata import MetadataItem
from repro.crypto.hashing import hash_items
from repro.lifecycle.checkpoint import CheckpointRecord
from repro.core.pos import (
    compute_amendment,
    compute_hit,
    compute_pos_hash,
    satisfies_target,
)

#: Relative tolerance when validating a block's recorded B amendment.
_B_TOLERANCE = 1e-9


@dataclass
class _NodeLedger:
    """Chain-derived per-node ledger entry."""

    tokens: float
    data_expiries: List[float] = field(default_factory=list)  # kept sorted
    blocks_stored: int = 0
    recent_cache: Deque[int] = field(default_factory=deque)

    def unexpired_data(self, now: float) -> int:
        """Number of stored data items not yet expired at ``now``."""
        return len(self.data_expiries) - bisect.bisect_right(self.data_expiries, now)


class ChainState:
    """The ledger a node derives from its chain (deterministic replay)."""

    def __init__(self, node_ids: Sequence[int], config: SystemConfig):
        self.config = config
        self.node_ids: Tuple[int, ...] = tuple(sorted(node_ids))
        self._ledger: Dict[int, _NodeLedger] = {
            node: _NodeLedger(tokens=config.initial_tokens) for node in self.node_ids
        }
        #: data_id → metadata item (latest packed copy, with storing nodes).
        self.metadata_index: Dict[str, MetadataItem] = {}
        #: block index → nodes persisting that block.
        self.block_storing: Dict[int, Tuple[int, ...]] = {}
        self.blocks_applied = 0

    # -- replay ---------------------------------------------------------------------

    def apply_block(self, block: Block) -> None:
        """Fold one block into the ledger (must be called in chain order)."""
        if block.index != self.blocks_applied:
            raise ValueError(
                f"blocks must be applied in order (expected {self.blocks_applied}, "
                f"got {block.index})"
            )
        self.block_storing[block.index] = block.storing_nodes
        if not block.is_genesis:
            miner = self._ledger.get(block.miner)
            if miner is not None:
                miner.tokens += self.config.mining_incentive
            for item in block.metadata_items:
                self.metadata_index[item.data_id] = item
                for node in item.storing_nodes:
                    ledger = self._ledger.get(node)
                    if ledger is None:
                        continue
                    bisect.insort(ledger.data_expiries, item.expires_at)
                    ledger.tokens += self.config.storage_incentive
            for node in block.storing_nodes:
                ledger = self._ledger.get(node)
                if ledger is None:
                    continue
                ledger.blocks_stored += 1
                ledger.tokens += self.config.storage_incentive
            for node in block.recent_cache_nodes:
                ledger = self._ledger.get(node)
                if ledger is None:
                    continue
                ledger.recent_cache.append(block.index)
                while len(ledger.recent_cache) > self.config.recent_cache_capacity:
                    ledger.recent_cache.popleft()  # FIFO (Section IV-C)
                ledger.tokens += self.config.storage_incentive
            # Periodic S-rescaling keeps B numerically sane (Section V-B).
            if block.index % self.config.token_rescale_interval == 0:
                for ledger in self._ledger.values():
                    ledger.tokens *= self.config.token_rescale_ratio
        self.blocks_applied += 1

    # -- PoS inputs -------------------------------------------------------------------

    def tokens(self, node: int) -> float:
        """S_i — the node's token balance."""
        return self._ledger[node].tokens

    def stored_items(self, node: int, now: float) -> int:
        """Q_i — chain-assigned items the node holds at ``now``.

        Counts the mandatory last block (+1, Section V-A: a new node
        "will at least store the last block ... the number of data stored
        in a new node is also one"), unexpired data assignments, permanent
        block assignments, and the recent-block FIFO cache.
        """
        ledger = self._ledger[node]
        return (
            1
            + ledger.unexpired_data(now)
            + ledger.blocks_stored
            + len(ledger.recent_cache)
        )

    def used_slots(self, node: int, now: float) -> int:
        """W(i) — storage slots in use, the FDC numerator (Eq. 1)."""
        return self.stored_items(node, now)

    def stake_storage_product(self, node: int, now: float) -> float:
        """U_i = S_i · Q_i."""
        return self.tokens(node) * self.stored_items(node, now)

    def mean_u(self, now: float) -> float:
        """Ū = (1/n) Σ U_i."""
        return sum(
            self.stake_storage_product(node, now) for node in self.node_ids
        ) / len(self.node_ids)

    def amendment(self, now: float) -> float:
        """The B in force for the next race (Eq. 14).

        Memoised on ``(blocks_applied, now)``: within one ChainState the
        ledger only changes when a block is applied, and every node on
        the same tip asks for B at the parent's timestamp — without the
        memo the Ū scan makes each block O(n²) in cluster size.  The
        ``getattr`` guard keeps snapshots pickled before this cache
        existed loadable.
        """
        key = (self.blocks_applied, now)
        cached = getattr(self, "_amendment_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        value = compute_amendment(
            self.config.hit_modulus,
            len(self.node_ids),
            self.config.expected_block_interval,
            self.mean_u(now),
        )
        self._amendment_cache = (key, value)
        return value

    def recent_cache_of(self, node: int) -> Tuple[int, ...]:
        return tuple(self._ledger[node].recent_cache)

    # -- lifecycle -------------------------------------------------------------------

    def clone(self) -> "ChainState":
        """Independent copy (the pruning anchor / fork-replay baseline).

        Deep enough that applying blocks to the copy never mutates the
        original: ledgers are rebuilt, block objects and metadata items
        are shared (both immutable).
        """
        other = ChainState.__new__(ChainState)
        other.config = self.config
        other.node_ids = self.node_ids
        other._ledger = {
            node: _NodeLedger(
                tokens=ledger.tokens,
                data_expiries=list(ledger.data_expiries),
                blocks_stored=ledger.blocks_stored,
                recent_cache=deque(ledger.recent_cache),
            )
            for node, ledger in self._ledger.items()
        }
        other.metadata_index = dict(self.metadata_index)
        other.block_storing = dict(self.block_storing)
        other.blocks_applied = self.blocks_applied
        return other

    def prune_below(self, horizon: int, cutoff: float) -> int:
        """Drop derived-state payloads below the retention horizon.

        Removes block-storing entries for pruned indices and metadata
        items that expired at or before ``cutoff`` (the horizon block's
        timestamp) — neither feeds :meth:`ledger_digest`, so pruning is
        digest-neutral by construction.  The per-node ledgers (which DO
        feed the digest) are never touched.  Returns the number of
        entries dropped.
        """
        stale_blocks = [index for index in self.block_storing if index < horizon]
        for index in stale_blocks:
            del self.block_storing[index]
        stale_items = [
            data_id
            for data_id, item in self.metadata_index.items()
            if item.expires_at <= cutoff
        ]
        for data_id in stale_items:
            del self.metadata_index[data_id]
        return len(stale_blocks) + len(stale_items)

    def ledger_digest(self) -> str:
        """Deterministic hash of the full derived ledger.

        Two nodes (or one node before and after a snapshot/restore cycle)
        derive the same digest iff their token balances, storage
        assignments, and recent caches agree exactly — ``repr`` keeps the
        float token balances bit-exact.
        """
        fields: List[object] = ["ledger-digest", self.blocks_applied]
        for node in self.node_ids:
            ledger = self._ledger[node]
            fields.extend(
                (
                    node,
                    repr(ledger.tokens),
                    ",".join(repr(e) for e in ledger.data_expiries),
                    ledger.blocks_stored,
                    ",".join(map(str, ledger.recent_cache)),
                )
            )
        return hash_items(*fields).hex()

    def storage_snapshot(self, now: float) -> Dict[int, int]:
        """Used slots for every node (the Gini-coefficient input)."""
        return {node: self.used_slots(node, now) for node in self.node_ids}


class BlockOutcome(enum.Enum):
    """Result of offering a block to :meth:`Blockchain.consider_block`."""

    APPENDED = "appended"  # extended the tip
    DUPLICATE = "duplicate"  # already have this block
    STALE = "stale"  # competes with an existing block at ≤ tip height
    GAP = "gap"  # index beyond tip+1: blocks are missing (Section IV-D)


class Blockchain:
    """A validated chain with deterministic replayable state."""

    def __init__(
        self,
        node_ids: Sequence[int],
        config: SystemConfig,
        address_of: Dict[int, str],
        genesis: Optional[Block] = None,
    ):
        self.config = config
        self.node_ids = tuple(sorted(node_ids))
        self.address_of = dict(address_of)
        if genesis is None:
            initial_b = compute_amendment(
                config.hit_modulus,
                len(self.node_ids),
                config.expected_block_interval,
                mean_u=config.initial_tokens * 1.0,
            )
            genesis = make_genesis(self.node_ids, initial_b)
        if not genesis.is_genesis:
            raise ValueError("genesis block must have index 0")
        self.blocks: List[Block] = []
        self.state = ChainState(self.node_ids, config)
        #: Index of the oldest retained body (0 until the chain prunes).
        self._first_retained: int = 0
        #: Replay state as of block ``_first_retained`` (None until pruned).
        self._anchor_state: Optional[ChainState] = None
        #: Pinned records at every checkpoint the chain has pruned to.
        self._checkpoints: Dict[int, CheckpointRecord] = {}
        #: External floor on pruning (e.g. the journaled height of a
        #: durable run): ``maybe_prune`` never drops bodies above it.
        self.prune_floor_limit: Optional[int] = None
        self._append_unchecked(genesis)

    @classmethod
    def _bare(
        cls,
        node_ids: Sequence[int],
        config: SystemConfig,
        address_of: Dict[int, str],
    ) -> "Blockchain":
        """An empty shell for replica construction (no genesis applied)."""
        chain = cls.__new__(cls)
        chain.config = config
        chain.node_ids = tuple(sorted(node_ids))
        chain.address_of = dict(address_of)
        chain.blocks = []
        chain.state = ChainState(chain.node_ids, config)
        chain._first_retained = 0
        chain._anchor_state = None
        chain._checkpoints = {}
        chain.prune_floor_limit = None
        return chain

    # -- basic accessors -----------------------------------------------------------

    @property
    def tip(self) -> Block:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return self.tip.index

    @property
    def first_retained_index(self) -> int:
        """Oldest block index whose body is still in memory.

        ``getattr`` guard: snapshots pickled before the lifecycle
        subsystem existed restore without the attribute and are, by
        definition, unpruned.
        """
        return getattr(self, "_first_retained", 0)

    @property
    def retained_blocks(self) -> int:
        """Number of block bodies held in memory (the hot footprint)."""
        return len(self.blocks)

    @property
    def checkpoints(self) -> Dict[int, CheckpointRecord]:
        """Pinned checkpoint records, keyed by checkpoint index."""
        records = getattr(self, "_checkpoints", None)
        if records is None:
            records = self._checkpoints = {}
        return records

    def __len__(self) -> int:
        """Logical chain length (height + 1), pruned bodies included."""
        return self.height + 1

    def block_at(self, index: int) -> Block:
        first = self.first_retained_index
        if 0 <= index < first:
            raise PrunedBlockError(
                f"block {index} was pruned (bodies retained from {first})"
            )
        position = index - first
        if not (0 <= position < len(self.blocks)):
            raise IndexError(f"no block at index {index}")
        return self.blocks[position]

    def has_block(self, index: int) -> bool:
        """True when the body at ``index`` is retained in memory."""
        return self.first_retained_index <= index <= self.height

    def metadata_of(self, data_id: str) -> Optional[MetadataItem]:
        return self.state.metadata_index.get(data_id)

    def chain_digest(self) -> str:
        """Hash committing to the whole chain plus its derived ledger.

        The persistence layer stores this in every snapshot and re-checks
        it after restore: a restored chain must reproduce the digest
        byte-for-byte or the snapshot is rejected as inconsistent.
        """
        return hash_items(
            "chain-digest",
            self.height,
            self.tip.current_hash,
            self.state.ledger_digest(),
        ).hex()

    def search_metadata(
        self,
        data_type: Optional[str] = None,
        location: Optional[str] = None,
        producer: Optional[int] = None,
        created_after: Optional[float] = None,
        created_before: Optional[float] = None,
        include_expired: bool = True,
        now: Optional[float] = None,
    ) -> List[MetadataItem]:
        """Search the on-chain metadata index (Section III-B: "the user can
        search what it demands, and request the data item from the nodes
        that store it").

        String filters are case-insensitive substring matches (the paper's
        attributes are structured strings like ``AirQuality/PM2.5`` and
        ``NewYork,NY/40.72,-74.00``).  ``include_expired=False`` requires
        ``now`` and drops items past their valid time.  Results are sorted
        by creation time, newest first.
        """
        if not include_expired and now is None:
            raise ValueError("include_expired=False requires now")
        results: List[MetadataItem] = []
        for item in self.state.metadata_index.values():
            if data_type is not None and data_type.lower() not in item.data_type.lower():
                continue
            if location is not None and location.lower() not in item.location.lower():
                continue
            if producer is not None and item.producer != producer:
                continue
            if created_after is not None and item.created_at < created_after:
                continue
            if created_before is not None and item.created_at > created_before:
                continue
            if not include_expired and item.is_expired(now):
                continue
            results.append(item)
        return sorted(results, key=lambda item: -item.created_at)

    # -- validation ------------------------------------------------------------------

    def validate_child(self, block: Block) -> None:
        """Validate ``block`` as the next block after the current tip.

        Checks chain linkage, the block hash, and the full PoS claim
        (re-derived hit, recorded B, and Eq. 9 at the block's timestamp).
        Raises a :class:`~repro.core.errors.ValidationError` subclass on
        the first violation.
        """
        parent = self.tip
        if not block.links_to(parent):
            raise ChainLinkError(
                f"block {block.index} does not link to tip {parent.index}"
            )
        if not block.hash_is_valid():
            raise ValidationError(f"block {block.index} hash mismatch")
        expected_address = self.address_of.get(block.miner)
        if expected_address is None or expected_address != block.miner_address:
            raise ConsensusError(
                f"block {block.index} miner address does not match node {block.miner}"
            )
        if self.config.consensus == "pow":
            # The PoW baseline's proof is the brute-forced hash itself; the
            # simulation samples attempt counts instead of grinding, so
            # there is nothing further to re-verify beyond linkage + hash.
            if block.timestamp <= parent.timestamp:
                raise ConsensusError(
                    f"block {block.index} timestamp not after parent"
                )
            return
        expected_pos_hash = compute_pos_hash(parent.pos_hash, block.miner_address)
        if block.pos_hash != expected_pos_hash:
            raise ConsensusError(f"block {block.index} POSHash mismatch")
        expected_hit = compute_hit(
            parent.pos_hash, block.miner_address, self.config.hit_modulus
        )
        if block.hit != expected_hit:
            raise ConsensusError(f"block {block.index} hit mismatch")
        expected_b = self.state.amendment(parent.timestamp)
        if not math.isclose(block.target_b, expected_b, rel_tol=_B_TOLERANCE):
            raise ConsensusError(
                f"block {block.index} records B={block.target_b}, "
                f"expected {expected_b}"
            )
        elapsed = block.timestamp - parent.timestamp
        if elapsed <= 0:
            raise ConsensusError(f"block {block.index} timestamp not after parent")
        stake = self.state.tokens(block.miner)
        stored = self.state.stored_items(block.miner, parent.timestamp)
        if not satisfies_target(block.hit, stake, stored, elapsed, block.target_b):
            raise ConsensusError(
                f"block {block.index} does not satisfy h ≤ R "
                f"(h={block.hit}, S={stake}, Q={stored}, t={elapsed}, B={block.target_b})"
            )

    # -- growth -----------------------------------------------------------------------

    def _append_unchecked(self, block: Block) -> None:
        self.blocks.append(block)
        self.state.apply_block(block)

    def append_block(self, block: Block) -> None:
        """Validate and append a tip-extending block."""
        self.validate_child(block)
        self._append_unchecked(block)

    def consider_block(self, block: Block) -> BlockOutcome:
        """Classify an incoming block and append it when it extends the tip.

        ``GAP`` means the node is missing intermediate blocks and should
        trigger the recovery protocol; ``STALE`` is the first-received
        fork-choice rule at equal height (losers are simply dropped — the
        longest-chain rule takes over via :meth:`consider_chain` when a
        longer fork shows up).
        """
        if block.index <= self.height:
            if block.index < self.first_retained_index:
                # The body is pruned, so there is nothing to compare — and
                # a rewrite that deep is below a checkpoint anyway.
                return BlockOutcome.STALE
            existing = self.block_at(block.index)
            if existing.current_hash == block.current_hash:
                return BlockOutcome.DUPLICATE
            return BlockOutcome.STALE
        if block.index == self.height + 1:
            self.append_block(block)
            return BlockOutcome.APPENDED
        return BlockOutcome.GAP

    def last_checkpoint(self) -> int:
        """Index of the newest checkpointed block (0 when disabled).

        With a checkpoint interval k, a block at a multiple of k becomes a
        checkpoint once it is buried at least ``checkpoint_lag`` blocks
        deep (default 2k); reorganisations below it are then refused
        (Section V-D: "inserting checkpoint block ... to force nodes
        working on the chain that has checkpoint blocks").  The lag keeps
        a node from checkpointing a block that live forks could still
        replace — without it, a briefly-forked node would lock itself out
        of the honest chain.
        """
        interval = self.config.checkpoint_interval
        if interval <= 0:
            return 0
        lag = (
            self.config.checkpoint_lag
            if self.config.checkpoint_lag is not None
            else 2 * interval
        )
        confirmed_height = self.height - lag
        if confirmed_height <= 0:
            return 0
        return (confirmed_height // interval) * interval

    def consider_chain(self, blocks: Sequence[Block]) -> bool:
        """Longest-chain rule: adopt ``blocks`` if valid and strictly longer.

        Without a lifecycle policy the candidate must be a full chain from
        genesis (the historical contract).  With lifecycle enabled, a
        pruned peer legitimately serves only its retained suffix, so an
        anchored candidate is also acceptable: its first block must match
        a body we retain bit-for-bit — block hashes commit to the whole
        ancestor chain, so that one comparison covers every block below
        the anchor — and the rest replays with full validation from our
        state at the anchor.  Either way the candidate must agree with our
        chain on every comparable block up to the last checkpoint; a
        mismatch at or below the anchor raises :class:`CheckpointError`.
        Returns True when the switch happened.
        """
        if not blocks or blocks[-1].index <= self.height:
            return False
        first = self.first_retained_index
        start = blocks[0].index
        if start != 0 and getattr(self.config, "lifecycle", None) is None:
            raise ValidationError("candidate chain must start at genesis")
        if start < first:
            # The candidate reaches below what we retain; agreement down
            # there is covered by the anchor hash, so trim to our floor.
            offset = first - start
            if offset >= len(blocks) or blocks[offset].index != first:
                raise ValidationError("candidate chain is not contiguous")
            blocks = blocks[offset:]
            start = first
        if start == 0:
            if blocks[0].current_hash != self.blocks[0].current_hash:
                raise ValidationError("candidate chain has a different genesis")
        else:
            if start > self.height:
                raise ValidationError(
                    f"candidate chain starts at {start}, above our tip "
                    f"{self.height}: cannot anchor it"
                )
            if blocks[0].current_hash != self.block_at(start).current_hash:
                if start <= self.last_checkpoint():
                    raise CheckpointError(
                        f"candidate chain rewrites checkpointed block {start} "
                        f"(checkpoint at {self.last_checkpoint()})"
                    )
                raise ValidationError(
                    f"candidate chain does not anchor to our block {start}"
                )
        checkpoint = self.last_checkpoint()
        for index in range(max(start, first) + 1, checkpoint + 1):
            position = index - start
            if (
                position >= len(blocks)
                or blocks[position].current_hash != self.block_at(index).current_hash
            ):
                raise CheckpointError(
                    f"candidate chain rewrites checkpointed block {index} "
                    f"(checkpoint at {checkpoint})"
                )
        if start == 0:
            candidate = Blockchain(
                self.node_ids, self.config, self.address_of, genesis=blocks[0]
            )
            for block in blocks[1:]:
                candidate.append_block(block)
            self.blocks = candidate.blocks
            self.state = candidate.state
            return True
        replica = self._replica_at(start)
        for block in blocks[1:]:
            replica.append_block(block)
        # The replica already re-holds our validated bodies from the
        # retained floor through the anchor (identical to the candidate's
        # copies by the anchor-hash check), plus the new suffix.
        self.blocks = replica.blocks
        self.state = replica.state
        if first > 0:
            # Re-apply the in-memory pruning the pre-fork state carried.
            self.state.prune_below(first, self.blocks[0].timestamp)
        return True

    # -- lifecycle pruning --------------------------------------------------------

    def retention_horizon(self) -> int:
        """Newest checkpoint the lifecycle policy allows pruning up to."""
        from repro.lifecycle.spec import retention_horizon

        return retention_horizon(self.config, self.height)

    def maybe_prune(self) -> int:
        """Advance the pruning horizon if the policy says so.

        Called after every append on lifecycle-enabled nodes; returns the
        number of bodies dropped (0 when lifecycle is off or the horizon
        has not moved).  ``prune_floor_limit`` — when set by a durability
        layer — caps the horizon at the newest checkpoint the journal
        already holds, so a burst of fast blocks can never prune a body
        before it was persisted.
        """
        horizon = self.retention_horizon()
        limit = getattr(self, "prune_floor_limit", None)
        interval = self.config.checkpoint_interval
        if limit is not None and interval > 0:
            horizon = min(horizon, (limit // interval) * interval)
        if horizon <= self.first_retained_index:
            return 0
        return self.prune_to(horizon)

    def prune_to(self, horizon: int) -> int:
        """Drop bodies below checkpoint ``horizon``, pinning its record.

        The anchor replay state is advanced to the horizon *before* any
        body is dropped (the bodies being pruned are exactly what advances
        it), a :class:`CheckpointRecord` is pinned from that at-checkpoint
        state, and only then is the prefix released.  Chain digests are
        untouched: the tip, the height, and the cumulative ledger all
        survive pruning bit-for-bit.
        """
        first = self.first_retained_index
        if horizon <= first:
            return 0
        if horizon > self.last_checkpoint():
            raise ValueError(
                f"cannot prune to {horizon}: last checkpoint is "
                f"{self.last_checkpoint()}"
            )
        interval = self.config.checkpoint_interval
        if interval <= 0 or horizon % interval != 0:
            raise ValueError(f"prune horizon {horizon} is not a checkpoint index")
        anchor = getattr(self, "_anchor_state", None)
        if anchor is None:
            # First prune: derive the anchor from scratch (cheap — this
            # happens while the chain is still short).
            anchor = ChainState(self.node_ids, self.config)
            for block in self.blocks[: horizon - first + 1]:
                anchor.apply_block(block)
        else:
            for block in self.blocks[1 : horizon - first + 1]:
                anchor.apply_block(block)
        anchor_block = self.blocks[horizon - first]
        self.checkpoints[horizon] = CheckpointRecord.pin(anchor_block, anchor)
        dropped = horizon - first
        self.blocks = self.blocks[dropped:]
        self._first_retained = horizon
        self._anchor_state = anchor
        cutoff = anchor_block.timestamp
        anchor.prune_below(horizon, cutoff)
        self.state.prune_below(horizon, cutoff)
        return dropped

    def _replica_at(self, index: int) -> "Blockchain":
        """A standalone chain positioned at our own block ``index``.

        Rebuilds state by cloning the pruning anchor (or starting fresh
        from genesis when unpruned) and re-applying our already-validated
        bodies — the fork-replay baseline for anchored chain adoption and
        allocation re-verification on pruned chains.
        """
        first = self.first_retained_index
        if not (first <= index <= self.height):
            raise PrunedBlockError(
                f"cannot rebuild state at {index}: bodies retained are "
                f"[{first}, {self.height}]"
            )
        replica = Blockchain._bare(self.node_ids, self.config, self.address_of)
        anchor = getattr(self, "_anchor_state", None)
        if anchor is None:
            replica._append_unchecked(self.blocks[0])
        else:
            replica.state = anchor.clone()
            replica.blocks.append(self.blocks[0])
            replica._first_retained = first
        for position in range(1, index - first + 1):
            replica._append_unchecked(self.blocks[position])
        return replica

    def missing_indices(self, up_to: int) -> List[int]:
        """Indices this chain lacks to reach height ``up_to``."""
        return list(range(self.height + 1, up_to + 1))
