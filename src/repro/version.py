"""Single source of the installed package version.

Leaf module (no repro imports at module load) so anything — the CLI,
verdict writers, benchmark sinks — can stamp artefacts with the version
without risking an import cycle through ``repro/__init__``.
"""

from __future__ import annotations


def package_version() -> str:
    """The installed distribution version, with graceful fallbacks.

    Prefers package metadata (what ``pip`` actually installed); falls
    back to ``repro.__version__`` for source-tree runs without an
    installed distribution.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    import repro

    return getattr(repro, "__version__", "unknown")
