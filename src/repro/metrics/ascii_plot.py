"""Terminal-friendly plots: horizontal bars and sparklines.

The benches print figure *data* as tables; these helpers add a visual cue
in the same terminal output (e.g. the Fig. 6 battery curves) without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Sequence

#: Unicode eighth-blocks for sparklines, shortest to tallest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (empty input → empty string).

    NaNs render as spaces; the scale spans [min, max] of the finite values.
    """
    finite = [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]
    if not finite:
        return " " * len(list(values))
    low, high = min(finite), max(finite)
    span = high - low
    chars: List[str] = []
    for value in values:
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned values.

    Bars scale to the maximum value; zero/negative values get empty bars
    (negative magnitudes are not meaningful for the quantities we plot).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if width < 1:
        raise ValueError("width must be positive")
    if not labels:
        return ""
    peak = max((v for v in values if math.isfinite(v)), default=0.0)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        if not math.isfinite(value) or peak <= 0:
            filled = 0
        else:
            filled = max(0, min(width, round(value / peak * width)))
        bar = "█" * filled
        shown = f"{value:.4g}{unit}" if math.isfinite(value) else "nan"
        lines.append(f"{str(label).rjust(label_width)} | {bar.ljust(width)} {shown}")
    return "\n".join(lines)


def series_plot(
    x_labels: Sequence[object],
    series: Sequence[Sequence[float]],
    names: Sequence[str],
) -> str:
    """Sparklines for several aligned series with a shared x caption."""
    if len(series) != len(names):
        raise ValueError("one name per series required")
    name_width = max((len(n) for n in names), default=0)
    lines = [
        f"{name.rjust(name_width)}  {sparkline(values)}  "
        f"[{values[0]:.4g} → {values[-1]:.4g}]"
        for name, values in zip(names, series)
        if len(values) > 0
    ]
    caption = f"{' ' * name_width}  x: {x_labels[0]} … {x_labels[-1]}" if len(x_labels) else ""
    return "\n".join(lines + ([caption] if caption else []))
