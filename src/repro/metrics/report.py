"""Plain-text tabular reports for the benchmark harness.

The benchmarks print the same rows/series the paper's figures plot; this
module renders them as aligned text tables so the numbers are readable in
CI logs and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 4) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 4,
) -> str:
    """Render an aligned text table with a title rule."""
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), 1)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 4,
) -> None:
    print()
    print(render_table(title, headers, rows, precision))
    print()
