"""Summary statistics helpers used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan)
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            std=float(data.std(ddof=0)),
            minimum=float(data.min()),
            median=float(np.median(data)),
            p95=float(np.percentile(data, 95)),
            maximum=float(data.max()),
        )

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"p95={self.p95:.4g} max={self.maximum:.4g}"
        )


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of a possibly empty sequence (NaN when empty)."""
    data = list(values)
    if not data:
        return float("nan")
    return float(np.mean(data))


def ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio (NaN when the denominator is 0 or non-finite)."""
    if not math.isfinite(denominator) or denominator == 0:
        return float("nan")
    return numerator / denominator


def percent_change(new: float, baseline: float) -> float:
    """(new − baseline)/baseline in percent; the paper's 'X % less' numbers
    are ``-percent_change``."""
    if baseline == 0 or not math.isfinite(baseline):
        return float("nan")
    return 100.0 * (new - baseline) / baseline
