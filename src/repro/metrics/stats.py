"""Summary statistics helpers used by the experiment harness.

Percentile/summary math lives in :mod:`repro.obs.metrics` (the
observability layer's exact helpers); :class:`Summary` is a thin typed
view over :func:`repro.obs.metrics.summarize` rather than a parallel
implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.metrics import summarize


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        stats = summarize(values)
        return cls(
            count=stats["count"],
            mean=stats["mean"],
            std=stats["std"],
            minimum=stats["min"],
            median=stats["median"],
            p95=stats["p95"],
            maximum=stats["max"],
        )

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"p95={self.p95:.4g} max={self.maximum:.4g}"
        )


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of a possibly empty sequence (NaN when empty)."""
    data = list(values)
    if not data:
        return float("nan")
    return float(np.mean(data))


def ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio (NaN when the denominator is 0 or non-finite)."""
    if not math.isfinite(denominator) or denominator == 0:
        return float("nan")
    return numerator / denominator


def percent_change(new: float, baseline: float) -> float:
    """(new − baseline)/baseline in percent; the paper's 'X % less' numbers
    are ``-percent_change``."""
    if baseline == 0 or not math.isfinite(baseline):
        return float("nan")
    return 100.0 * (new - baseline) / baseline
