"""Result export: JSON and CSV writers for experiment outputs.

Turns :class:`~repro.metrics.collector.RunMetrics` into plain
serialisable records so sweeps can be archived, diffed across runs, and
plotted by external tools.  :func:`store_chain_record` derives the
chain-level share of those quantities straight from a durable
:class:`~repro.persist.chainstore.ChainStore`, so finished (or crashed)
runs can be summarised without re-simulating anything.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.metrics.collector import RunMetrics

PathLike = Union[str, Path]


def metrics_to_record(metrics: RunMetrics, **labels) -> Dict[str, object]:
    """Flatten one run's metrics into a serialisable record.

    ``labels`` (e.g. ``node_count=30, rate=2.0, solver="greedy"``) are
    prepended so sweep records are self-describing.
    """
    record: Dict[str, object] = dict(labels)
    record.update(
        {
            "node_count": metrics.node_count,
            "duration_seconds": metrics.duration_seconds,
            "chain_height": metrics.chain_height(),
            "mean_block_interval_s": metrics.mean_block_interval(),
            "avg_node_megabytes": metrics.average_node_megabytes(),
            "total_megabytes": metrics.total_megabytes(),
            "storage_gini": metrics.storage_gini(),
            "avg_delivery_s": metrics.average_delivery_time(),
            "deliveries": len(metrics.delivery_times),
            "failed_requests": metrics.failed_requests,
            "data_items_produced": metrics.data_items_produced,
            "recoveries": len(metrics.recovery_durations),
            "mean_recovery_s": metrics.mean_recovery_duration(),
            "category_bytes": dict(metrics.category_bytes),
        }
    )
    return record


def write_json(records: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write records as a pretty-printed JSON array; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(list(records), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return target


def read_json(path: PathLike) -> List[Dict[str, object]]:
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def store_chain_record(store) -> Dict[str, object]:
    """Chain-level metrics straight from a durable chain store.

    ``store`` is a :class:`~repro.persist.chainstore.ChainStore` (typed
    loosely to keep this module import-light).  The record mirrors the
    chain-derived fields of :func:`metrics_to_record` — height, mean
    block interval, per-miner distribution — plus store-only counts.
    """
    timestamps = store.block_timestamps()
    intervals = [
        later - earlier for earlier, later in zip(timestamps, timestamps[1:])
    ]
    mean_interval = (
        sum(intervals) / len(intervals) if intervals else float("nan")
    )
    return {
        "chain_height": store.height(),
        "block_count": store.block_count(),
        "metadata_count": store.metadata_count(),
        "tip_hash": store.tip_hash(),
        "mean_block_interval_s": mean_interval,
        "blocks_mined": {
            str(node): count for node, count in sorted(store.miner_distribution().items())
        },
        "accounts": len(store.accounts()),
    }


def write_store_chain_json(store, path: PathLike) -> Path:
    """Write :func:`store_chain_record` as JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(store_chain_record(store), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def write_csv(records: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write records as CSV (scalar fields only; dicts are JSON-encoded)."""
    if not records:
        raise ValueError("no records to write")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: List[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            row = {
                key: json.dumps(value) if isinstance(value, (dict, list)) else value
                for key, value in record.items()
            }
            writer.writerow(row)
    return target
