"""Metrics: Gini fairness, summary statistics, run-level collection, tables."""

from repro.metrics.ascii_plot import bar_chart, series_plot, sparkline
from repro.metrics.collector import RunMetrics, collect_run_metrics
from repro.metrics.export import metrics_to_record, write_csv, write_json
from repro.metrics.gini import gini_coefficient, gini_pairwise, jain_index
from repro.metrics.report import print_table, render_table
from repro.metrics.stats import Summary, mean_or_nan, percent_change, ratio

__all__ = [
    "gini_coefficient",
    "gini_pairwise",
    "jain_index",
    "sparkline",
    "bar_chart",
    "series_plot",
    "metrics_to_record",
    "write_json",
    "write_csv",
    "Summary",
    "mean_or_nan",
    "ratio",
    "percent_change",
    "RunMetrics",
    "collect_run_metrics",
    "render_table",
    "print_table",
]
