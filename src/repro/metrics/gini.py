"""The Gini coefficient — the paper's storage-fairness metric.

Footnote 3 of the paper:  ``Gini = Σ_i Σ_j |t_i − t_j| / (2 Σ_i Σ_j t_j)``,
where ``t_i`` is node *i*'s storage consumption.  0 means perfectly equal
storage; the paper reports < 0.15 across all Fig. 4(b) settings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def gini_coefficient(values: Sequence[float]) -> float:
    """Compute the Gini coefficient of ``values``.

    Uses the paper's mean-absolute-difference definition, computed in
    O(n log n) via the sorted-weights identity.  All-zero input is defined
    as 0 (perfect equality of nothing).  Negative values are rejected —
    storage consumption cannot be negative.
    """
    data = np.asarray(values, dtype=float)
    if data.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if data.size == 0:
        raise ValueError("need at least one value")
    if np.any(data < 0):
        raise ValueError("Gini is undefined for negative values")
    total = data.sum()
    if total == 0:
        return 0.0
    n = data.size
    sorted_values = np.sort(data)
    # Σ_i Σ_j |x_i − x_j| = 2 Σ_i (2i − n + 1) x_(i)  with i zero-based.
    ranks = 2 * np.arange(1, n + 1) - n - 1
    mean_abs_diff_sum = 2.0 * float(np.dot(ranks, sorted_values))
    # Clamp: float cancellation can yield a tiny negative for equal inputs.
    return max(0.0, mean_abs_diff_sum / (2.0 * n * total))


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1].

    A complementary fairness measure to the paper's Gini: 1 means perfectly
    equal, 1/n means one node carries everything.  Used by the marketplace
    example to cross-check the Gini story.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    if np.any(data < 0):
        raise ValueError("Jain's index is undefined for negative values")
    peak = float(data.max())
    if peak == 0:
        return 1.0  # all zeros: perfectly equal
    # Normalise by the peak first (the index is scale-invariant) so that
    # squaring subnormal values cannot underflow to zero.
    scaled = data / peak
    sum_squares = float((scaled**2).sum())
    return float(scaled.sum()) ** 2 / (data.size * sum_squares)


def gini_pairwise(values: Sequence[float]) -> float:
    """The literal O(n²) double-sum from the paper's footnote.

    Kept as the reference implementation; the property-based tests assert
    it matches :func:`gini_coefficient` exactly.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    if np.any(data < 0):
        raise ValueError("Gini is undefined for negative values")
    total = data.sum()
    if total == 0:
        return 0.0
    diffs = np.abs(data[:, None] - data[None, :]).sum()
    return float(diffs / (2.0 * data.size * total))
