"""Run-level metric collection.

:class:`RunMetrics` gathers, from a finished simulation, the quantities the
paper's figures report: average per-node transmission (Fig. 4a), the storage
Gini coefficient (Fig. 4b), average data-delivery time (Fig. 4c/5a),
transmission overhead by category (Fig. 5b), mining statistics (block
intervals, per-miner counts), and recovery latencies (the recent-block
ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.gini import gini_coefficient
from repro.metrics.stats import Summary, mean_or_nan
from repro.simnet.trace import TransmissionTrace


@dataclass
class RunMetrics:
    """Aggregated outcomes of one simulation run."""

    node_count: int
    duration_seconds: float
    #: Per-node total (tx+rx) bytes.
    per_node_bytes: List[int]
    #: Bytes by traffic category.
    category_bytes: Dict[str, int]
    #: Per-node used storage slots at the end of the run.
    storage_used: List[int]
    #: All successful data-delivery times, seconds.
    delivery_times: List[float]
    #: Count of failed data requests.
    failed_requests: int
    #: Inter-block times of the final chain, seconds.
    block_intervals: List[float]
    #: Blocks mined per node id.
    blocks_mined: Dict[int, int]
    #: Completed missing-block recovery durations, seconds.
    recovery_durations: List[float] = field(default_factory=list)
    #: Total data items produced.
    data_items_produced: int = 0
    #: Tip height of the reference chain; ``None`` falls back to the interval
    #: count, which is only correct when every block body is still retained.
    tip_height: int | None = None

    # -- the paper's headline quantities ------------------------------------------

    def average_node_megabytes(self) -> float:
        """Fig. 4(a): average transmission per node, in MB."""
        if not self.per_node_bytes:
            return 0.0
        return sum(self.per_node_bytes) / len(self.per_node_bytes) / 1e6

    def total_megabytes(self) -> float:
        return sum(self.category_bytes.values()) / 1e6

    def storage_gini(self) -> float:
        """Fig. 4(b): the Gini coefficient of per-node storage use."""
        return gini_coefficient(self.storage_used)

    def average_delivery_time(self) -> float:
        """Fig. 4(c) / Fig. 5(a): mean data-delivery time, seconds."""
        return mean_or_nan(self.delivery_times)

    def delivery_summary(self) -> Summary:
        return Summary.of(self.delivery_times)

    def mean_block_interval(self) -> float:
        return mean_or_nan(self.block_intervals)

    def mean_recovery_duration(self) -> float:
        return mean_or_nan(self.recovery_durations)

    def chain_height(self) -> int:
        if self.tip_height is not None:
            return self.tip_height
        return len(self.block_intervals)

    def mining_distribution(self) -> List[int]:
        """Blocks mined per node, ordered by node id."""
        return [self.blocks_mined.get(node, 0) for node in range(self.node_count)]


def collect_run_metrics(
    node_count: int,
    duration_seconds: float,
    trace: TransmissionTrace,
    storage_used: Sequence[int],
    delivery_times: Sequence[float],
    failed_requests: int,
    block_timestamps: Sequence[float],
    blocks_mined: Dict[int, int],
    recovery_durations: Sequence[float] = (),
    data_items_produced: int = 0,
    tip_height: int | None = None,
) -> RunMetrics:
    """Assemble a :class:`RunMetrics` from raw run outputs."""
    timestamps = list(block_timestamps)
    intervals = [
        later - earlier for earlier, later in zip(timestamps, timestamps[1:])
    ]
    return RunMetrics(
        node_count=node_count,
        duration_seconds=duration_seconds,
        per_node_bytes=trace.per_node_bytes(range(node_count)),
        category_bytes=trace.categories(),
        storage_used=list(storage_used),
        delivery_times=list(delivery_times),
        failed_requests=failed_requests,
        block_intervals=intervals,
        blocks_mined=dict(blocks_mined),
        recovery_durations=list(recovery_durations),
        data_items_produced=data_items_produced,
        tip_height=tip_height,
    )
