"""Observability: span tracing, subsystem metrics, Perfetto export.

Zero-dependency instrumentation for the whole simulator (DESIGN.md §8):

* :mod:`repro.obs.tracer` — nested :class:`Span` s keyed on wall time
  *and* simulated time; :class:`NullTracer` is the disabled default.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges, and mergeable fixed-bucket log2 histograms.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSONL span export and
  the per-subsystem summary table.
* :mod:`repro.obs.runtime` — the process-global on/off switch and the
  one-branch hook helpers (:func:`span`, :func:`add`, :func:`observe`,
  :func:`gauge_set`) the hot paths call.
* :mod:`repro.obs.timeline` — the sim-clock-driven protocol-state
  sampler (DESIGN.md §9).
* :mod:`repro.obs.monitors` — online health monitors over the timeline
  with a machine-readable end-of-run verdict.
* :mod:`repro.obs.report` / :mod:`repro.obs.diff` — terminal + HTML run
  reports and threshold-based two-run comparison.

CLI faces: ``repro run --obs DIR``, ``repro report DIR``,
``repro compare DIR_A DIR_B``, and the ``repro trace`` verbs.
"""

from repro.obs.diff import (
    RULES,
    Comparison,
    ComparisonResult,
    MetricRule,
    compare_runs,
    render_comparison,
)
from repro.obs.export import (
    read_trace_events,
    span_to_event,
    summarize_events,
    write_perfetto_jsonl,
    write_strict_json,
)
from repro.obs.live import (
    MERGED_TRACE_NAME,
    PROFILE_NAME,
    STREAM_NAME,
    SamplingProfiler,
    TelemetryServer,
    TelemetryStream,
    fleet_rollup,
    load_top_view,
    merge_trace_files,
    read_folded,
    read_stream,
    render_flamegraph_svg,
    render_prometheus,
    render_top,
    top_functions,
    write_flamegraph,
    write_folded,
)
from repro.obs.metrics import (
    BUCKET_COUNT,
    MAX_EXP,
    MIN_EXP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_lower_edge,
    merge_snapshots,
    percentile,
    summarize,
)
from repro.obs.monitors import (
    EVENTS_NAME,
    SEVERITIES,
    VERDICT_NAME,
    ChainStallMonitor,
    CoverageMonitor,
    FairnessMonitor,
    IntervalDriftMonitor,
    LeaderFlapMonitor,
    Monitor,
    MonitorEvent,
    MonitorSuite,
    StakeConcentrationMonitor,
    StorageUnboundedMonitor,
    read_events,
    read_verdict,
    severity_rank,
)
from repro.obs.report import (
    REPORT_NAME,
    load_run,
    render_html_report,
    render_terminal_report,
    write_html_report,
)
from repro.obs.runtime import (
    METRICS_NAME,
    TRACE_NAME,
    ObsSession,
    active_session,
    add,
    attach_runtime,
    current_trace_context,
    disable,
    enable,
    gauge_set,
    is_enabled,
    observe,
    remote_span,
    set_sim_clock,
    span,
    timeline_tick,
    traced_solver,
)
from repro.obs.timeline import (
    TIMELINE_NAME,
    RuntimeProbe,
    Timeline,
    read_timeline,
)
from repro.obs.tracer import NULL_SPAN, NullTracer, Span, TraceContext, Tracer

__all__ = [
    "MERGED_TRACE_NAME",
    "PROFILE_NAME",
    "STREAM_NAME",
    "SamplingProfiler",
    "TelemetryServer",
    "TelemetryStream",
    "TraceContext",
    "current_trace_context",
    "fleet_rollup",
    "load_top_view",
    "merge_trace_files",
    "read_folded",
    "read_stream",
    "remote_span",
    "render_flamegraph_svg",
    "render_prometheus",
    "render_top",
    "top_functions",
    "write_flamegraph",
    "write_folded",
    "read_trace_events",
    "span_to_event",
    "summarize_events",
    "write_perfetto_jsonl",
    "write_strict_json",
    "BUCKET_COUNT",
    "MAX_EXP",
    "MIN_EXP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_index",
    "bucket_lower_edge",
    "merge_snapshots",
    "percentile",
    "summarize",
    "METRICS_NAME",
    "TRACE_NAME",
    "ObsSession",
    "active_session",
    "add",
    "attach_runtime",
    "disable",
    "enable",
    "gauge_set",
    "is_enabled",
    "observe",
    "set_sim_clock",
    "span",
    "timeline_tick",
    "traced_solver",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "TIMELINE_NAME",
    "RuntimeProbe",
    "Timeline",
    "read_timeline",
    "EVENTS_NAME",
    "SEVERITIES",
    "VERDICT_NAME",
    "ChainStallMonitor",
    "CoverageMonitor",
    "FairnessMonitor",
    "IntervalDriftMonitor",
    "LeaderFlapMonitor",
    "Monitor",
    "MonitorEvent",
    "MonitorSuite",
    "StakeConcentrationMonitor",
    "StorageUnboundedMonitor",
    "read_events",
    "read_verdict",
    "severity_rank",
    "REPORT_NAME",
    "load_run",
    "render_html_report",
    "render_terminal_report",
    "write_html_report",
    "RULES",
    "Comparison",
    "ComparisonResult",
    "MetricRule",
    "compare_runs",
    "render_comparison",
]
