"""Observability: span tracing, subsystem metrics, Perfetto export.

Zero-dependency instrumentation for the whole simulator (DESIGN.md §8):

* :mod:`repro.obs.tracer` — nested :class:`Span` s keyed on wall time
  *and* simulated time; :class:`NullTracer` is the disabled default.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges, and mergeable fixed-bucket log2 histograms.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSONL span export and
  the per-subsystem summary table.
* :mod:`repro.obs.runtime` — the process-global on/off switch and the
  one-branch hook helpers (:func:`span`, :func:`add`, :func:`observe`,
  :func:`gauge_set`) the hot paths call.

CLI faces: ``repro run --obs DIR`` and the ``repro trace`` verbs.
"""

from repro.obs.export import (
    read_trace_events,
    span_to_event,
    summarize_events,
    write_perfetto_jsonl,
    write_strict_json,
)
from repro.obs.metrics import (
    BUCKET_COUNT,
    MAX_EXP,
    MIN_EXP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_lower_edge,
    merge_snapshots,
)
from repro.obs.runtime import (
    METRICS_NAME,
    TRACE_NAME,
    ObsSession,
    active_session,
    add,
    disable,
    enable,
    gauge_set,
    is_enabled,
    observe,
    set_sim_clock,
    span,
    traced_solver,
)
from repro.obs.tracer import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "read_trace_events",
    "span_to_event",
    "summarize_events",
    "write_perfetto_jsonl",
    "write_strict_json",
    "BUCKET_COUNT",
    "MAX_EXP",
    "MIN_EXP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_index",
    "bucket_lower_edge",
    "merge_snapshots",
    "METRICS_NAME",
    "TRACE_NAME",
    "ObsSession",
    "active_session",
    "add",
    "disable",
    "enable",
    "gauge_set",
    "is_enabled",
    "observe",
    "set_sim_clock",
    "span",
    "traced_solver",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
]
