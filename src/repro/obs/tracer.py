"""Nested span tracing on two clocks: wall time and simulated time.

A :class:`Span` records where a run spent its time.  Every span carries:

* **wall time** (``time.perf_counter_ns``) — where the *process* spends
  real time: solver inner loops, SQLite commits, ``os.fsync``;
* **sim time** (the event engine's clock, when one is attached) — where
  the *simulated system* spends protocol time: election rounds, block
  races, recovery windows.

Spans nest: :meth:`Tracer.span` is a context manager, and the tracer
maintains an explicit stack so each finished span knows its parent.  The
stack discipline is purely lexical (``with`` blocks), which is exactly how
the single-threaded event loop executes — there is no cross-event context
propagation to get wrong.

The disabled path is :class:`NullTracer`: its :meth:`~NullTracer.span`
returns one shared no-op context manager, so an instrumented hot path
pays a single dynamic dispatch and no allocation when tracing is off.
Determinism contract: a tracer only *reads* simulation state (the clock);
it never touches RNGs or protocol state, so enabling it cannot perturb a
run — ``tests/integration/test_obs_overhead.py`` proves the digests match.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class Span:
    """One finished (or in-flight) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: Wall clock, integer nanoseconds from ``time.perf_counter_ns``.
    wall_start_ns: int
    wall_end_ns: Optional[int] = None
    #: Simulation clock, seconds; None when no sim clock was attached.
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration_ns(self) -> int:
        if self.wall_end_ns is None:
            return 0
        return self.wall_end_ns - self.wall_start_ns

    @property
    def sim_duration(self) -> float:
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start


class _SpanHandle:
    """Context manager that closes one span on exit.

    Also the write surface for attributes discovered mid-span
    (``handle.set(cost=4.2)``), e.g. a solver recording its solution cost.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attrs: Any) -> "_SpanHandle":
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self._span)


class _NullSpanHandle:
    """The shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects nested spans; bounded, in-memory, export-ready.

    Parameters
    ----------
    sim_clock:
        Optional zero-argument callable returning the current simulated
        time in seconds (typically ``lambda: engine.now`` — attached by
        the runner, never pickled).
    max_spans:
        Hard cap on retained finished spans; once reached, further spans
        are counted (:attr:`dropped_spans`) but not stored, so a very long
        run cannot exhaust memory.  The cap is generous: an hour-long
        20-node run emits on the order of 10^5 spans.
    """

    enabled = True

    def __init__(
        self,
        sim_clock: Optional[Callable[[], float]] = None,
        max_spans: int = 2_000_000,
        wall_clock: Callable[[], int] = time.perf_counter_ns,
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.sim_clock = sim_clock
        self.max_spans = max_spans
        self._wall_clock = wall_clock
        self._next_id = 1
        self._stack: List[Span] = []
        self.finished: List[Span] = []
        self.dropped_spans = 0

    def span(self, name: str, category: str = "", **attrs: Any) -> _SpanHandle:
        """Open a nested span; close it by exiting the returned context."""
        sim_now = self.sim_clock() if self.sim_clock is not None else None
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            wall_start_ns=self._wall_clock(),
            sim_start=sim_now,
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.wall_end_ns = self._wall_clock()
        if self.sim_clock is not None:
            span.sim_end = self.sim_clock()
        # Close abandoned children too (an exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if len(self.finished) < self.max_spans:
            self.finished.append(span)
        else:
            self.dropped_spans += 1

    @property
    def depth(self) -> int:
        """Current nesting depth (open spans)."""
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
        self.finished.clear()
        self.dropped_spans = 0


class NullTracer:
    """The disabled tracer: every hook collapses to one cheap call."""

    enabled = False
    sim_clock = None

    def span(self, name: str, category: str = "", **attrs: Any) -> _NullSpanHandle:
        return NULL_SPAN

    @property
    def finished(self) -> List[Span]:
        return []

    @property
    def depth(self) -> int:
        return 0

    def clear(self) -> None:
        return None
