"""Nested span tracing on two clocks: wall time and simulated time.

A :class:`Span` records where a run spent its time.  Every span carries:

* **wall time** (``time.perf_counter_ns``) — where the *process* spends
  real time: solver inner loops, SQLite commits, ``os.fsync``;
* **sim time** (the event engine's clock, when one is attached) — where
  the *simulated system* spends protocol time: election rounds, block
  races, recovery windows.

Spans nest: :meth:`Tracer.span` is a context manager, and the tracer
maintains an explicit stack so each finished span knows its parent.  The
stack discipline is purely lexical (``with`` blocks), which is exactly how
the single-threaded event loop executes — there is no cross-event context
propagation to get wrong.

The disabled path is :class:`NullTracer`: its :meth:`~NullTracer.span`
returns one shared no-op context manager, so an instrumented hot path
pays a single dynamic dispatch and no allocation when tracing is off.
Determinism contract: a tracer only *reads* simulation state (the clock);
it never touches RNGs or protocol state, so enabling it cannot perturb a
run — ``tests/integration/test_obs_overhead.py`` proves the digests match.

Cross-process causality
-----------------------

Every root span is assigned a **trace id** — ``"{origin}:{span_id}"``,
globally unique because each process picks a distinct origin (``n{id}``
for live nodes) — and children inherit it, so one trace is one causal
unit of work.  :meth:`Tracer.current_context` snapshots the innermost
open span as a :class:`TraceContext`; the net layer serialises it into
the wire envelope (``"tc"``) and the receiver re-opens the trace with
:meth:`Tracer.remote_span`, recording the sender's span as
``remote_parent``/``remote_origin``.  ``repro trace merge --trace-out``
stitches the per-process files back into one multi-process trace by
trace id.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of one open span (what crosses a socket).

    ``sent_at`` is the sender's *logical* clock at serialisation time —
    the third leg of the wire trace-context alongside the trace id and
    the parent span id.
    """

    trace_id: str
    span_id: int
    origin: str
    sent_at: float = 0.0

    def to_wire(self) -> List[Any]:
        """Compact JSON-array form carried in the net envelope."""
        return [self.trace_id, self.span_id, self.origin, self.sent_at]

    @classmethod
    def from_wire(cls, value: Any) -> Optional["TraceContext"]:
        """Parse the envelope form; None for anything malformed (a peer's
        trace context is advisory — never worth rejecting a frame over)."""
        if (
            not isinstance(value, (list, tuple))
            or len(value) != 4
            or not isinstance(value[0], str)
            or isinstance(value[1], bool)
            or not isinstance(value[1], int)
            or not isinstance(value[2], str)
            or not isinstance(value[3], (int, float))
        ):
            return None
        return cls(
            trace_id=value[0],
            span_id=value[1],
            origin=value[2],
            sent_at=float(value[3]),
        )


@dataclass
class Span:
    """One finished (or in-flight) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    #: Wall clock, integer nanoseconds from ``time.perf_counter_ns``.
    wall_start_ns: int
    wall_end_ns: Optional[int] = None
    #: Simulation clock, seconds; None when no sim clock was attached.
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Causal trace this span belongs to (``"{origin}:{root_span_id}"``).
    trace_id: Optional[str] = None
    #: Sender-side parent span, when this span was re-parented off a
    #: :class:`TraceContext` received over the wire.
    remote_parent: Optional[int] = None
    remote_origin: Optional[str] = None

    @property
    def wall_duration_ns(self) -> int:
        if self.wall_end_ns is None:
            return 0
        return self.wall_end_ns - self.wall_start_ns

    @property
    def sim_duration(self) -> float:
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start


class _SpanHandle:
    """Context manager that closes one span on exit.

    Also the write surface for attributes discovered mid-span
    (``handle.set(cost=4.2)``), e.g. a solver recording its solution cost.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attrs: Any) -> "_SpanHandle":
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self._span)


class _NullSpanHandle:
    """The shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects nested spans; bounded, in-memory, export-ready.

    Parameters
    ----------
    sim_clock:
        Optional zero-argument callable returning the current simulated
        time in seconds (typically ``lambda: engine.now`` — attached by
        the runner, never pickled).
    max_spans:
        Hard cap on retained finished spans; once reached, further spans
        are counted (:attr:`dropped_spans`) but not stored, so a very long
        run cannot exhaust memory.  The cap is generous: an hour-long
        20-node run emits on the order of 10^5 spans.
    origin:
        Short process identity prefixed onto every root span's trace id
        (live nodes use ``n{id}``); keeps trace ids globally unique when
        per-process trace files are merged.
    """

    enabled = True

    def __init__(
        self,
        sim_clock: Optional[Callable[[], float]] = None,
        max_spans: int = 2_000_000,
        wall_clock: Callable[[], int] = time.perf_counter_ns,
        origin: str = "n0",
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.sim_clock = sim_clock
        self.max_spans = max_spans
        self.origin = origin
        self._wall_clock = wall_clock
        self._next_id = 1
        self._stack: List[Span] = []
        self.finished: List[Span] = []
        self.dropped_spans = 0

    def span(self, name: str, category: str = "", **attrs: Any) -> _SpanHandle:
        """Open a nested span; close it by exiting the returned context."""
        sim_now = self.sim_clock() if self.sim_clock is not None else None
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            wall_start_ns=self._wall_clock(),
            sim_start=sim_now,
            attrs=attrs,
            trace_id=(
                parent.trace_id
                if parent is not None
                else f"{self.origin}:{self._next_id}"
            ),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def remote_span(
        self, name: str, category: str, ctx: TraceContext, **attrs: Any
    ) -> _SpanHandle:
        """Open a span continuing a trace received from another process.

        The span joins ``ctx``'s trace and records the sender's span id
        and origin, so a merged multi-process trace can re-parent it
        under the exact send-side span.  Lexical nesting still applies —
        any locally open span stays the wall-clock parent.
        """
        handle = self.span(name, category, **attrs)
        span = handle.span
        span.trace_id = ctx.trace_id
        span.remote_parent = ctx.span_id
        span.remote_origin = ctx.origin
        return handle

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span as a :class:`TraceContext` (or None).

        ``sent_at`` is stamped with the sim clock when one is attached —
        the logical instant the context was captured for the wire.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        sim_now = self.sim_clock() if self.sim_clock is not None else None
        return TraceContext(
            trace_id=top.trace_id or f"{self.origin}:{top.span_id}",
            span_id=top.span_id,
            origin=self.origin,
            sent_at=sim_now if sim_now is not None else 0.0,
        )

    def _finish(self, span: Span) -> None:
        span.wall_end_ns = self._wall_clock()
        if self.sim_clock is not None:
            span.sim_end = self.sim_clock()
        # Close abandoned children too (an exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if len(self.finished) < self.max_spans:
            self.finished.append(span)
        else:
            self.dropped_spans += 1

    @property
    def depth(self) -> int:
        """Current nesting depth (open spans)."""
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
        self.finished.clear()
        self.dropped_spans = 0


class NullTracer:
    """The disabled tracer: every hook collapses to one cheap call."""

    enabled = False
    sim_clock = None
    origin = ""
    dropped_spans = 0

    def span(self, name: str, category: str = "", **attrs: Any) -> _NullSpanHandle:
        return NULL_SPAN

    def remote_span(
        self, name: str, category: str, ctx: TraceContext, **attrs: Any
    ) -> _NullSpanHandle:
        return NULL_SPAN

    def current_context(self) -> Optional[TraceContext]:
        return None

    @property
    def finished(self) -> List[Span]:
        return []

    @property
    def depth(self) -> int:
        return 0

    def clear(self) -> None:
        return None
