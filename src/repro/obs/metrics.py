"""Counters, gauges, and mergeable log2 histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — a monotonically increasing integer (events, attempts,
  bytes);
* :class:`Gauge` — a last-value-wins float that also tracks its extrema
  (queue depth, cache size);
* :class:`Histogram` — a fixed-bucket log2 histogram.  Bucket ``k`` counts
  values in ``[2^(k+MIN_EXP), 2^(k+MIN_EXP+1))``; the first and last
  buckets absorb underflow and overflow.  Because the bucket edges are
  *fixed* (not adaptive), two histograms — and therefore two registry
  snapshots from different runs or shards — merge by plain element-wise
  addition, which the Hypothesis merge property in the test-suite pins
  down.

Everything serialises to plain JSON (:meth:`MetricsRegistry.snapshot`)
and back (:func:`merge_snapshots`), with no dependencies beyond the
standard library.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: Exponent of the lower edge of the first regular bucket: 2^-20 ≈ 1 µs
#: when values are seconds, which comfortably brackets fsync latencies.
MIN_EXP = -20

#: Exponent of the upper edge of the last regular bucket: 2^64 covers the
#: full range of PoS hits (h_i < M = 2^64).
MAX_EXP = 64

#: Regular bucket count; index 0 additionally absorbs values < 2^MIN_EXP
#: (including zero and negatives) and the last bucket absorbs ≥ 2^MAX_EXP.
BUCKET_COUNT = MAX_EXP - MIN_EXP


def bucket_index(value: Union[int, float]) -> int:
    """The fixed log2 bucket a value falls into.

    ``2^e`` lands in the bucket whose lower edge is ``2^e`` exactly; the
    edges are therefore half-open ``[2^e, 2^(e+1))`` intervals.
    """
    if value <= 0:
        return 0
    if isinstance(value, int):
        exponent = value.bit_length() - 1  # exact for arbitrary-size ints
    else:
        mantissa, exp = math.frexp(value)  # value = mantissa * 2^exp, mantissa in [0.5, 1)
        exponent = exp - 1
    return max(0, min(BUCKET_COUNT - 1, exponent - MIN_EXP))


def bucket_lower_edge(index: int) -> float:
    """Lower edge of bucket ``index`` (0 ≤ index < BUCKET_COUNT)."""
    if not 0 <= index < BUCKET_COUNT:
        raise IndexError(f"bucket index {index} out of range")
    return 2.0 ** (index + MIN_EXP)


def percentile(values: Iterable[float], q: float) -> float:
    """Exact percentile ``q`` ∈ [0, 100] with linear interpolation.

    Matches ``numpy.percentile``'s default (``method="linear"``) so the
    experiment-harness summaries (:class:`repro.metrics.stats.Summary`)
    can delegate here instead of keeping a parallel implementation.
    NaN for an empty sample.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    data = sorted(float(v) for v in values)
    if not data:
        return math.nan
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lower = math.floor(rank)
    upper = min(lower + 1, len(data) - 1)
    fraction = rank - lower
    return data[lower] + fraction * (data[upper] - data[lower])


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Exact five-number-ish summary of a sample (population std).

    The single source of summary math for both the observability layer and
    the experiment harness.  All fields are NaN when the sample is empty.
    """
    data = [float(v) for v in values]
    if not data:
        nan = math.nan
        return {
            "count": 0, "mean": nan, "std": nan, "min": nan,
            "median": nan, "p95": nan, "max": nan,
        }
    mean = math.fsum(data) / len(data)
    variance = math.fsum((v - mean) ** 2 for v in data) / len(data)
    return {
        "count": len(data),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": min(data),
        "median": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "max": max(data),
    }


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value instrument that remembers its extrema."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.min = min(self.min, self.value)
        self.max = max(self.max, self.value)
        self.updates += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "value": self.value,
            "min": None if self.updates == 0 else self.min,
            "max": None if self.updates == 0 else self.max,
            "updates": self.updates,
        }


class Histogram:
    """A fixed-bucket log2 histogram with exact count/sum/min/max."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * BUCKET_COUNT
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: Union[int, float]) -> None:
        self.buckets[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        value_f = float(value)
        self.min = min(self.min, value_f)
        self.max = max(self.max, value_f)

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate quantile ``q`` ∈ [0, 1] from the log2 buckets.

        Linear interpolation *within* the winning bucket — exact to within
        one bucket width (a factor of 2), which is all a fixed-edge
        histogram can promise.  NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        seen = 0
        for index, count in enumerate(self.buckets):
            if count == 0:
                continue
            if seen + count > rank:
                lower = bucket_lower_edge(index)
                upper = lower * 2.0
                within = (rank - seen) / count
                estimate = lower + within * (upper - lower)
                # The exact extrema beat any bucket estimate at the ends.
                return min(max(estimate, self.min), self.max)
            seen += count
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (fixed edges make this exact)."""
        for index, count in enumerate(other.buckets):
            self.buckets[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        # Sparse encoding: only non-empty buckets, keyed by index.
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {
                str(index): count
                for index, count in enumerate(self.buckets)
                if count
            },
        }


_INSTRUMENT_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A flat namespace of named instruments, get-or-create on first use.

    Names are dotted ``subsystem.instrument`` strings (``pos.hits``,
    ``persist.fsync_seconds``).  Asking for an existing name with a
    different instrument type raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump of every instrument."""
        return {
            "schema": "repro.obs.metrics/v1",
            "instruments": {
                name: instrument.to_dict()
                for name, instrument in sorted(self._instruments.items())
            },
        }

    def clear(self) -> None:
        self._instruments.clear()

    def write_json(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def _merge_instrument(
    merged: Dict[str, Any], incoming: Dict[str, Any], name: str
) -> Dict[str, Any]:
    kind = incoming.get("type")
    if merged.get("type") != kind:
        raise ValueError(
            f"cannot merge metric {name!r}: {merged.get('type')} vs {kind}"
        )
    if kind == "counter":
        return {"type": "counter", "value": merged["value"] + incoming["value"]}
    if kind == "gauge":
        # Last-writer-wins on value is meaningless across shards; keep the
        # extrema and total update count, and the max of the final values.
        bounds = [
            b for b in (merged["min"], incoming["min"]) if b is not None
        ]
        tops = [b for b in (merged["max"], incoming["max"]) if b is not None]
        return {
            "type": "gauge",
            "value": max(merged["value"], incoming["value"]),
            "min": min(bounds) if bounds else None,
            "max": max(tops) if tops else None,
            "updates": merged["updates"] + incoming["updates"],
        }
    if kind == "histogram":
        buckets = dict(merged["buckets"])
        for index, count in incoming["buckets"].items():
            buckets[index] = buckets.get(index, 0) + count
        mins = [b for b in (merged["min"], incoming["min"]) if b is not None]
        maxes = [b for b in (merged["max"], incoming["max"]) if b is not None]
        return {
            "type": "histogram",
            "count": merged["count"] + incoming["count"],
            "sum": merged["sum"] + incoming["sum"],
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "buckets": buckets,
        }
    raise ValueError(f"unknown instrument type {kind!r} in metric {name!r}")


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots element-wise (shards, resumed segments).

    The result of merging per-shard snapshots equals the snapshot a single
    registry would have produced had it seen every observation — the
    property test in ``tests/property/test_prop_obs_merge.py`` holds the
    implementation to exactly that.
    """
    merged: Dict[str, Any] = {}
    schema: Optional[str] = None
    for snapshot in snapshots:
        schema = snapshot.get("schema", schema)
        for name, instrument in snapshot.get("instruments", {}).items():
            if name not in merged:
                merged[name] = json.loads(json.dumps(instrument))  # deep copy
            else:
                merged[name] = _merge_instrument(merged[name], instrument, name)
    return {"schema": schema or "repro.obs.metrics/v1", "instruments": merged}
