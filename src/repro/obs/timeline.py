"""Sim-clock-driven timeline: periodic samples of protocol state.

The span/metric layer (PR 2) records *what the code did*; the timeline
records *what the protocol looked like* while it did it — one sample per
``interval`` seconds of simulated time, each a flat JSON-ready dict of
the quantities the paper's own analysis turns on:

* chain height and the EWMA of inter-block intervals against the target
  ``t0`` (Eq. 14 tunes the amendment ``B`` so blocks land every ``t0``);
* fairness-degree pressure (Eq. 1): the largest finite
  ``f_i = W(i)/(W_tol(i) − W(i))``, the smallest remaining storage
  margin, and how many nodes are outright saturated;
* the storage Gini coefficient (Fig. 6's fairness metric);
* stake share of the top-k token holders (PoS concentration);
* recent-block coverage — the fraction of nodes holding each of the
  newest blocks (Section IV-C's pervasiveness goal);
* engine queue depth, plus Raft term / leader-change counts when the
  Raft hooks have populated the metrics registry.

Sampling is driven from :func:`repro.obs.runtime.timeline_tick` inside
the engine's existing observability branch — **never** from events on the
engine queue.  Scheduling our own events would perturb event sequence
numbers and leak unpicklable callbacks into durable-run snapshots; a
read-only probe invoked between events cannot do either, which is what
keeps the digest-identity guarantee (obs on == obs off) intact.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.metrics.gini import gini_coefficient

PathLike = Union[str, Path]

TIMELINE_NAME = "timeline.jsonl"
TIMELINE_SCHEMA = "repro.obs.timeline/v1"

#: Smoothing factor for the inter-block-interval EWMA.
EWMA_ALPHA = 0.3

#: How many token holders count as "the top" for stake concentration.
STAKE_TOP_K = 3

#: How many of the newest blocks enter the coverage average.
COVERAGE_WINDOW = 5


def _jsonable(value: Any) -> Any:
    """Strict-JSON scalar: non-finite floats become None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class RuntimeProbe:
    """Read-only view over a live cluster, producing timeline samples.

    The probe keeps a cursor into the reference (longest) chain so the
    interval EWMA walks each block exactly once; a reorg that shortens
    the reference chain simply rewinds the cursor.  Nothing here mutates
    simulation state or consumes simulation randomness.
    """

    def __init__(self, cluster: Any):
        self._cluster = cluster
        self._cursor_height = 0
        self._interval_ewma = math.nan
        self._intervals_seen = 0

    def _update_interval_ewma(self, chain: Any) -> None:
        height = chain.height
        if self._cursor_height > height:  # reorg rewound the reference chain
            self._cursor_height = height
            return
        # Pruning may have dropped bodies the cursor hasn't walked yet; the
        # EWMA then simply skips the cold gap rather than faulting on them.
        floor = getattr(chain, "first_retained_index", 0)
        if self._cursor_height < floor:
            self._cursor_height = floor
        for index in range(self._cursor_height + 1, height + 1):
            interval = (
                chain.block_at(index).timestamp
                - chain.block_at(index - 1).timestamp
            )
            if self._intervals_seen == 0:
                self._interval_ewma = interval
            else:
                self._interval_ewma = (
                    EWMA_ALPHA * interval
                    + (1.0 - EWMA_ALPHA) * self._interval_ewma
                )
            self._intervals_seen += 1
        self._cursor_height = height

    def _fairness(self, usage: Dict[int, int], capacity: float) -> Tuple[float, float, int]:
        """(max finite f_i, min margin, saturated-node count) per Eq. 1.

        ``used_slots`` can exceed the nominal capacity (chain-assigned
        storage is not admission-controlled), so W is clamped to W_tol
        and over-full nodes count as saturated rather than producing a
        negative denominator.
        """
        fairness_max = math.nan
        margin_min = math.inf
        saturated = 0
        for used in usage.values():
            clamped = min(float(used), capacity)
            margin = capacity - clamped
            margin_min = min(margin_min, margin)
            if margin <= 0:
                saturated += 1
                continue
            fairness = clamped / margin
            if math.isnan(fairness_max) or fairness > fairness_max:
                fairness_max = fairness
        if not usage:
            margin_min = math.nan
        return fairness_max, margin_min, saturated

    def _stake_top_share(self, state: Any) -> float:
        tokens = sorted(
            (state.tokens(node) for node in state.node_ids), reverse=True
        )
        total = sum(tokens)
        if total <= 0:
            return math.nan
        return sum(tokens[:STAKE_TOP_K]) / total

    def _chaos_fields(self) -> Dict[str, Any]:
        """Cluster-wide admission-control totals (0 on honest runs).

        Works against both fabrics: sim clusters expose ``nodes`` as a
        list of :class:`EdgeNode`, the live harness as a dict of
        ``LiveNode`` wrappers with a ``.node`` attribute.
        """
        nodes = getattr(self._cluster, "nodes", None)
        if nodes is None:
            return {"chaos_rejections": None, "chaos_quarantined": None}
        members = nodes.values() if isinstance(nodes, dict) else nodes
        rejections = 0
        quarantined = 0
        for member in members:
            node = getattr(member, "node", member)
            admission = getattr(node, "admission", None)
            if admission is None:
                continue
            rejections += admission.total_rejections
            quarantined += len(admission.quarantined)
        return {"chaos_rejections": rejections, "chaos_quarantined": quarantined}

    def _mempool_depth(self) -> Optional[int]:
        """Deepest per-node mempool (both fabrics; None when unknown)."""
        nodes = getattr(self._cluster, "nodes", None)
        if nodes is None:
            return None
        members = nodes.values() if isinstance(nodes, dict) else nodes
        depths = [
            len(getattr(member, "node", member).mempool) for member in members
        ]
        return max(depths) if depths else None

    def _lifecycle_fields(self, chain: Any, config: Any) -> Dict[str, Any]:
        """Hot-footprint fields (None when the run has no lifecycle spec).

        ``hot_blocks`` is the in-memory body count of the reference chain;
        ``hot_bound`` the worst-case bound :func:`hot_bound_blocks` derives
        from the spec.  The storage-unbounded monitor compares the two.
        """
        if getattr(config, "lifecycle", None) is None:
            return {
                "hot_blocks": None,
                "hot_bound": None,
                "first_retained": None,
            }
        from repro.lifecycle.spec import hot_bound_blocks

        return {
            "hot_blocks": chain.retained_blocks,
            "hot_bound": hot_bound_blocks(config),
            "first_retained": chain.first_retained_index,
        }

    def _recent_coverage(self, chain: Any) -> float:
        """Average holder fraction over the newest ``COVERAGE_WINDOW`` blocks.

        A block's holders are its permanent storing nodes plus every node
        whose recent-block FIFO cache currently contains it (Section
        IV-C).  Genesis is excluded — every node holds it by construction.
        """
        state = chain.state
        node_ids = state.node_ids
        height = chain.height
        if height < 1 or not node_ids:
            return math.nan
        first = max(1, height - COVERAGE_WINDOW + 1)
        caches = {node: set(state.recent_cache_of(node)) for node in node_ids}
        fractions = []
        for index in range(first, height + 1):
            holders = set(state.block_storing.get(index, ()))
            holders.update(
                node for node, cache in caches.items() if index in cache
            )
            fractions.append(len(holders & set(node_ids)) / len(node_ids))
        return sum(fractions) / len(fractions)

    def sample(self, now: float) -> Dict[str, Any]:
        cluster = self._cluster
        chain = cluster.longest_chain_node().chain
        state = chain.state
        config = cluster.config
        self._update_interval_ewma(chain)
        t0 = config.expected_block_interval
        usage = state.storage_snapshot(now)
        fairness_max, margin_min, saturated = self._fairness(
            usage, float(config.storage_capacity)
        )
        return {
            "t": now,
            "height": chain.height,
            "interval_ewma": self._interval_ewma,
            "interval_ratio": (
                self._interval_ewma / t0 if self._intervals_seen else math.nan
            ),
            "intervals_seen": self._intervals_seen,
            "fairness_max": fairness_max,
            "fairness_margin_min": margin_min,
            "saturated_nodes": saturated,
            "storage_gini": (
                gini_coefficient(list(usage.values())) if usage else math.nan
            ),
            "stake_topk_share": self._stake_top_share(state),
            "coverage_recent": self._recent_coverage(chain),
            "queue_depth": cluster.engine.queue_depth,
            "mempool_depth": self._mempool_depth(),
            **self._chaos_fields(),
            **self._lifecycle_fields(chain, config),
        }


class FederationProbe:
    """Read-only view over a federated runtime (duck-typed, no import).

    One :class:`RuntimeProbe` per cluster domain, each of its fields
    namespaced ``c{k}_`` in the flat sample, plus fog-tier fields the two
    federation monitors watch: worst directory-entry age across all
    super-peer replicas, and the cumulative cross-cluster lookup /
    migration counters.  Like :class:`RuntimeProbe`, nothing here mutates
    simulation state or consumes simulation randomness.
    """

    #: Sub-probe keys that describe the shared engine, not one cluster.
    _GLOBAL_KEYS = ("t", "queue_depth")

    def __init__(self, federation: Any):
        self._federation = federation
        self._probes = {
            domain.cluster_id: RuntimeProbe(domain.cluster)
            for domain in federation.domains
        }

    def sample(self, now: float) -> Dict[str, Any]:
        federation = self._federation
        counters = federation.fog.counters
        out: Dict[str, Any] = {
            "t": now,
            "queue_depth": federation.engine.queue_depth,
            "cluster_count": len(federation.domains),
            "fed_directory_staleness": federation.fog.directory_staleness(now),
            "fed_directory_divergence": federation.fog.directory_divergence(),
            "fed_lookups_ok": counters.lookups_ok,
            "fed_lookup_failures": counters.lookups_failed,
            "fed_lookup_fallbacks": counters.lookup_fallbacks,
            "fed_migrations": counters.migrations,
            "fed_migrations_rejected": counters.migrations_rejected,
            "fed_gossip_rounds": counters.gossip_rounds,
            "fed_bloom_fp_probes": counters.bloom_fp_probes,
            "fed_verify_rejected": counters.verify_rejected,
            "fed_attestation_rejected": counters.attestation_rejected,
            "fed_fog_quarantined": len(federation.fog.admission.quarantined),
        }
        for domain in federation.domains:
            prefix = f"c{domain.cluster_id}_"
            for key, value in self._probes[domain.cluster_id].sample(now).items():
                if key in self._GLOBAL_KEYS:
                    continue
                out[prefix + key] = value
        return out


class Timeline:
    """Grid-aligned periodic sampler, ticked from the engine's obs branch.

    ``maybe_sample(now)`` fires at most once per ``interval`` of simulated
    time; the next due time is snapped to the sampling grid
    (``(⌊now/interval⌋+1)·interval``) so long event gaps don't cause a
    burst of catch-up samples.  Until :meth:`attach` hands it a cluster,
    ticks are no-ops — the CLI enables observability before the runtime
    exists.
    """

    def __init__(self, interval: float, registry: Any = None):
        if interval <= 0:
            raise ValueError("timeline interval must be positive")
        self.interval = float(interval)
        self.samples: List[Dict[str, Any]] = []
        self._registry = registry
        self._probe: Optional[Any] = None
        self._next_at = 0.0

    def attach(self, cluster: Any) -> None:
        """Point the probe at a (new) target; sampling starts on next tick.

        A target with cluster ``domains`` (a federated runtime) gets the
        per-cluster-namespacing :class:`FederationProbe`; anything else
        is a single cluster and gets :class:`RuntimeProbe`.
        """
        if hasattr(cluster, "domains"):
            self._probe = FederationProbe(cluster)
        else:
            self._probe = RuntimeProbe(cluster)

    @property
    def attached(self) -> bool:
        return self._probe is not None

    def _raft_fields(self) -> Dict[str, Any]:
        registry = self._registry
        if registry is None:
            return {"raft_term": None, "raft_leader_changes": None}
        term = (
            registry.gauge("raft.term").value if "raft.term" in registry else None
        )
        changes = (
            registry.counter("raft.leader_changes").value
            if "raft.leader_changes" in registry
            else None
        )
        return {"raft_term": term, "raft_leader_changes": changes}

    def maybe_sample(self, now: float) -> Optional[Dict[str, Any]]:
        if self._probe is None or now < self._next_at:
            return None
        sample = self._probe.sample(now)
        sample.update(self._raft_fields())
        self.samples.append(sample)
        self._next_at = (math.floor(now / self.interval) + 1) * self.interval
        return sample

    def last_sample(self) -> Optional[Dict[str, Any]]:
        return self.samples[-1] if self.samples else None

    def write_jsonl(self, path: PathLike) -> Path:
        """One header line (schema + interval), then one line per sample."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            header = {
                "schema": TIMELINE_SCHEMA,
                "interval": self.interval,
                "samples": len(self.samples),
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for sample in self.samples:
                row = {key: _jsonable(value) for key, value in sample.items()}
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return target


def read_timeline(path: PathLike) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a timeline JSONL file back as ``(header, samples)``."""
    source = Path(path)
    header: Dict[str, Any] = {}
    samples: List[Dict[str, Any]] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if line_number == 0 and "schema" in record:
                header = record
            else:
                samples.append(record)
    return header, samples
