"""Render one run's observability directory as terminal text and HTML.

``repro report DIR`` reads the artefacts a ``--obs DIR`` run exported —
``timeline.jsonl``, ``events.jsonl``, ``verdict.json``, ``metrics.json``
— and renders them two ways:

* a terminal report: the verdict, a per-monitor table, sparklines of the
  timeline series (via :mod:`repro.metrics.ascii_plot`), and summary
  statistics per series;
* a self-contained single-file HTML report (inline SVG line charts, no
  external assets) written next to the inputs as ``report.html``.

Both views are pure functions of the files on disk; nothing here touches
live observability state.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import json

from repro.metrics.ascii_plot import sparkline
from repro.metrics.report import render_table
from repro.obs.live.rollup import fleet_rollup
from repro.obs.metrics import summarize
from repro.obs.monitors import (
    EVENTS_NAME,
    VERDICT_NAME,
    read_events,
    read_verdict,
)
from repro.obs.timeline import TIMELINE_NAME, read_timeline

PathLike = Union[str, Path]

REPORT_NAME = "report.html"

#: Timeline series shown in reports, in display order, with captions.
SERIES = [
    ("height", "chain height"),
    ("interval_ewma", "block interval EWMA (s)"),
    ("interval_ratio", "interval EWMA / t0"),
    ("fairness_max", "max fairness degree f_i"),
    ("fairness_margin_min", "min storage margin (slots)"),
    ("saturated_nodes", "saturated nodes"),
    ("storage_gini", "storage Gini"),
    ("stake_topk_share", "top-k stake share"),
    ("coverage_recent", "recent-block coverage"),
    ("queue_depth", "engine queue depth"),
    ("mempool_depth", "mempool depth (max node)"),
]

#: Name of the counter carrying the tracer's dropped-span total.
SPANS_DROPPED_COUNTER = "obs.spans_dropped"


def _spans_dropped(metrics: Optional[Dict[str, Any]]) -> int:
    """Dropped-span total from a loaded metrics snapshot (0 when absent)."""
    if not metrics:
        return 0
    instrument = metrics.get("instruments", {}).get(SPANS_DROPPED_COUNTER)
    if not instrument or instrument.get("type") != "counter":
        return 0
    return int(instrument.get("value", 0))


def _series_values(
    samples: Sequence[Dict[str, Any]], key: str
) -> List[float]:
    """The series as floats, JSON nulls back to NaN."""
    values = []
    for sample in samples:
        value = sample.get(key)
        values.append(math.nan if value is None else float(value))
    return values


def load_run(directory: PathLike) -> Dict[str, Any]:
    """Load a run's observability artefacts (timeline is mandatory).

    Returns ``{"directory", "header", "samples", "events", "verdict"}``;
    events/verdict are optional (None when the run had no monitors).
    """
    base = Path(directory)
    timeline_path = base / TIMELINE_NAME
    if not timeline_path.exists():
        raise FileNotFoundError(
            f"{timeline_path} not found — was the run made with --obs "
            f"(which records the protocol timeline)?"
        )
    header, samples = read_timeline(timeline_path)
    events = (
        read_events(base / EVENTS_NAME) if (base / EVENTS_NAME).exists() else None
    )
    verdict = (
        read_verdict(base / VERDICT_NAME)
        if (base / VERDICT_NAME).exists()
        else None
    )
    metrics = None
    metrics_path = base / "metrics.json"
    if metrics_path.exists():
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
    return {
        "directory": base,
        "header": header,
        "samples": samples,
        "events": events,
        "verdict": verdict,
        "metrics": metrics,
    }


# -- terminal ---------------------------------------------------------------------------


def render_terminal_report(run: Dict[str, Any]) -> str:
    """The full terminal report for one loaded run."""
    samples = run["samples"]
    verdict = run["verdict"]
    events = run["events"]
    sections: List[str] = [f"run: {run['directory']}"]

    dropped = _spans_dropped(run.get("metrics"))
    if dropped:
        sections.append(
            f"WARNING: {dropped} span(s) dropped at the tracer's max_spans "
            "cap — the exported trace is truncated; raise max_spans or "
            "shorten the window"
        )

    if verdict is not None:
        sections.append(
            f"verdict: {verdict['status'].upper()} "
            f"({verdict.get('alerts', 0)} alert(s), "
            f"{verdict.get('events_total', 0)} event(s))"
        )
        rows = [
            [
                name,
                entry.get("worst") or "-",
                entry.get("current_level", "-"),
                entry.get("events", 0),
            ]
            for name, entry in sorted(verdict.get("by_monitor", {}).items())
        ]
        if rows:
            sections.append(
                render_table(
                    "monitors", ["monitor", "worst", "now", "events"], rows
                )
            )

    if events:
        rows = [
            [
                f"{event.get('time', 0.0):.0f}s",
                event.get("monitor", "?"),
                event.get("severity", "?"),
                event.get("message", ""),
            ]
            for event in events
        ]
        sections.append(
            render_table("events", ["t", "monitor", "severity", "message"], rows)
        )

    if samples:
        spark_rows = []
        stat_rows = []
        for key, caption in SERIES:
            values = _series_values(samples, key)
            finite = [v for v in values if math.isfinite(v)]
            if not finite:
                continue
            spark_rows.append([caption, sparkline(values), f"{finite[-1]:.4g}"])
            stats = summarize(finite)
            stat_rows.append(
                [
                    caption,
                    stats["min"],
                    stats["mean"],
                    stats["p95"],
                    stats["max"],
                ]
            )
        times = _series_values(samples, "t")
        sections.append(
            render_table(
                f"timeline ({len(samples)} samples, "
                f"t={times[0]:.0f}s → {times[-1]:.0f}s)",
                ["series", "trend", "last"],
                spark_rows,
            )
        )
        sections.append(
            render_table(
                "series statistics",
                ["series", "min", "mean", "p95", "max"],
                stat_rows,
            )
        )
        rollup = fleet_rollup(samples[-1])
        if rollup is not None:
            fleet_rows = []
            for key in ("height", "interval_ratio", "storage_gini",
                        "coverage_recent", "mempool_depth"):
                spread = rollup.get(key)
                if spread is None:
                    continue
                fleet_rows.append(
                    [
                        key,
                        f"{spread['min']:.4g} (c{spread['min_cluster']})",
                        f"{spread['mean']:.4g}",
                        f"{spread['max']:.4g} (c{spread['max_cluster']})",
                    ]
                )
            for key in ("mempool_total", "chaos_rejections_total",
                        "chaos_quarantined_total", "fed_lookup_failures"):
                if rollup.get(key) is not None:
                    fleet_rows.append([key, "", "", f"{rollup[key]:g}"])
            if fleet_rows:
                sections.append(
                    render_table(
                        f"fleet rollup ({rollup['clusters']} clusters, "
                        "final sample)",
                        ["field", "min", "mean", "max/total"],
                        fleet_rows,
                    )
                )
    else:
        sections.append("timeline: no samples recorded")

    return "\n\n".join(sections)


# -- HTML ------------------------------------------------------------------------------

_SEVERITY_COLOURS = {
    "healthy": "#2e7d32",
    "info": "#2e7d32",
    "warning": "#ef6c00",
    "critical": "#c62828",
}


def _svg_line_chart(
    times: Sequence[float],
    values: Sequence[float],
    caption: str,
    width: int = 640,
    height: int = 120,
) -> str:
    """A minimal inline SVG polyline; NaN gaps split the line."""
    pad = 6
    finite = [
        (t, v)
        for t, v in zip(times, values)
        if math.isfinite(t) and math.isfinite(v)
    ]
    if not finite:
        return ""
    t_low, t_high = finite[0][0], finite[-1][0]
    v_low = min(v for _, v in finite)
    v_high = max(v for _, v in finite)
    t_span = (t_high - t_low) or 1.0
    v_span = (v_high - v_low) or 1.0

    def x(t: float) -> float:
        return pad + (t - t_low) / t_span * (width - 2 * pad)

    def y(v: float) -> float:
        return height - pad - (v - v_low) / v_span * (height - 2 * pad)

    segments: List[List[str]] = [[]]
    for t, v in zip(times, values):
        if math.isfinite(t) and math.isfinite(v):
            segments[-1].append(f"{x(t):.1f},{y(v):.1f}")
        elif segments[-1]:
            segments.append([])
    polylines = "".join(
        f'<polyline fill="none" stroke="#1565c0" stroke-width="1.5" '
        f'points="{" ".join(points)}"/>'
        for points in segments
        if len(points) >= 2
    )
    dots = (
        ""
        if polylines
        else "".join(
            f'<circle cx="{x(t):.1f}" cy="{y(v):.1f}" r="2" fill="#1565c0"/>'
            for t, v in finite
        )
    )
    return (
        f"<figure><figcaption>{html.escape(caption)} "
        f"<small>[{v_low:.4g} … {v_high:.4g}]</small></figcaption>"
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" style="background:#fafafa;border:1px solid #ddd">'
        f"{polylines}{dots}</svg></figure>"
    )


def render_html_report(run: Dict[str, Any]) -> str:
    """A self-contained HTML page for one loaded run."""
    samples = run["samples"]
    verdict = run["verdict"]
    events = run["events"]
    times = _series_values(samples, "t") if samples else []

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>repro report — {html.escape(str(run['directory']))}</title>",
        "<style>body{font-family:sans-serif;max-width:720px;margin:2em auto}"
        "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
        "padding:4px 8px;text-align:left}figure{margin:1.2em 0}"
        "figcaption{font-weight:bold;margin-bottom:4px}</style>",
        "</head><body>",
        f"<h1>repro report</h1><p><code>{html.escape(str(run['directory']))}"
        "</code></p>",
    ]

    dropped = _spans_dropped(run.get("metrics"))
    if dropped:
        parts.append(
            f'<p style="color:#c62828"><strong>Warning:</strong> {dropped} '
            "span(s) dropped at the tracer's max_spans cap — the exported "
            "trace is truncated.</p>"
        )

    if verdict is not None:
        colour = _SEVERITY_COLOURS.get(verdict["status"], "#555")
        parts.append(
            f'<h2>Verdict: <span style="color:{colour}">'
            f"{html.escape(verdict['status'].upper())}</span></h2>"
        )
        parts.append("<table><tr><th>monitor</th><th>worst</th><th>now</th>"
                     "<th>events</th></tr>")
        for name, entry in sorted(verdict.get("by_monitor", {}).items()):
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{html.escape(entry.get('worst') or '-')}</td>"
                f"<td>{html.escape(entry.get('current_level', '-'))}</td>"
                f"<td>{entry.get('events', 0)}</td></tr>"
            )
        parts.append("</table>")

    if events:
        parts.append("<h2>Events</h2><table><tr><th>t (s)</th><th>monitor</th>"
                     "<th>severity</th><th>message</th></tr>")
        for event in events:
            colour = _SEVERITY_COLOURS.get(event.get("severity", ""), "#555")
            parts.append(
                f"<tr><td>{event.get('time', 0.0):.0f}</td>"
                f"<td>{html.escape(event.get('monitor', '?'))}</td>"
                f'<td style="color:{colour}">'
                f"{html.escape(event.get('severity', '?'))}</td>"
                f"<td>{html.escape(event.get('message', ''))}</td></tr>"
            )
        parts.append("</table>")

    if samples:
        parts.append(f"<h2>Timeline ({len(samples)} samples)</h2>")
        for key, caption in SERIES:
            chart = _svg_line_chart(times, _series_values(samples, key), caption)
            if chart:
                parts.append(chart)

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    run: Dict[str, Any], out_path: Optional[PathLike] = None
) -> Path:
    """Write the HTML report; defaults to ``DIR/report.html``."""
    target = (
        Path(out_path) if out_path is not None
        else Path(run["directory"]) / REPORT_NAME
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_html_report(run), encoding="utf-8")
    return target
