"""Dependency-free flamegraph SVG over folded stacks.

``repro trace flame`` turns the profiler's folded-stack output into a
single self-contained SVG: one rectangle per (stack-prefix, function),
width proportional to inclusive sample count, root at the bottom.
Colours are a deterministic hash of the function name, so the same
function is the same colour across graphs and regenerating a graph is
byte-stable — diffs in the artefact mean diffs in the profile.

No JavaScript, no external assets: every rectangle carries a
``<title>`` tooltip (function, samples, percentage), which is enough to
navigate a graph in any browser or embedded in the HTML report.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Tuple, Union

PathLike = Union[str, Path]

FLAME_NAME = "flame.svg"

_ROW_HEIGHT = 17
_MIN_WIDTH_PX = 0.4  # rectangles narrower than this are dropped
_FONT_PX = 11


def _colour(name: str) -> str:
    """Deterministic warm colour for a frame name."""
    digest = 0
    for ch in name:
        digest = (digest * 131 + ord(ch)) % 360
    red = 205 + digest % 50
    green = 80 + (digest * 7) % 110
    blue = 30 + (digest * 13) % 40
    return f"rgb({red},{green},{blue})"


class _Node:
    __slots__ = ("count", "children")

    def __init__(self) -> None:
        self.count = 0
        self.children: Dict[str, "_Node"] = {}


def _build_trie(folded: Dict[str, int]) -> _Node:
    root = _Node()
    for stack, count in folded.items():
        root.count += count
        node = root
        for frame in stack.split(";"):
            node = node.children.setdefault(frame, _Node())
            node.count += count
    return root


def _depth(node: _Node) -> int:
    if not node.children:
        return 0
    return 1 + max(_depth(child) for child in node.children.values())


def render_flamegraph_svg(
    folded: Dict[str, int], title: str = "repro flamegraph", width: int = 1200
) -> str:
    """Render folded stacks as a complete SVG document."""
    root = _build_trie(folded)
    total = root.count
    rows = _depth(root)
    height = (rows + 2) * _ROW_HEIGHT + 24
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="{_FONT_PX}">',
        f'<rect width="{width}" height="{height}" fill="#fdfdfd"/>',
        f'<text x="{width // 2}" y="16" text-anchor="middle" '
        f'font-weight="bold">{html.escape(title)} '
        f"({total} samples)</text>",
    ]
    if total == 0:
        parts.append(
            f'<text x="{width // 2}" y="{height // 2}" text-anchor="middle">'
            "no samples</text>"
        )
        parts.append("</svg>")
        return "\n".join(parts)

    scale = width / total

    def emit(node: _Node, x: float, depth: int) -> None:
        # Children sorted by name: deterministic layout.
        for name, child in sorted(node.children.items()):
            w = child.count * scale
            if w >= _MIN_WIDTH_PX:
                y = height - (depth + 1) * _ROW_HEIGHT - 4
                pct = 100.0 * child.count / total
                label = html.escape(name)
                parts.append(
                    f'<g><title>{label} — {child.count} samples '
                    f"({pct:.1f}%)</title>"
                    f'<rect x="{x:.2f}" y="{y}" width="{max(w - 0.3, 0.1):.2f}" '
                    f'height="{_ROW_HEIGHT - 1}" fill="{_colour(name)}" '
                    f'rx="1"/>'
                )
                if w > 40:
                    shown = name if w > 7 * len(name) else name[: int(w / 7)] + "…"
                    parts.append(
                        f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT - 5}">'
                        f"{html.escape(shown)}</text>"
                    )
                parts.append("</g>")
                emit(child, x, depth + 1)
            x += w

    emit(root, 0.0, 0)
    parts.append("</svg>")
    return "\n".join(parts)


def write_flamegraph(
    folded: Dict[str, int], path: PathLike, title: str = "repro flamegraph"
) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_flamegraph_svg(folded, title=title), encoding="utf-8")
    return target
