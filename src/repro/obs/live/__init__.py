"""Live telemetry plane: streaming metrics, trace stitching, profiling.

While :mod:`repro.obs` (PRs 2–3) buffers spans and metrics in memory and
exports them post-mortem, everything under ``repro.obs.live`` works
*while the system runs* — and across process boundaries:

* :mod:`~repro.obs.live.context` — stitch per-process trace files into
  one multi-process trace by trace id (the wire carries a compact
  :class:`~repro.obs.tracer.TraceContext` per message).
* :mod:`~repro.obs.live.stream` — a bounded per-node JSONL ring of
  timeline samples, counter deltas, and monitor events, flushed on every
  timeline tick.
* :mod:`~repro.obs.live.expo` — a Prometheus-style text exposition
  endpoint (``--telemetry PORT``) plus a JSON snapshot for ``repro top``.
* :mod:`~repro.obs.live.profiler` — a background-thread sampling
  profiler emitting folded stacks.
* :mod:`~repro.obs.live.flame` — a dependency-free flamegraph SVG
  renderer over folded stacks (``repro trace flame``).
* :mod:`~repro.obs.live.top` — the ``repro top DIR|URL`` terminal view.
* :mod:`~repro.obs.live.rollup` — aggregate ``c{k}_`` per-cluster
  timeline fields into one fleet summary.

Everything is disabled by default and digest-neutral when enabled: the
plane only ever *reads* simulation state (see DESIGN.md §14 and the
extended guard in ``tests/integration/test_obs_overhead.py``).
"""

from repro.obs.live.context import MERGED_TRACE_NAME, merge_trace_files
from repro.obs.live.expo import TelemetryServer, render_prometheus
from repro.obs.live.flame import render_flamegraph_svg, write_flamegraph
from repro.obs.live.profiler import (
    PROFILE_NAME,
    SamplingProfiler,
    read_folded,
    top_functions,
    write_folded,
)
from repro.obs.live.rollup import fleet_rollup
from repro.obs.live.stream import STREAM_NAME, TelemetryStream, read_stream
from repro.obs.live.top import load_top_view, render_top

__all__ = [
    "MERGED_TRACE_NAME",
    "merge_trace_files",
    "TelemetryServer",
    "render_prometheus",
    "render_flamegraph_svg",
    "write_flamegraph",
    "PROFILE_NAME",
    "SamplingProfiler",
    "read_folded",
    "top_functions",
    "write_folded",
    "fleet_rollup",
    "STREAM_NAME",
    "TelemetryStream",
    "read_stream",
    "load_top_view",
    "render_top",
]
