"""``repro top`` — a terminal live view over a telemetry source.

The source is either

* an obs **directory** holding a streaming ``telemetry.jsonl`` ring
  (written when ``--telemetry`` streams alongside ``--obs``), or
* a telemetry endpoint **URL** (``http://host:port``), polled via its
  ``/snapshot`` JSON view.

Both resolve to the same view dict: the latest timeline sample, counter
values, a derived msgs/sec (from the two most recent counter records'
logical timestamps), and — for federated sources — the fleet rollup.
"""

from __future__ import annotations

import json
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.metrics.report import render_table
from repro.obs.live.rollup import fleet_rollup
from repro.obs.live.stream import read_stream

PathLike = Union[str, Path]

_MSG_COUNTERS = ("net.messages_sent", "engine.events")


def _rate(
    newer: Optional[Dict[str, Any]], older: Optional[Dict[str, Any]]
) -> Optional[float]:
    """msgs/sec between two counter records on the logical clock."""
    if not newer or not older:
        return None
    t_new, t_old = newer.get("t"), older.get("t")
    if not isinstance(t_new, (int, float)) or not isinstance(t_old, (int, float)):
        return None
    dt = t_new - t_old
    if dt <= 0:
        return None
    for name in _MSG_COUNTERS:
        new_v = newer.get("values", {}).get(name)
        old_v = older.get("values", {}).get(name)
        if isinstance(new_v, (int, float)) and isinstance(old_v, (int, float)):
            return (new_v - old_v) / dt
    return None


def _view_from_stream(directory: PathLike) -> Dict[str, Any]:
    records = read_stream(directory)
    if not records:
        raise FileNotFoundError(
            f"no telemetry stream under {directory} — was the run made "
            "with --obs DIR --telemetry PORT (which arms streaming)?"
        )
    node = next(
        (r.get("node") for r in records if r.get("kind") == "header"), "?"
    )
    samples = [r for r in records if r.get("kind") == "sample"]
    counter_records = [r for r in records if r.get("kind") == "counters"]
    events = [r for r in records if r.get("kind") == "event"]
    counters: Dict[str, Any] = {}
    for record in counter_records:
        counters.update(record.get("values", {}))
    return {
        "source": str(directory),
        "node": node,
        "sample": samples[-1] if samples else None,
        "counters": counters,
        "msgs_per_sec": _rate(
            counter_records[-1] if counter_records else None,
            counter_records[-2] if len(counter_records) > 1 else None,
        ),
        "events": events[-5:],
        "records": len(records),
        "spans_dropped": None,
    }


def _view_from_url(url: str) -> Dict[str, Any]:
    with urllib.request.urlopen(f"{url.rstrip('/')}/snapshot", timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return {
        "source": url,
        "node": payload.get("node", "?"),
        "sample": payload.get("sample"),
        "counters": payload.get("counters", {}),
        "msgs_per_sec": None,
        "events": [],
        "records": None,
        "spans_dropped": payload.get("spans_dropped"),
    }


def load_top_view(source: str) -> Dict[str, Any]:
    """Resolve a directory or URL into the common top-view dict."""
    if source.startswith(("http://", "https://")):
        return _view_from_url(source)
    return _view_from_stream(source)


def _fmt(value: Any, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_top(view: Dict[str, Any]) -> str:
    """The one-screen terminal rendering of a top view."""
    sample = view.get("sample") or {}
    counters = view.get("counters", {})
    rows: List[List[Any]] = [
        ["node", view.get("node", "?")],
        ["logical t (s)", _fmt(sample.get("t"), 0)],
        ["chain height", _fmt(sample.get("height"))],
        ["block interval EWMA (s)", _fmt(sample.get("interval_ewma"))],
        ["interval / t0", _fmt(sample.get("interval_ratio"))],
        ["mempool depth", _fmt(sample.get("mempool_depth"))],
        ["quarantined peers", _fmt(sample.get("chaos_quarantined"))],
        ["admission rejections", _fmt(sample.get("chaos_rejections"))],
        ["queue depth", _fmt(sample.get("queue_depth"))],
        ["msgs/sec (logical)", _fmt(view.get("msgs_per_sec"))],
        ["messages sent", _fmt(counters.get("net.messages_sent"))],
        ["frames rejected", _fmt(counters.get("net.frames_rejected"))],
    ]
    if view.get("spans_dropped"):
        rows.append(["spans dropped", view["spans_dropped"]])
    sections = [render_table(f"repro top — {view['source']}", ["field", "value"], rows)]

    rollup = fleet_rollup(sample) if sample else None
    if rollup is not None:
        fleet_rows = []
        for field in ("height", "interval_ratio", "mempool_depth", "storage_gini"):
            spread = rollup.get(field)
            if spread is None:
                continue
            fleet_rows.append(
                [
                    field,
                    f"{_fmt(spread['min'])} (c{spread['min_cluster']})",
                    _fmt(spread["mean"]),
                    f"{_fmt(spread['max'])} (c{spread['max_cluster']})",
                ]
            )
        for field in (
            "mempool_total",
            "chaos_rejections_total",
            "chaos_quarantined_total",
            "fed_directory_staleness",
            "fed_lookup_failures",
        ):
            if rollup.get(field) is not None:
                fleet_rows.append([field, "", "", _fmt(rollup[field])])
        sections.append(
            render_table(
                f"fleet ({rollup['clusters']} clusters)",
                ["field", "min", "mean", "max/total"],
                fleet_rows,
            )
        )

    events = view.get("events") or []
    if events:
        sections.append(
            render_table(
                "recent events",
                ["t", "monitor", "severity", "message"],
                [
                    [
                        _fmt(e.get("time"), 0),
                        e.get("monitor", "?"),
                        e.get("severity", "?"),
                        e.get("message", ""),
                    ]
                    for e in events
                ],
            )
        )
    return "\n\n".join(sections)
