"""Continuous sampling profiler: a background-thread stack sampler.

The span tracer answers "where did instrumented regions go"; the
profiler answers "where did *Python* go" — including the un-instrumented
interior of the solver, serialisation, and delivery callbacks the
ROADMAP names as the remaining n=400 hot spots.  A daemon thread wakes
``hz`` times a second, grabs the target thread's current frame via
``sys._current_frames()`` (a C-level snapshot — the GIL makes it
coherent without stopping the world), and counts the folded stack.

Determinism: the sampler never touches simulation state, RNGs, or the
event queue — it reads interpreter frames only, so a profiled run stays
bit-identical to an unprofiled one (proven in the extended
``test_obs_overhead.py`` guard).  Overhead is one stack walk per sample;
at the default 97 Hz that is well under 1 % of a busy interpreter.

Output is Brendan Gregg's *folded stacks* format — ``a;b;c count`` per
line — consumed by :mod:`repro.obs.live.flame` and any external
flamegraph tooling.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

PROFILE_NAME = "profile_folded.txt"

#: Default sampling rate; a prime, so the sampler cannot phase-lock onto
#: periodic work scheduled at round intervals.
DEFAULT_HZ = 97.0

#: Stack depth cap — deeper frames are truncated at the root end.
MAX_DEPTH = 64


def _frame_label(frame: Any) -> str:
    """``module.function`` — short, stable, flamegraph-friendly."""
    code = frame.f_code
    module = Path(code.co_filename).stem
    return f"{module}.{code.co_name}"


class SamplingProfiler:
    """Samples one thread's stack from a background daemon thread.

    Parameters
    ----------
    hz:
        Samples per second (wall time).
    thread_id:
        Thread to profile; defaults to the calling thread of
        :meth:`start` (the simulation / event-loop thread).
    """

    def __init__(self, hz: float = DEFAULT_HZ, thread_id: Optional[int] = None):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = float(hz)
        self.thread_id = thread_id
        self.samples = 0
        self._counts: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling -------------------------------------------------------------------

    def _sample_once(self, target: int) -> None:
        frame = sys._current_frames().get(target)
        if frame is None:
            return
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < MAX_DEPTH:
            stack.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        if not stack:
            return
        key = ";".join(reversed(stack))  # root → leaf
        self._counts[key] = self._counts.get(key, 0) + 1
        self.samples += 1

    def _run(self, target: int) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self._sample_once(target)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        target = (
            self.thread_id
            if self.thread_id is not None
            else threading.get_ident()
        )
        self.thread_id = target
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, args=(target,), name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- results --------------------------------------------------------------------

    def folded(self) -> Dict[str, int]:
        """``"root;child;leaf" -> sample count`` (a copy)."""
        return dict(self._counts)

    def write_folded(self, path: PathLike) -> Path:
        return write_folded(self.folded(), path)

    def top_functions(self, n: int = 10) -> List[Dict[str, Any]]:
        return top_functions(self.folded(), n)


# -- folded-stack helpers (pure functions over the dict form) ---------------------------


def write_folded(folded: Dict[str, int], path: PathLike) -> Path:
    """Write folded stacks, most-sampled first (stable for goldens)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for stack, count in sorted(
            folded.items(), key=lambda item: (-item[1], item[0])
        ):
            handle.write(f"{stack} {count}\n")
    return target


def read_folded(path: PathLike) -> Dict[str, int]:
    """Read a folded-stacks file back into the dict form."""
    counts: Dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            continue
        counts[stack] = counts.get(stack, 0) + int(count)
    return counts


def top_functions(folded: Dict[str, int], n: int = 10) -> List[Dict[str, Any]]:
    """Per-function attribution: self and total sample counts.

    *Self* counts samples where the function was the leaf; *total*
    counts samples where it appears anywhere on the stack (each function
    counted once per stack, so recursion does not double-bill).  Rows
    are sorted by self count — the flamegraph's plateau list.
    """
    total_samples = sum(folded.values())
    self_counts: Dict[str, int] = {}
    total_counts: Dict[str, int] = {}
    for stack, count in folded.items():
        frames = stack.split(";")
        self_counts[frames[-1]] = self_counts.get(frames[-1], 0) + count
        for name in set(frames):
            total_counts[name] = total_counts.get(name, 0) + count
    rows = [
        {
            "function": name,
            "self": self_counts.get(name, 0),
            "total": total_counts[name],
            "self_pct": (
                round(100.0 * self_counts.get(name, 0) / total_samples, 1)
                if total_samples
                else 0.0
            ),
            "total_pct": (
                round(100.0 * total_counts[name] / total_samples, 1)
                if total_samples
                else 0.0
            ),
        }
        for name in total_counts
    ]
    rows.sort(key=lambda row: (-row["self"], -row["total"], row["function"]))
    return rows[:n]
