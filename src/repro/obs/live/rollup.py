"""Fleet rollup: fold ``c{k}_`` per-cluster telemetry into one summary.

A federated timeline sample is flat but namespaced — every cluster
contributes ``c{k}_height``, ``c{k}_mempool_depth``, … alongside the
fog-tier ``fed_*`` fields.  The fleet operator's questions are about the
*distribution*: is any cluster stalled, how deep is the worst mempool,
how much admission pressure is the fleet absorbing.  :func:`fleet_rollup`
answers them from a single sample, and both ``repro top`` and
``repro report`` render the result.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

_CLUSTER_FIELD = re.compile(r"^c(\d+)_(.+)$")


def _cluster_series(sample: Dict[str, Any]) -> Dict[str, Dict[int, Any]]:
    """``{field: {cluster_id: value}}`` from one federated sample."""
    series: Dict[str, Dict[int, Any]] = {}
    for key, value in sample.items():
        match = _CLUSTER_FIELD.match(key)
        if match is None:
            continue
        series.setdefault(match.group(2), {})[int(match.group(1))] = value
    return series


def _finite(values: Dict[int, Any]) -> Dict[int, float]:
    return {
        cluster: float(v)
        for cluster, v in values.items()
        if isinstance(v, (int, float)) and v == v
    }


def fleet_rollup(sample: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Aggregate one federated sample; None for single-cluster samples.

    Min/max aggregates carry the cluster id they came from, so "height
    min 4" reads as "cluster 2 is at height 4" without a second lookup.
    """
    series = _cluster_series(sample)
    if not series:
        return None

    def spread(field: str) -> Optional[Dict[str, Any]]:
        values = _finite(series.get(field, {}))
        if not values:
            return None
        low = min(values, key=lambda c: (values[c], c))
        high = max(values, key=lambda c: (values[c], -c))
        return {
            "min": values[low],
            "min_cluster": low,
            "max": values[high],
            "max_cluster": high,
            "mean": round(sum(values.values()) / len(values), 4),
        }

    def total(field: str) -> Optional[float]:
        values = _finite(series.get(field, {}))
        if not values:
            return None
        result = sum(values.values())
        return int(result) if result == int(result) else result

    clusters: List[int] = sorted(
        {cluster for values in series.values() for cluster in values}
    )
    rollup: Dict[str, Any] = {
        "t": sample.get("t"),
        "clusters": len(clusters),
        "cluster_ids": clusters,
        "height": spread("height"),
        "interval_ratio": spread("interval_ratio"),
        "storage_gini": spread("storage_gini"),
        "coverage_recent": spread("coverage_recent"),
        "mempool_depth": spread("mempool_depth"),
        "mempool_total": total("mempool_depth"),
        "saturated_nodes_total": total("saturated_nodes"),
        "chaos_rejections_total": total("chaos_rejections"),
        "chaos_quarantined_total": total("chaos_quarantined"),
    }
    for key in (
        "fed_directory_staleness",
        "fed_lookups_ok",
        "fed_lookup_failures",
        "fed_migrations",
        "fed_gossip_rounds",
        "queue_depth",
    ):
        if key in sample:
            rollup[key] = sample[key]
    return rollup
