"""Per-node streaming telemetry: a bounded JSONL ring on disk.

The post-mortem exporter waits for the run to end; the stream writes as
the run progresses, riding the existing timeline cadence — every new
timeline sample triggers one flush from inside the engine's (already
enabled-gated) observability branch, so streaming inherits the timeline's
digest-neutrality by construction: no new hooks, no events on the engine
queue, reads only.

Each flush appends up to three record kinds:

* ``sample`` — the timeline sample verbatim;
* ``counters`` — counter values that changed since the previous flush
  (a delta stream: replaying the ring from any point converges);
* ``event`` — monitor events raised since the previous flush.

The ring is two segments: when ``telemetry.jsonl`` exceeds
``max_bytes`` it is rotated to ``telemetry.jsonl.1`` (overwriting the
previous segment), so a week-long run holds at most ``2·max_bytes`` of
telemetry on disk.  :func:`read_stream` reads ``.1`` first, so readers
see the surviving window in order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

STREAM_NAME = "telemetry.jsonl"
STREAM_SCHEMA = "repro.obs.stream/v1"

#: Default ring-segment budget — generous for hours of samples at the
#: default cadence, small enough to never matter on disk.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class TelemetryStream:
    """Append-only JSONL ring fed from the timeline tick.

    Parameters
    ----------
    directory:
        Where the ring lives (``telemetry.jsonl`` + rotated ``.1``).
    node:
        Origin label stamped into the header record.
    max_bytes:
        Per-segment rotation threshold.
    """

    def __init__(
        self,
        directory: PathLike,
        node: str = "n0",
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_bytes < 1024:
            raise ValueError("max_bytes must be at least 1 KiB")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / STREAM_NAME
        self.node = node
        self.max_bytes = max_bytes
        self.records_written = 0
        self.rotations = 0
        self._last_counters: Dict[str, int] = {}
        self._events_cursor = 0
        self._handle = self.path.open("w", encoding="utf-8")
        self._write(
            {"kind": "header", "schema": STREAM_SCHEMA, "node": node}
        )

    # -- writing --------------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        self._handle.write(line + "\n")
        self._handle.flush()
        self.records_written += 1
        if self._handle.tell() >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._handle.close()
        self.path.replace(self.path.with_suffix(self.path.suffix + ".1"))
        self._handle = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "kind": "header",
                "schema": STREAM_SCHEMA,
                "node": self.node,
                "rotated": self.rotations + 1,
            }
        )
        self.rotations += 1

    def _counter_delta(self, metrics: Any) -> Dict[str, int]:
        """Counter values that changed since the last flush."""
        changed: Dict[str, int] = {}
        for name, inst in metrics.snapshot()["instruments"].items():
            if inst.get("type") != "counter":
                continue
            value = inst["value"]
            if self._last_counters.get(name) != value:
                changed[name] = value
                self._last_counters[name] = value
        return changed

    def on_sample(
        self,
        sample: Dict[str, Any],
        metrics: Any = None,
        monitors: Any = None,
    ) -> None:
        """Flush one timeline sample plus counter deltas and new events."""
        self._write({"kind": "sample", **_jsonable_dict(sample)})
        if metrics is not None:
            delta = self._counter_delta(metrics)
            if delta:
                self._write(
                    {"kind": "counters", "t": sample.get("t"), "values": delta}
                )
        if monitors is not None:
            events = monitors.events
            for event in events[self._events_cursor:]:
                self._write({"kind": "event", **event.to_dict()})
            self._events_cursor = len(events)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __del__(self) -> None:  # belt and braces; close() is the contract
        try:
            self.close()
        except Exception:
            pass


def _jsonable_dict(sample: Dict[str, Any]) -> Dict[str, Any]:
    """NaN/inf → None so every stream line is strict JSON."""
    out: Dict[str, Any] = {}
    for key, value in sample.items():
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            out[key] = None
        else:
            out[key] = value
    return out


def read_stream(source: PathLike) -> List[Dict[str, Any]]:
    """Read the ring back in order (rotated segment first).

    ``source`` is the stream file or the directory holding it.  Tolerates
    a torn final line (the writer may have been killed mid-append).
    """
    path = Path(source)
    if path.is_dir():
        path = path / STREAM_NAME
    records: List[Dict[str, Any]] = []
    rotated = path.with_suffix(path.suffix + ".1")
    for segment in (rotated, path):
        if not segment.exists():
            continue
        with segment.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail
    return records
