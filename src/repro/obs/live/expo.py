"""Prometheus-style text exposition over a background HTTP server.

``--telemetry PORT`` starts a :class:`TelemetryServer` on localhost:

* ``GET /metrics`` — the registry rendered in Prometheus' text format
  (``repro_`` prefix, counters/gauges verbatim, histograms as
  ``_count``/``_sum`` pairs), ready for any off-the-shelf scraper;
* ``GET /snapshot`` — a JSON view for ``repro top URL``: the latest
  timeline sample, counter values, and the node's identity.

The server runs on a daemon thread and only ever *reads* observability
state: the registry snapshot and the timeline's sample list.  Both are
appended to by the simulation thread; the handlers retry the rare
"dict changed size during iteration" race instead of locking the hot
path — a scrape must never be able to slow the run down, let alone
perturb it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

#: Exposition metric-name prefix.
PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    """A registry name (``net.frames_sent``) as a Prometheus metric name."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return PROM_PREFIX + sanitized


def render_prometheus(
    snapshot: Dict[str, Any], extra: Optional[Dict[str, float]] = None
) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    ``extra`` adds ad-hoc gauges (chain height, mempool depth) sourced
    from the latest timeline sample rather than the registry.
    """
    lines = []
    for name, inst in sorted(snapshot.get("instruments", {}).items()):
        kind = inst.get("type")
        metric = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {inst['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {inst['value']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {inst['count']}")
            lines.append(f"{metric}_sum {inst['sum']}")
    for name, value in sorted((extra or {}).items()):
        if value is None:
            continue
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"


def _retry_reads(fn, attempts: int = 5):
    """Re-run a racy read on 'dict changed size during iteration'."""
    for _ in range(attempts - 1):
        try:
            return fn()
        except RuntimeError:
            continue
    return fn()


class TelemetryServer:
    """Daemon-thread HTTP exposition over one live obs session."""

    def __init__(self, session: Any, port: int = 0, host: str = "127.0.0.1"):
        self.session = session
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- views ----------------------------------------------------------------------

    def _sample(self) -> Optional[Dict[str, Any]]:
        timeline = self.session.timeline
        if timeline is None:
            return None
        samples = timeline.samples
        return dict(samples[-1]) if samples else None

    def _extra_gauges(self) -> Dict[str, float]:
        sample = self._sample()
        if sample is None:
            return {}
        extra = {}
        for key in (
            "t",
            "height",
            "interval_ewma",
            "mempool_depth",
            "queue_depth",
            "chaos_quarantined",
        ):
            value = sample.get(key)
            if isinstance(value, (int, float)) and value == value:
                extra[f"timeline.{key}"] = value
        return extra

    def metrics_text(self) -> str:
        return _retry_reads(
            lambda: render_prometheus(
                self.session.metrics.snapshot(), self._extra_gauges()
            )
        )

    def snapshot_json(self) -> Dict[str, Any]:
        def build() -> Dict[str, Any]:
            snapshot = self.session.metrics.snapshot()
            counters = {
                name: inst["value"]
                for name, inst in snapshot.get("instruments", {}).items()
                if inst.get("type") == "counter"
            }
            sample = self._sample()
            if sample is not None:
                sample = {
                    key: (None if isinstance(value, float) and value != value else value)
                    for key, value in sample.items()
                }
            return {
                "node": self.session.tracer.origin,
                "sample": sample,
                "counters": counters,
                "spans_dropped": self.session.tracer.dropped_spans,
            }

        return _retry_reads(build)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    if self.path.split("?", 1)[0] == "/metrics":
                        body = server.metrics_text().encode("utf-8")
                        content_type = "text/plain; version=0.0.4"
                    elif self.path.split("?", 1)[0] == "/snapshot":
                        body = (
                            json.dumps(server.snapshot_json(), sort_keys=True)
                            + "\n"
                        ).encode("utf-8")
                        content_type = "application/json"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as error:  # a scrape must never crash the node
                    self.send_error(500, str(error))
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                return  # stdout is a protocol surface in --procs mode

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
