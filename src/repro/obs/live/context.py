"""Stitch per-process trace files into one multi-process trace.

Each process of a ``repro live run --procs`` cluster exports its own
``trace.jsonl`` with a distinct tracer origin (``n0``, ``n1``, …) baked
into every trace id, plus a ``trace_origin`` metadata event naming the
process.  Merging is therefore pure bookkeeping:

* every origin becomes one Perfetto ``pid`` (with a ``process_name``
  metadata event), so the merged file renders as N process tracks;
* span ids stay process-local — cross-process edges are expressed by the
  receiver span's ``remote_parent``/``remote_origin`` args, written when
  the router re-parented a delivery off the wire trace-context;
* a trace that appears under two or more origins is a **cross-process
  trace**: one causal gossip→admission→commit path that hopped a socket.

The stats dict returned by :func:`merge_trace_files` is what the CLI
prints and what the CI telemetry smoke job asserts on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.export import read_trace_events

PathLike = Union[str, Path]

MERGED_TRACE_NAME = "trace_merged.json"


def _file_origin(events: Sequence[Dict[str, Any]], fallback: str) -> str:
    """The ``trace_origin`` metadata value, or ``fallback``."""
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "trace_origin":
            origin = event.get("args", {}).get("origin")
            if isinstance(origin, str) and origin:
                return origin
    return fallback


def merge_trace_events(
    per_file: Sequence[Tuple[str, List[Dict[str, Any]]]],
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Merge ``(origin, events)`` pairs into one event list plus stats.

    Origins map to Perfetto pids in sorted order (pid 1, 2, …); every
    complete event keeps its span ids but gains an ``origin`` arg so
    cross-process parentage stays resolvable after the merge.
    """
    origins = sorted({origin for origin, _ in per_file})
    pid_of = {origin: index + 1 for index, origin in enumerate(origins)}
    merged: List[Dict[str, Any]] = []
    for origin in origins:
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[origin],
                "tid": 1,
                "args": {"name": f"repro node {origin}"},
            }
        )
    traces: Dict[str, set] = {}
    linked = 0
    for origin, events in per_file:
        for event in events:
            if event.get("ph") != "X":
                continue
            out = dict(event)
            out["pid"] = pid_of[origin]
            args = dict(out.get("args", {}))
            args["origin"] = origin
            out["args"] = args
            merged.append(out)
            trace_id = args.get("trace_id")
            if isinstance(trace_id, str):
                traces.setdefault(trace_id, set()).add(origin)
            if args.get("remote_parent") is not None:
                linked += 1
    cross = {
        trace_id: sorted(members)
        for trace_id, members in traces.items()
        if len(members) > 1
    }
    stats = {
        "files": len(per_file),
        "origins": origins,
        "events": sum(1 for e in merged if e.get("ph") == "X"),
        "traces": len(traces),
        "cross_process_traces": len(cross),
        "remote_linked_spans": linked,
    }
    return merged, stats


def merge_trace_files(
    sources: Iterable[PathLike], out: Optional[PathLike] = None
) -> Dict[str, Any]:
    """Merge per-process trace files; optionally write the merged trace.

    ``sources`` are trace files (or obs directories containing
    ``trace.jsonl``).  Returns the stats dict from
    :func:`merge_trace_events`, with ``"out"`` added when written.
    """
    from repro.obs.export import write_strict_json
    from repro.obs.runtime import TRACE_NAME

    per_file: List[Tuple[str, List[Dict[str, Any]]]] = []
    for index, source in enumerate(sources):
        path = Path(source)
        if path.is_dir():
            path = path / TRACE_NAME
        events = read_trace_events(path)
        per_file.append((_file_origin(events, f"p{index}"), events))
    merged, stats = merge_trace_events(per_file)
    if out is not None:
        target = write_strict_json(merged, out)
        stats["out"] = str(target)
    return stats


def read_merged_trace(path: PathLike) -> List[Dict[str, Any]]:
    """Load a merged trace written by :func:`merge_trace_files`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
