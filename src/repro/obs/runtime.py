"""Process-global observability state and the hot-path hook helpers.

Instrumented code never owns a tracer; it calls the module-level helpers
here (:func:`span`, :func:`add`, :func:`observe`, :func:`gauge_set`),
which dispatch to the process-global state.  That keeps the hooks to one
branch each, keeps tracers out of picklable object graphs (snapshots of a
durable run must not capture open trace buffers), and means a library
user can flip observability on around *any* existing entry point:

    from repro import obs

    session = obs.enable(sim_clock=lambda: engine.now)
    run_experiment(spec)
    obs.export(session, "obs-out/")
    obs.disable()

Disabled (the default), :func:`span` returns a shared no-op context
manager and the metric helpers return immediately — the overhead-guard
test proves simulation results are bit-identical either way.
"""

from __future__ import annotations

import functools
import math
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.obs.export import write_perfetto_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import EVENTS_NAME, VERDICT_NAME, MonitorSuite
from repro.obs.timeline import TIMELINE_NAME, Timeline
from repro.obs.tracer import (
    NullTracer,
    TraceContext,
    Tracer,
    _NullSpanHandle,
    _SpanHandle,
)

PathLike = Union[str, Path]

TRACE_NAME = "trace.jsonl"
METRICS_NAME = "metrics.json"


class ObsSession:
    """One enabled observability window: tracer, registry, and (optionally)
    a protocol timeline with its health monitors.

    The live-telemetry extensions (streaming ring, exposition endpoint,
    sampling profiler — DESIGN.md §14) are armed per-session via
    :meth:`start_stream` / :meth:`start_telemetry` / :meth:`start_profiler`
    and torn down by :meth:`export`.
    """

    enabled = True

    def __init__(
        self,
        sim_clock: Optional[Callable[[], float]] = None,
        max_spans: int = 2_000_000,
        timeline_interval: Optional[float] = None,
        origin: str = "n0",
    ):
        self.tracer = Tracer(
            sim_clock=sim_clock, max_spans=max_spans, origin=origin
        )
        self.metrics = MetricsRegistry()
        self.timeline: Optional[Timeline] = (
            Timeline(timeline_interval, registry=self.metrics)
            if timeline_interval is not None
            else None
        )
        self.monitors: Optional[MonitorSuite] = None
        self.stream: Optional[Any] = None
        self.server: Optional[Any] = None
        self.profiler: Optional[Any] = None

    # -- live telemetry plane --------------------------------------------------------

    def start_stream(self, directory: PathLike, max_bytes: Optional[int] = None):
        """Arm the streaming JSONL ring; flushed on every timeline tick."""
        from repro.obs.live.stream import DEFAULT_MAX_BYTES, TelemetryStream

        self.stream = TelemetryStream(
            directory,
            node=self.tracer.origin,
            max_bytes=max_bytes if max_bytes is not None else DEFAULT_MAX_BYTES,
        )
        return self.stream

    def start_telemetry(self, port: int = 0, host: str = "127.0.0.1") -> int:
        """Serve ``/metrics`` + ``/snapshot``; returns the bound port."""
        from repro.obs.live.expo import TelemetryServer

        self.server = TelemetryServer(self, port=port, host=host)
        return self.server.start()

    def start_profiler(
        self, hz: Optional[float] = None, thread_id: Optional[int] = None
    ):
        """Start the background stack sampler on the calling thread."""
        from repro.obs.live.profiler import DEFAULT_HZ, SamplingProfiler

        self.profiler = SamplingProfiler(
            hz=hz if hz is not None else DEFAULT_HZ, thread_id=thread_id
        )
        self.profiler.start()
        return self.profiler

    def attach_runtime(self, runtime: Any) -> None:
        """Point the timeline probe (and monitors) at a live runtime.

        Accepts a federated runtime (anything with cluster ``domains``),
        anything with a ``cluster`` attribute (a ``SimRuntime``), or a
        cluster itself.  No-op when the session has no timeline.
        """
        if self.timeline is None:
            return
        if hasattr(runtime, "domains"):
            self.timeline.attach(runtime)
            if self.monitors is None:
                self.monitors = MonitorSuite.for_federation(runtime)
            return
        cluster = getattr(runtime, "cluster", runtime)
        self.timeline.attach(cluster)
        if self.monitors is None:
            self.monitors = MonitorSuite.for_config(cluster.config)

    def export(self, directory: PathLike, timebase: str = "wall") -> "Path":
        """Write ``trace.jsonl`` + ``metrics.json`` (and, when the timeline
        is on, ``timeline.jsonl`` + ``events.jsonl`` + ``verdict.json``;
        when the profiler ran, ``profile_folded.txt``) into ``directory``.

        Also tears the live plane down: the exposition server stops, the
        profiler stops, and the streaming ring is closed.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        if self.server is not None:
            self.server.stop()
            self.server = None
        if self.profiler is not None:
            self.profiler.stop()
        # Dropped spans were silently swallowed before; surface them as a
        # counter so reports and scrapes can warn about trace truncation.
        dropped = self.tracer.dropped_spans
        if dropped:
            counter = self.metrics.counter("obs.spans_dropped")
            counter.inc(dropped - counter.value)
        write_perfetto_jsonl(
            self.tracer.finished,
            target / TRACE_NAME,
            timebase=timebase,
            origin=self.tracer.origin,
        )
        self.metrics.write_json(target / METRICS_NAME)
        if self.timeline is not None:
            self.timeline.write_jsonl(target / TIMELINE_NAME)
        if self.monitors is not None:
            self.monitors.write_events(target / EVENTS_NAME)
            self.monitors.write_verdict(target / VERDICT_NAME)
        if self.profiler is not None:
            from repro.obs.live.profiler import PROFILE_NAME

            self.profiler.write_folded(target / PROFILE_NAME)
            self.profiler = None
        if self.stream is not None:
            self.stream.close()
            self.stream = None
        return target


class _Disabled:
    """Singleton standing in for "no session": enabled is False."""

    enabled = False
    tracer = NullTracer()
    metrics = MetricsRegistry()  # writes here are unreachable via helpers
    timeline = None
    monitors = None
    stream = None
    server = None
    profiler = None


_DISABLED = _Disabled()

#: The process-global state every hook reads: either ``_DISABLED`` or a
#: live :class:`ObsSession`.
_state: Any = _DISABLED


def enable(
    sim_clock: Optional[Callable[[], float]] = None,
    max_spans: int = 2_000_000,
    timeline_interval: Optional[float] = None,
    origin: str = "n0",
) -> ObsSession:
    """Turn observability on; returns the live session.

    ``timeline_interval`` (simulated seconds) additionally arms the
    protocol timeline sampler and its health monitors; they start
    producing data once a runtime attaches (``build_runtime`` and
    ``resume_run`` do this automatically).  ``origin`` is the process
    identity baked into trace ids (``n{id}`` for live node processes).
    """
    global _state
    session = ObsSession(
        sim_clock=sim_clock,
        max_spans=max_spans,
        timeline_interval=timeline_interval,
        origin=origin,
    )
    _state = session
    return session


def disable() -> None:
    """Turn observability off (hooks revert to the null path)."""
    global _state
    _state = _DISABLED


def is_enabled() -> bool:
    return _state.enabled


def active_session() -> Optional[ObsSession]:
    """The live session, or None when disabled."""
    return _state if _state.enabled else None


def set_sim_clock(sim_clock: Optional[Callable[[], float]]) -> None:
    """Attach/detach the simulated-time clock on the live tracer."""
    if _state.enabled:
        _state.tracer.sim_clock = sim_clock


def attach_runtime(runtime: Any) -> None:
    """Point the live session's timeline at a runtime (no-op when off)."""
    if _state.enabled:
        _state.attach_runtime(runtime)


def timeline_tick(now: float) -> None:
    """Advance the timeline sampler to simulated time ``now``.

    Called from the engine's (already enabled-gated) observability
    branch; samples feed straight into the monitor suite.  Reads sim
    state only — never mutates it or touches the event queue.
    """
    state = _state
    timeline = state.timeline
    if timeline is None:
        return
    sample = timeline.maybe_sample(now)
    if sample is None:
        return
    if state.monitors is not None:
        state.monitors.observe(sample)
    # The streaming ring rides the timeline cadence: one flush per new
    # sample, so streaming inherits the tick's digest-neutrality.
    if state.stream is not None:
        state.stream.on_sample(sample, state.metrics, state.monitors)


# -- hot-path hooks -------------------------------------------------------------------


def span(
    name: str, category: str = "", **attrs: Any
) -> Union[_SpanHandle, _NullSpanHandle]:
    """Open a span on the live tracer (no-op context manager when off)."""
    return _state.tracer.span(name, category, **attrs)


def current_trace_context() -> Optional[TraceContext]:
    """Wire-ready context of the innermost open span (None when off/idle).

    This is what the net layer serialises into the ``"tc"`` envelope
    field — see :meth:`repro.net.router.SocketNetwork.send`.
    """
    if not _state.enabled:
        return None
    return _state.tracer.current_context()


def remote_span(
    name: str, category: str = "", ctx: Optional[TraceContext] = None, **attrs: Any
) -> Union[_SpanHandle, _NullSpanHandle]:
    """Open a span continuing a received trace context (plain span when
    ``ctx`` is None; no-op when observability is off)."""
    tracer = _state.tracer
    if ctx is None:
        return tracer.span(name, category, **attrs)
    return tracer.remote_span(name, category, ctx, **attrs)


def add(name: str, amount: int = 1) -> None:
    """Increment a counter (no-op when off)."""
    if _state.enabled:
        _state.metrics.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op when off)."""
    if _state.enabled:
        _state.metrics.histogram(name).record(value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge (no-op when off)."""
    if _state.enabled:
        _state.metrics.gauge(name).set(value)


def traced_solver(name: str) -> Callable:
    """Decorate a UFL solver with a per-solve span (size + cost attributes).

    The wrapped function must take the :class:`~repro.facility.problem.
    UFLProblem` as its first argument and return a ``UFLSolution``; both
    are accessed by duck typing so this module stays dependency-free.
    Disabled, the wrapper is a single branch around the original call.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(problem, *args, **kwargs):
            state = _state
            if not state.enabled:
                return fn(problem, *args, **kwargs)
            with span(
                "facility.solve",
                "facility",
                solver=name,
                facilities=problem.num_facilities,
                clients=problem.num_clients,
            ) as handle:
                solution = fn(problem, *args, **kwargs)
                cost = solution.total_cost(problem)
                handle.set(cost=cost, replicas=solution.replica_count)
            state.metrics.counter(f"facility.{name}.solves").inc()
            if math.isfinite(cost):
                state.metrics.histogram("facility.solve_cost").record(cost)
            return solution

        return wrapper

    return decorate
