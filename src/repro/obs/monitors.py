"""Online protocol health monitors over the timeline sample stream.

Each monitor watches one invariant the paper's design promises and emits
structured events on *transitions* (healthy → degraded and back), not on
every degraded sample — a stalled chain produces one ``critical`` event
and one ``info`` recovery event, not a thousand repeats.  The invariant
catalogue (see DESIGN.md §9):

* **chain-stall** — the longest chain must keep growing; the PoS race
  (Eq. 7–9) guarantees some node's hit eventually clears the rising
  target, so no growth for many multiples of ``t0`` means the protocol
  (or every miner) is down.
* **interval-drift** — Eq. 14 chooses ``B = M/((n+1)·t0·Ū)`` precisely
  so the expected inter-block time is ``t0``; a sustained EWMA outside a
  tolerance band around ``t0`` means the amendment is mis-tracking.
* **fairness-pressure** — Eq. 1's cost ``f_i = W(i)/(W_tol(i) − W(i))``
  blows up as a node fills; the allocator should keep every node away
  from saturation.
* **stake-concentration** — storage incentives feed stake (Section
  IV-C); runaway top-k stake share would collapse PoS to oligarchy.
* **leader-flap** — Raft should elect rarely; rapid leader turnover
  signals timeout/partition trouble.
* **coverage-drop** — recent blocks are supposed to be pervasively
  stored (Section IV-C); a coverage collapse defeats offline recovery.
* **admission-rejections** — honest traffic passes every admission
  check, so any rejection means forged or flooded inbound messages
  (DESIGN.md §11's threat model); the monitor flags windows in which
  rejections are actively accruing.
* **peer-quarantine** — peers past the misbehavior threshold are cut
  off; any active quarantine entry is a standing degradation.

:class:`MonitorSuite` fans samples out to every monitor, accumulates the
events, and renders a machine-readable end-of-run :meth:`verdict`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

EVENTS_NAME = "events.jsonl"
VERDICT_NAME = "verdict.json"
EVENTS_SCHEMA = "repro.obs.events/v1"
VERDICT_SCHEMA = "repro.obs.verdict/v1"

#: Severity names in increasing order of badness.
SEVERITIES = ("info", "warning", "critical")


def severity_rank(severity: str) -> int:
    """0 = info, 1 = warning, 2 = critical; unknown severities reject."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}") from None


@dataclass(frozen=True)
class MonitorEvent:
    """One structured health event."""

    time: float
    monitor: str
    severity: str
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        def scrub(v: Any) -> Any:
            if isinstance(v, float) and not math.isfinite(v):
                return None
            return v

        return {
            "time": scrub(self.time),
            "monitor": self.monitor,
            "severity": self.severity,
            "message": self.message,
            "value": scrub(self.value),
            "threshold": scrub(self.threshold),
        }


class Monitor:
    """Base class: a named level machine emitting events on transitions.

    Subclasses implement :meth:`level` returning the current severity
    level ("ok", "warning", or "critical") plus a description; the base
    class turns level *changes* into events (escalations at the new
    severity, de-escalations to "ok" as ``info`` recoveries).
    """

    name = "monitor"

    def __init__(self) -> None:
        self._level = "ok"

    def level(self, sample: Dict[str, Any]) -> tuple:
        """(level, message, value, threshold) for this sample."""
        raise NotImplementedError

    def check(self, sample: Dict[str, Any]) -> List[MonitorEvent]:
        level, message, value, threshold = self.level(sample)
        if level == self._level:
            return []
        previous, self._level = self._level, level
        if level == "ok":
            return [
                MonitorEvent(
                    time=sample["t"],
                    monitor=self.name,
                    severity="info",
                    message=f"recovered (was {previous}): {message}",
                    value=value,
                    threshold=threshold,
                )
            ]
        return [
            MonitorEvent(
                time=sample["t"],
                monitor=self.name,
                severity=level,
                message=message,
                value=value,
                threshold=threshold,
            )
        ]


class ChainStallMonitor(Monitor):
    """Critical when the longest chain stops growing for ``factor · t0``."""

    name = "chain-stall"

    def __init__(self, t0: float, factor: float = 5.0):
        super().__init__()
        self.stall_after = factor * t0
        self._last_height: Optional[int] = None
        self._last_progress = 0.0

    def level(self, sample: Dict[str, Any]) -> tuple:
        height = sample["height"]
        now = sample["t"]
        if self._last_height is None or height > self._last_height:
            self._last_height = height
            self._last_progress = now
        stalled_for = now - self._last_progress
        if stalled_for > self.stall_after:
            return (
                "critical",
                f"chain stalled at height {height} for {stalled_for:.0f}s",
                stalled_for,
                self.stall_after,
            )
        return ("ok", f"chain growing (height {height})", stalled_for, self.stall_after)


class IntervalDriftMonitor(Monitor):
    """Warning when the interval EWMA leaves the band around ``t0`` (Eq. 14)."""

    name = "interval-drift"

    def __init__(
        self,
        t0: float,
        low_ratio: float = 0.5,
        high_ratio: float = 2.0,
        min_intervals: int = 5,
    ):
        super().__init__()
        self.t0 = t0
        self.low_ratio = low_ratio
        self.high_ratio = high_ratio
        self.min_intervals = min_intervals

    def level(self, sample: Dict[str, Any]) -> tuple:
        ratio = sample.get("interval_ratio")
        seen = sample.get("intervals_seen", 0)
        if ratio is None or not math.isfinite(ratio) or seen < self.min_intervals:
            return ("ok", "not enough intervals yet", ratio, None)
        if ratio > self.high_ratio:
            return (
                "warning",
                f"blocks {ratio:.2f}× slower than t0={self.t0:g}s",
                ratio,
                self.high_ratio,
            )
        if ratio < self.low_ratio:
            return (
                "warning",
                f"blocks {1 / ratio:.2f}× faster than t0={self.t0:g}s",
                ratio,
                self.low_ratio,
            )
        return ("ok", f"interval EWMA at {ratio:.2f}×t0", ratio, self.high_ratio)


class FairnessMonitor(Monitor):
    """Fairness-degree pressure (Eq. 1): warn near W_tol, critical at it.

    ``f_i = W/(W_tol − W) ≥ 9`` means the node is ≥ 90 % full; a
    saturated node makes the fairness cost infinite and the allocator's
    objective meaningless for that node.
    """

    name = "fairness-pressure"

    def __init__(self, warn_fairness: float = 9.0):
        super().__init__()
        self.warn_fairness = warn_fairness

    def level(self, sample: Dict[str, Any]) -> tuple:
        saturated = sample.get("saturated_nodes", 0)
        fairness = sample.get("fairness_max")
        if saturated:
            return (
                "critical",
                f"{saturated} node(s) at W_tol (fairness cost infinite)",
                float(saturated),
                0.0,
            )
        if fairness is not None and math.isfinite(fairness):
            if fairness >= self.warn_fairness:
                return (
                    "warning",
                    f"max fairness degree {fairness:.1f} (node ≥ 90% full)",
                    fairness,
                    self.warn_fairness,
                )
            return ("ok", f"max fairness degree {fairness:.2f}", fairness, self.warn_fairness)
        return ("ok", "no fairness data", None, self.warn_fairness)


class StakeConcentrationMonitor(Monitor):
    """Warn when top-k stake share breaches a cap or drifts from baseline."""

    name = "stake-concentration"

    def __init__(self, cap: float = 0.8, max_drift: float = 0.2):
        super().__init__()
        self.cap = cap
        self.max_drift = max_drift
        self._baseline: Optional[float] = None

    def level(self, sample: Dict[str, Any]) -> tuple:
        share = sample.get("stake_topk_share")
        if share is None or not math.isfinite(share):
            return ("ok", "no stake data", None, self.cap)
        if self._baseline is None:
            self._baseline = share
        if share > self.cap:
            return (
                "warning",
                f"top-k stake share {share:.2f} over cap {self.cap:.2f}",
                share,
                self.cap,
            )
        drift = share - self._baseline
        if drift > self.max_drift:
            return (
                "warning",
                f"top-k stake share drifted +{drift:.2f} from baseline "
                f"{self._baseline:.2f}",
                share,
                self._baseline + self.max_drift,
            )
        return ("ok", f"top-k stake share {share:.2f}", share, self.cap)


class LeaderFlapMonitor(Monitor):
    """Warn when Raft leadership changes too often within a sliding window."""

    name = "leader-flap"

    def __init__(self, window_seconds: float = 60.0, max_changes: int = 3):
        super().__init__()
        self.window_seconds = window_seconds
        self.max_changes = max_changes
        self._history: List[tuple] = []  # (time, cumulative change count)

    def level(self, sample: Dict[str, Any]) -> tuple:
        changes = sample.get("raft_leader_changes")
        if changes is None:
            return ("ok", "no raft in this run", None, None)
        now = sample["t"]
        self._history.append((now, changes))
        cutoff = now - self.window_seconds
        while len(self._history) > 1 and self._history[1][0] <= cutoff:
            self._history.pop(0)
        recent = changes - self._history[0][1]
        if recent > self.max_changes:
            return (
                "warning",
                f"{recent} leader changes in {self.window_seconds:.0f}s",
                float(recent),
                float(self.max_changes),
            )
        return ("ok", f"{recent} recent leader changes", float(recent), float(self.max_changes))


class CoverageMonitor(Monitor):
    """Recent-block coverage floor (Section IV-C pervasiveness)."""

    name = "coverage-drop"

    def __init__(self, warn_floor: float = 0.5, critical_floor: float = 0.2):
        super().__init__()
        self.warn_floor = warn_floor
        self.critical_floor = critical_floor

    def level(self, sample: Dict[str, Any]) -> tuple:
        coverage = sample.get("coverage_recent")
        if coverage is None or not math.isfinite(coverage):
            return ("ok", "no blocks yet", None, self.warn_floor)
        if coverage < self.critical_floor:
            return (
                "critical",
                f"recent-block coverage {coverage:.2f} below {self.critical_floor:.2f}",
                coverage,
                self.critical_floor,
            )
        if coverage < self.warn_floor:
            return (
                "warning",
                f"recent-block coverage {coverage:.2f} below {self.warn_floor:.2f}",
                coverage,
                self.warn_floor,
            )
        return ("ok", f"recent-block coverage {coverage:.2f}", coverage, self.warn_floor)


class AdmissionRejectionMonitor(Monitor):
    """Warn while admission rejections are actively accruing.

    The counter is cumulative across the cluster, so the monitor levels
    on its *delta* between samples: an attack window shows up as one
    warning event when rejections start and one recovery event after the
    adversary stops.  Honest runs never reject, so this never fires.
    """

    name = "admission-rejections"

    def __init__(self) -> None:
        super().__init__()
        self._last = 0

    def level(self, sample: Dict[str, Any]) -> tuple:
        total = sample.get("chaos_rejections")
        if total is None:
            return ("ok", "no admission data", None, None)
        fresh = total - self._last
        self._last = total
        if fresh > 0:
            return (
                "warning",
                f"{fresh} inbound message(s) rejected since last sample "
                f"({total} total)",
                float(fresh),
                0.0,
            )
        return ("ok", f"no new rejections ({total} total)", 0.0, 0.0)


class QuarantineMonitor(Monitor):
    """Warn while any peer-quarantine entry is active.

    Quarantine is sticky for the rest of the run, so unlike the
    rejection monitor this reflects a *standing* state, not a rate.
    """

    name = "peer-quarantine"

    def level(self, sample: Dict[str, Any]) -> tuple:
        count = sample.get("chaos_quarantined")
        if count is None:
            return ("ok", "no admission data", None, None)
        if count > 0:
            return (
                "warning",
                f"{count} peer-quarantine entr{'y' if count == 1 else 'ies'} active",
                float(count),
                0.0,
            )
        return ("ok", "no peers quarantined", 0.0, 0.0)


class StorageUnboundedMonitor(Monitor):
    """Critical when the hot block footprint exceeds the lifecycle bound.

    Only registered when the run has a lifecycle spec — without one the
    chain is intentionally unbounded and the timeline carries no
    ``hot_blocks``/``hot_bound`` fields to level on.  Firing means the
    pruning pipeline stalled: checkpoints stopped landing, or
    ``maybe_prune`` stopped being reached.
    """

    name = "storage-unbounded"

    def level(self, sample: Dict[str, Any]) -> tuple:
        hot = sample.get("hot_blocks")
        bound = sample.get("hot_bound")
        if hot is None or bound is None:
            return ("ok", "no lifecycle data", None, None)
        if hot > bound:
            return (
                "critical",
                f"{hot} hot block bodies exceed the lifecycle bound of {bound}",
                float(hot),
                float(bound),
            )
        return ("ok", f"{hot} hot block bodies within bound {bound}", float(hot), float(bound))


class PrefixedMonitor(Monitor):
    """Adapt a single-cluster monitor to one ``c{k}_``-namespaced stream.

    Federated timelines carry every cluster's fields under a
    ``c{cluster_id}_`` prefix.  This wrapper strips the prefix back off
    (into a shadow view — the sample itself is untouched) and delegates
    to the wrapped monitor, whose stateful logic (stall cursors, EWMA
    baselines, rejection deltas) runs unchanged against its own cluster.
    Emitted events carry a ``c{k}/`` qualified monitor name.
    """

    def __init__(self, inner: Monitor, prefix: str, label: str):
        super().__init__()
        self.inner = inner
        self.prefix = prefix
        self.name = inner.name = f"{label}/{inner.name}"

    def level(self, sample: Dict[str, Any]) -> tuple:
        view = dict(sample)
        for key, value in sample.items():
            if key.startswith(self.prefix):
                view[key[len(self.prefix):]] = value
        return self.inner.level(view)


class DirectoryStalenessMonitor(Monitor):
    """Fog-directory freshness: every super-peer replica must keep up.

    The home peer refreshes its clusters' summaries every
    ``refresh_seconds`` and gossip carries them to the other peers, so
    in a healthy federation no replica entry ages past a small multiple
    of the refresh period.  A stuck refresh task, dead gossip, or a
    cluster that never reached the directory all surface here.
    """

    name = "directory-staleness"

    def __init__(
        self,
        refresh_seconds: float,
        warn_factor: float = 3.0,
        critical_factor: float = 10.0,
    ):
        super().__init__()
        self.warn_after = warn_factor * refresh_seconds
        self.critical_after = critical_factor * refresh_seconds

    def level(self, sample: Dict[str, Any]) -> tuple:
        staleness = sample.get("fed_directory_staleness")
        if staleness is None:
            return ("ok", "no federation directory", None, None)
        if staleness > self.critical_after:
            return (
                "critical",
                f"directory entry stale for {staleness:.0f}s",
                staleness,
                self.critical_after,
            )
        if staleness > self.warn_after:
            return (
                "warning",
                f"directory entry stale for {staleness:.0f}s",
                staleness,
                self.warn_after,
            )
        return ("ok", f"directory staleness {staleness:.0f}s", staleness, self.warn_after)


class LookupFailureMonitor(Monitor):
    """Warn while cross-cluster lookups are actively failing.

    The counter is cumulative across the fog tier, so (like the
    admission-rejection monitor) this levels on the *delta* between
    samples: a window of failures — a Byzantine target cluster, a stale
    directory past its retry budget — shows up as one warning event and
    one recovery event.
    """

    name = "lookup-failures"

    def __init__(self) -> None:
        super().__init__()
        self._last = 0

    def level(self, sample: Dict[str, Any]) -> tuple:
        total = sample.get("fed_lookup_failures")
        if total is None:
            return ("ok", "no federation lookups", None, None)
        fresh = total - self._last
        self._last = total
        if fresh > 0:
            return (
                "warning",
                f"{fresh} cross-cluster lookup(s) failed since last sample "
                f"({total} total)",
                float(fresh),
                0.0,
            )
        return ("ok", f"no new lookup failures ({total} total)", 0.0, 0.0)


class FogQuarantineMonitor(Monitor):
    """Warn whenever a super-peer sits in fog quarantine.

    A quarantine is the fog tier working as designed against a
    misbehaving peer — but it halves the tier's capacity and means
    re-homed clusters ride a single remaining peer, so the operator
    should know the moment it happens (and the honest-run contract is
    that it never does).
    """

    name = "fog-quarantine"

    def level(self, sample: Dict[str, Any]) -> tuple:
        quarantined = sample.get("fed_fog_quarantined")
        if quarantined is None:
            return ("ok", "no fog tier", None, None)
        if quarantined > 0:
            return (
                "warning",
                f"{quarantined} super-peer(s) in fog quarantine",
                float(quarantined),
                0.0,
            )
        return ("ok", "no super-peers quarantined", 0.0, 0.0)


class DirectoryDivergenceMonitor(Monitor):
    """Critical while an active directory replica contradicts a chain.

    Divergent entries are ones whose checkpoint digest fails the
    cross-check against the summarised cluster's actual chain — honest
    entries never do (they are built *from* those chains), so any
    positive count means poison is sitting in a replica lookups still
    consult.  Recovers once quarantine cuts the poisoned replica out.
    """

    name = "directory-divergence"

    def level(self, sample: Dict[str, Any]) -> tuple:
        divergent = sample.get("fed_directory_divergence")
        if divergent is None:
            return ("ok", "no fog tier", None, None)
        if divergent > 0:
            return (
                "critical",
                f"{divergent} directory entr(ies) contradict their cluster chain",
                float(divergent),
                0.0,
            )
        return ("ok", "directory replicas consistent", 0.0, 0.0)


class MonitorSuite:
    """All monitors for a run, plus the accumulated event stream."""

    def __init__(self, monitors: List[Monitor]):
        self.monitors = monitors
        self.events: List[MonitorEvent] = []

    @classmethod
    def for_config(cls, config: Any) -> "MonitorSuite":
        """Default monitor set, thresholds derived from a SystemConfig."""
        t0 = config.expected_block_interval
        monitors: List[Monitor] = [
            ChainStallMonitor(t0),
            IntervalDriftMonitor(t0),
            FairnessMonitor(),
            StakeConcentrationMonitor(),
            LeaderFlapMonitor(),
            CoverageMonitor(),
            AdmissionRejectionMonitor(),
            QuarantineMonitor(),
        ]
        if getattr(config, "lifecycle", None) is not None:
            monitors.append(StorageUnboundedMonitor())
        return cls(monitors)

    @classmethod
    def for_federation(cls, federation: Any) -> "MonitorSuite":
        """Federation monitor set: fog-tier monitors plus one prefixed
        copy of the per-cluster set for each domain.

        LeaderFlapMonitor is omitted — the Raft registry fields it reads
        are process-global, not per-cluster, so it cannot be namespaced.
        """
        spec = federation.spec
        t0 = spec.config.expected_block_interval
        monitors: List[Monitor] = [
            DirectoryStalenessMonitor(spec.directory_refresh_seconds),
            LookupFailureMonitor(),
            FogQuarantineMonitor(),
            DirectoryDivergenceMonitor(),
        ]
        lifecycle = getattr(spec.config, "lifecycle", None) is not None
        for domain in federation.domains:
            label = f"c{domain.cluster_id}"
            prefix = f"{label}_"
            per_cluster: List[Monitor] = [
                ChainStallMonitor(t0),
                IntervalDriftMonitor(t0),
                FairnessMonitor(),
                StakeConcentrationMonitor(),
                CoverageMonitor(),
                AdmissionRejectionMonitor(),
                QuarantineMonitor(),
            ]
            if lifecycle:
                per_cluster.append(StorageUnboundedMonitor())
            monitors.extend(
                PrefixedMonitor(inner, prefix, label) for inner in per_cluster
            )
        return cls(monitors)

    def observe(self, sample: Dict[str, Any]) -> List[MonitorEvent]:
        """Feed one timeline sample to every monitor; returns new events."""
        fresh: List[MonitorEvent] = []
        for monitor in self.monitors:
            fresh.extend(monitor.check(sample))
        self.events.extend(fresh)
        return fresh

    def verdict(self) -> Dict[str, Any]:
        """Machine-readable end-of-run health verdict.

        ``status`` is the worst severity of any *alert* (warning /
        critical) emitted during the run — recoveries don't erase the
        fact that the invariant was violated.  ``current`` reflects only
        monitors still in a degraded level at the end.
        """
        worst = -1
        by_monitor: Dict[str, Dict[str, Any]] = {}
        for monitor in self.monitors:
            by_monitor[monitor.name] = {
                "events": 0,
                "worst": None,
                "current_level": monitor._level,
            }
        for event in self.events:
            entry = by_monitor.setdefault(
                event.monitor, {"events": 0, "worst": None, "current_level": "ok"}
            )
            entry["events"] += 1
            if event.severity == "info":
                continue
            rank = severity_rank(event.severity)
            worst = max(worst, rank)
            if entry["worst"] is None or rank > severity_rank(entry["worst"]):
                entry["worst"] = event.severity
        degraded_now = sorted(
            name
            for name, entry in by_monitor.items()
            if entry["current_level"] != "ok"
        )
        from repro.version import package_version

        return {
            "schema": VERDICT_SCHEMA,
            "version": package_version(),
            "status": "healthy" if worst < 0 else SEVERITIES[worst],
            "alerts": sum(1 for e in self.events if e.severity != "info"),
            "events_total": len(self.events),
            "degraded_now": degraded_now,
            "by_monitor": by_monitor,
        }

    # -- persistence ------------------------------------------------------------------

    def write_events(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            header = {"schema": EVENTS_SCHEMA, "events": len(self.events)}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        return target

    def write_verdict(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(self.verdict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Read an events JSONL file back (header line skipped)."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if line_number == 0 and record.get("schema") == EVENTS_SCHEMA:
                continue
            events.append(record)
    return events


def read_verdict(path: PathLike) -> Dict[str, Any]:
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
