"""Compare two observed runs and call regressions.

``repro compare DIR_A DIR_B`` treats A as the baseline and B as the
candidate.  Each timeline series is compared at its *final* sample (the
end-of-run protocol state) under a direction-aware threshold: "higher is
better" metrics regress when B ends meaningfully below A, "lower is
better" the other way, and target-tracking metrics (the interval ratio,
whose ideal value is 1.0) regress when B ends meaningfully further from
the target than A.  The end-of-run verdict status regresses whenever B's
is strictly worse than A's (healthy < warning < critical).

Thresholds combine a relative and an absolute slack — a delta must clear
``max(rel · |baseline|, abs)`` to count — so identical-seed runs compare
clean and tiny numerical wiggles don't page anyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.metrics.report import render_table
from repro.obs.monitors import severity_rank
from repro.obs.report import load_run

#: Verdict statuses in increasing order of badness.
_STATUS_ORDER = ("healthy", "warning", "critical")


@dataclass(frozen=True)
class MetricRule:
    """How one timeline series is judged across runs."""

    key: str
    #: "higher" | "lower" | "target" (closer to ``target`` is better).
    direction: str
    rel_tolerance: float = 0.0
    abs_tolerance: float = 0.0
    target: float = 0.0


#: The regression ruleset.  Queue depth is deliberately absent — it is a
#: scheduling detail, not a protocol property.
RULES = [
    MetricRule("height", "higher", rel_tolerance=0.05, abs_tolerance=1.0),
    MetricRule("interval_ratio", "target", target=1.0, abs_tolerance=0.25),
    MetricRule("fairness_max", "lower", rel_tolerance=0.25, abs_tolerance=0.5),
    MetricRule("saturated_nodes", "lower", abs_tolerance=0.0),
    MetricRule("storage_gini", "lower", abs_tolerance=0.05),
    MetricRule("stake_topk_share", "lower", abs_tolerance=0.1),
    MetricRule("coverage_recent", "higher", abs_tolerance=0.1),
]


@dataclass
class Comparison:
    """One compared quantity."""

    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta: Optional[float]
    regressed: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        def scrub(v: Any) -> Any:
            if isinstance(v, float) and not math.isfinite(v):
                return None
            return v

        return {
            "metric": self.metric,
            "baseline": scrub(self.baseline),
            "candidate": scrub(self.candidate),
            "delta": scrub(self.delta),
            "regressed": self.regressed,
            "detail": self.detail,
        }


@dataclass
class ComparisonResult:
    """Everything ``repro compare`` decides."""

    baseline_dir: str
    candidate_dir: str
    comparisons: List[Comparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.obs.compare/v1",
            "baseline": self.baseline_dir,
            "candidate": self.candidate_dir,
            "regressed": self.regressed,
            "regressions": len(self.regressions),
            "comparisons": [c.to_dict() for c in self.comparisons],
        }


def _final_value(samples: List[Dict[str, Any]], key: str) -> Optional[float]:
    """Last finite value of a series, or None when it has none."""
    for sample in reversed(samples):
        value = sample.get(key)
        if value is not None and math.isfinite(float(value)):
            return float(value)
    return None


def _badness(rule: MetricRule, value: float) -> float:
    """A scalar where larger is worse, per the rule's direction."""
    if rule.direction == "higher":
        return -value
    if rule.direction == "lower":
        return value
    if rule.direction == "target":
        return abs(value - rule.target)
    raise ValueError(f"unknown direction {rule.direction!r}")


def _compare_metric(
    rule: MetricRule,
    samples_a: List[Dict[str, Any]],
    samples_b: List[Dict[str, Any]],
) -> Comparison:
    baseline = _final_value(samples_a, rule.key)
    candidate = _final_value(samples_b, rule.key)
    if baseline is None or candidate is None:
        return Comparison(
            metric=rule.key,
            baseline=baseline,
            candidate=candidate,
            delta=None,
            regressed=False,
            detail="missing in one run",
        )
    worsening = _badness(rule, candidate) - _badness(rule, baseline)
    slack = max(rule.rel_tolerance * abs(baseline), rule.abs_tolerance)
    regressed = worsening > slack
    return Comparison(
        metric=rule.key,
        baseline=baseline,
        candidate=candidate,
        delta=candidate - baseline,
        regressed=regressed,
        detail=(
            f"worse by {worsening:.4g} (allowed {slack:.4g})"
            if regressed
            else "ok"
        ),
    )


def _compare_verdicts(
    verdict_a: Optional[Dict[str, Any]], verdict_b: Optional[Dict[str, Any]]
) -> Optional[Comparison]:
    if verdict_a is None or verdict_b is None:
        return None
    status_a = verdict_a.get("status", "healthy")
    status_b = verdict_b.get("status", "healthy")
    rank_a = _STATUS_ORDER.index(status_a)
    rank_b = _STATUS_ORDER.index(status_b)
    regressed = rank_b > rank_a
    return Comparison(
        metric="verdict",
        baseline=float(rank_a),
        candidate=float(rank_b),
        delta=float(rank_b - rank_a),
        regressed=regressed,
        detail=f"{status_a} → {status_b}",
    )


def _compare_alerts(
    verdict_a: Optional[Dict[str, Any]], verdict_b: Optional[Dict[str, Any]]
) -> Optional[Comparison]:
    """New alerting monitors in B that were silent in A are regressions."""
    if verdict_a is None or verdict_b is None:
        return None

    def alerting(verdict: Dict[str, Any]) -> Dict[str, str]:
        return {
            name: entry["worst"]
            for name, entry in verdict.get("by_monitor", {}).items()
            if entry.get("worst") is not None
        }

    alerts_a = alerting(verdict_a)
    alerts_b = alerting(verdict_b)
    new_or_worse = sorted(
        name
        for name, worst in alerts_b.items()
        if name not in alerts_a
        or severity_rank(worst) > severity_rank(alerts_a[name])
    )
    return Comparison(
        metric="alerting_monitors",
        baseline=float(len(alerts_a)),
        candidate=float(len(alerts_b)),
        delta=float(len(alerts_b) - len(alerts_a)),
        regressed=bool(new_or_worse),
        detail=(
            "new/worse: " + ", ".join(new_or_worse) if new_or_worse else "ok"
        ),
    )


def compare_runs(baseline_dir: Any, candidate_dir: Any) -> ComparisonResult:
    """Load and compare two observed runs (baseline first)."""
    run_a = load_run(baseline_dir)
    run_b = load_run(candidate_dir)
    result = ComparisonResult(
        baseline_dir=str(run_a["directory"]),
        candidate_dir=str(run_b["directory"]),
    )
    for rule in RULES:
        result.comparisons.append(
            _compare_metric(rule, run_a["samples"], run_b["samples"])
        )
    for extra in (
        _compare_verdicts(run_a["verdict"], run_b["verdict"]),
        _compare_alerts(run_a["verdict"], run_b["verdict"]),
    ):
        if extra is not None:
            result.comparisons.append(extra)
    return result


def render_comparison(result: ComparisonResult) -> str:
    """Terminal rendering of a comparison."""
    rows = [
        [
            c.metric,
            "-" if c.baseline is None else c.baseline,
            "-" if c.candidate is None else c.candidate,
            "-" if c.delta is None else c.delta,
            "REGRESSED" if c.regressed else "ok",
            c.detail,
        ]
        for c in result.comparisons
    ]
    table = render_table(
        f"compare: {result.baseline_dir} (baseline) vs "
        f"{result.candidate_dir} (candidate)",
        ["metric", "baseline", "candidate", "delta", "status", "detail"],
        rows,
    )
    summary = (
        f"{len(result.regressions)} regression(s) detected"
        if result.regressed
        else "no regressions"
    )
    return f"{table}\n\n{summary}"
