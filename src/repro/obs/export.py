"""Chrome-trace / Perfetto export of finished spans.

The on-disk format is the Trace Event Format's *JSON Array* flavour,
written one event per line::

    [
    {"name": "solve", "cat": "facility", "ph": "X", ...},
    {"name": "fsync", "cat": "persist", "ph": "X", ...},

The spec explicitly permits the missing ``]`` ("the file can be
incomplete"), so the file is simultaneously

* directly loadable in https://ui.perfetto.dev and ``chrome://tracing``, and
* line-oriented (JSONL after the first line): streamable while a run is
  still in flight, greppable, and parseable a line at a time — which is
  how :func:`read_trace_events` and the schema test consume it.

Each span becomes one complete event (``"ph": "X"``) on the **wall-time**
timeline by default — the profiling question is where the *process*
spends real time — with the simulated-time interval preserved in
``args.sim_start_s`` / ``args.sim_dur_s``.  ``timebase="sim"`` flips the
two, rendering the run on protocol time instead (block races, elections,
recovery windows).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.tracer import Span

PathLike = Union[str, Path]

#: ``pid`` used for every event — one simulated process.
TRACE_PID = 1

#: ``tid`` used for every event: a single track keeps parent/child spans
#: visually nested (Chrome nests complete events on one track by time
#: containment); categories separate subsystems instead.
TRACE_TID = 1


def span_to_event(span: Span, timebase: str = "wall") -> Dict[str, Any]:
    """One span → one Trace Event Format 'complete' event."""
    if timebase == "wall":
        ts_us = span.wall_start_ns / 1e3
        dur_us = span.wall_duration_ns / 1e3
    elif timebase == "sim":
        ts_us = (span.sim_start or 0.0) * 1e6
        dur_us = span.sim_duration * 1e6
    else:
        raise ValueError(f"timebase must be 'wall' or 'sim', not {timebase!r}")
    args: Dict[str, Any] = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "wall_dur_us": span.wall_duration_ns / 1e3,
    }
    if span.sim_start is not None:
        args["sim_start_s"] = span.sim_start
        args["sim_dur_s"] = span.sim_duration
    if span.trace_id is not None:
        args["trace_id"] = span.trace_id
    if span.remote_parent is not None:
        args["remote_parent"] = span.remote_parent
        args["remote_origin"] = span.remote_origin
    args.update(span.attrs)
    return {
        "name": span.name,
        "cat": span.category or "uncategorized",
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": TRACE_PID,
        "tid": TRACE_TID,
        "args": args,
    }


def write_perfetto_jsonl(
    spans: Iterable[Span], path: PathLike, timebase: str = "wall",
    origin: str = "",
) -> Path:
    """Write spans as a Perfetto-loadable, line-oriented trace file.

    ``origin`` (the tracer's process identity) is recorded as a
    ``trace_origin`` metadata event so ``repro trace merge`` can assign
    per-process tracks — and tell processes apart — when stitching
    multi-process runs back together.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("[\n")
        metadata = {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": f"repro simulation ({timebase} time)"},
        }
        handle.write(json.dumps(metadata, sort_keys=True) + ",\n")
        if origin:
            origin_meta = {
                "name": "trace_origin",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": {"origin": origin},
            }
            handle.write(json.dumps(origin_meta, sort_keys=True) + ",\n")
        for span in spans:
            event = span_to_event(span, timebase=timebase)
            handle.write(json.dumps(event, sort_keys=True) + ",\n")
    return target


def read_trace_events(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a trace file written by :func:`write_perfetto_jsonl`.

    Tolerates both the native line-oriented form and a strict JSON array
    (the ``repro trace export`` output).
    """
    raw = Path(path).read_text(encoding="utf-8").strip()
    if not raw:
        return []
    try:
        parsed = json.loads(raw)
        if isinstance(parsed, list):
            return parsed
    except json.JSONDecodeError:
        pass
    events: List[Dict[str, Any]] = []
    for line in raw.splitlines():
        line = line.strip().rstrip(",")
        if line in ("", "[", "]"):
            continue
        events.append(json.loads(line))
    return events


def write_strict_json(events: List[Dict[str, Any]], path: PathLike) -> Path:
    """Write events as a strict JSON array (for tools that demand it)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(events, handle, sort_keys=True)
        handle.write("\n")
    return target


def summarize_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate complete events into per-(category, name) rows.

    Returns rows sorted by total wall time, descending — the "where did
    the run go" table behind ``repro trace summary``.
    """
    totals: Dict[tuple, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("cat", ""), event.get("name", ""))
        row = totals.setdefault(
            key,
            {
                "category": key[0],
                "name": key[1],
                "count": 0,
                "wall_ms": 0.0,
                "sim_s": 0.0,
            },
        )
        row["count"] += 1
        args = event.get("args", {})
        row["wall_ms"] += args.get("wall_dur_us", event.get("dur", 0.0)) / 1e3
        row["sim_s"] += args.get("sim_dur_s", 0.0)
    return sorted(totals.values(), key=lambda row: -row["wall_ms"])
