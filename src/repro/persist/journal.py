"""Append-only, CRC-checked JSONL write-ahead run journal.

Every durable run directory contains one ``journal.jsonl``: a sequence of
newline-terminated JSON records, each carrying a sequence number, the
simulation clock, a record type, a payload, and a CRC-32 over the
canonical encoding of everything else.  The journal is *write-ahead*
relative to the SQLite chain store: a block is journaled (and the journal
flushed) before the store row is written, so after a crash the store can
always be caught up from the journal.

Crash-tolerance contract (:func:`recover_journal`):

* a missing or zero-length file is an empty, healthy journal;
* a **torn tail** — a final record the process died while writing
  (unterminated, truncated, or CRC-failing last line) — is dropped and
  reported, and the preceding prefix is kept;
* a structural or CRC failure *before* the last record marks the journal
  **corrupt**: the valid prefix is still returned, together with a count
  of the records that had to be dropped, and callers (``repro inspect``)
  surface the damage instead of silently proceeding.

Writes are fsync-batched: every append is flushed to the OS, but
``os.fsync`` runs only every ``fsync_every`` records (and on ``sync`` /
``close``), keeping the journal cheap on the hot path while bounding the
post-crash loss window.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.errors import PersistError
from repro.obs import runtime as _obs

PathLike = Union[str, Path]

#: Bumped on breaking changes to the record encoding.
JOURNAL_FORMAT_VERSION = 1

# -- record types ------------------------------------------------------------------

REC_RUN_START = "run_start"
REC_BLOCK = "block"
REC_ALLOC = "alloc"
REC_REORG = "reorg"
REC_CHECKPOINT = "checkpoint"
REC_COMPLETE = "run_complete"


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _crc_of(body: Dict[str, Any]) -> str:
    return format(zlib.crc32(_canonical(body)) & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    type: str
    clock: float
    payload: Dict[str, Any]

    def encode(self) -> bytes:
        body = {
            "v": JOURNAL_FORMAT_VERSION,
            "seq": self.seq,
            "type": self.type,
            "clock": self.clock,
            "payload": self.payload,
        }
        body["crc"] = _crc_of(body)
        return _canonical(body) + b"\n"


@dataclass
class JournalRecovery:
    """Result of scanning a journal file for its valid prefix."""

    records: List[JournalRecord] = field(default_factory=list)
    #: Byte length of the valid prefix (safe truncation point).
    valid_bytes: int = 0
    #: Complete-but-invalid records dropped (CRC/structure failures).
    dropped_records: int = 0
    #: Bytes of unterminated/torn trailing data dropped.
    torn_tail_bytes: int = 0
    #: True when damage occurred *before* the final record — i.e. more
    #: than an interrupted last write was lost.
    corrupt: bool = False
    reason: Optional[str] = None

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else 0


def _decode_line(line: bytes, expected_seq: int) -> JournalRecord:
    try:
        body = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise PersistError(f"journal record is not valid JSON: {error}") from error
    if not isinstance(body, dict):
        raise PersistError("journal record is not an object")
    crc = body.pop("crc", None)
    if crc != _crc_of(body):
        raise PersistError(f"journal record CRC mismatch (seq {body.get('seq')})")
    if body.get("v") != JOURNAL_FORMAT_VERSION:
        raise PersistError(f"unsupported journal format {body.get('v')!r}")
    try:
        record = JournalRecord(
            seq=int(body["seq"]),
            type=str(body["type"]),
            clock=float(body["clock"]),
            payload=dict(body["payload"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise PersistError(f"malformed journal record: {error}") from error
    if record.seq != expected_seq:
        raise PersistError(
            f"journal sequence break: expected {expected_seq}, got {record.seq}"
        )
    return record


def recover_journal(path: PathLike) -> JournalRecovery:
    """Scan a journal, returning its valid prefix and a damage report."""
    target = Path(path)
    recovery = JournalRecovery()
    if not target.exists():
        return recovery
    raw = target.read_bytes()
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            # Unterminated trailing data: the classic torn final write.
            recovery.torn_tail_bytes = len(raw) - offset
            recovery.reason = "torn trailing record (no newline)"
            break
        line = raw[offset : newline]
        try:
            record = _decode_line(line, recovery.next_seq)
        except PersistError as error:
            if newline + 1 >= len(raw):
                # A terminated-but-invalid final record is still a torn
                # tail (e.g. the process died between write and flush of
                # a partially buffered line).
                recovery.torn_tail_bytes = len(raw) - offset
                recovery.reason = f"torn final record: {error}"
            else:
                remainder = raw[offset:]
                recovery.dropped_records = remainder.count(b"\n")
                if not remainder.endswith(b"\n"):
                    recovery.torn_tail_bytes = (
                        len(remainder) - remainder.rfind(b"\n") - 1
                    )
                recovery.corrupt = True
                recovery.reason = f"mid-journal corruption: {error}"
            break
        recovery.records.append(record)
        offset = newline + 1
        recovery.valid_bytes = offset
    else:
        recovery.valid_bytes = len(raw)
    return recovery


class RunJournal:
    """Appendable journal handle with batched fsync."""

    def __init__(self, path: PathLike, fsync_every: int = 32):
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._handle = None
        self._pending_fsync = 0
        self.next_seq = 0

    @classmethod
    def open(cls, path: PathLike, fsync_every: int = 32) -> "RunJournal":
        """Open for appending, truncating any torn tail first.

        Raises :class:`PersistError` if the journal is corrupt before its
        final record — an operator must inspect it rather than have a
        writer silently amputate history.
        """
        journal = cls(path, fsync_every=fsync_every)
        recovery = recover_journal(path)
        if recovery.corrupt:
            raise PersistError(
                f"journal {journal.path} is corrupt mid-file: {recovery.reason}"
            )
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(journal.path, "ab")
        if recovery.torn_tail_bytes:
            handle.truncate(recovery.valid_bytes)
            handle.seek(recovery.valid_bytes)
        journal._handle = handle
        journal.next_seq = recovery.next_seq
        return journal

    def append(self, type_: str, clock: float, payload: Dict[str, Any]) -> int:
        """Append one record; returns its sequence number."""
        if self._handle is None:
            raise PersistError("journal is closed")
        record = JournalRecord(
            seq=self.next_seq, type=type_, clock=clock, payload=payload
        )
        encoded = record.encode()
        self._handle.write(encoded)
        self._handle.flush()
        if _obs.is_enabled():
            _obs.add("persist.journal_records")
            _obs.observe("persist.journal_record_bytes", len(encoded))
        self.next_seq += 1
        self._pending_fsync += 1
        if self._pending_fsync >= self.fsync_every:
            self.sync()
        return record.seq

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._handle is None:
            return
        self._handle.flush()
        if _obs.is_enabled():
            start = time.perf_counter()
            with _obs.span("persist.fsync", "persist"):
                os.fsync(self._handle.fileno())
            _obs.add("persist.fsyncs")
            _obs.observe("persist.fsync_seconds", time.perf_counter() - start)
        else:
            os.fsync(self._handle.fileno())
        self._pending_fsync = 0

    def close(self) -> None:
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
