"""Versioned, atomic snapshots of a running simulation.

A snapshot freezes the *whole* live run — chain state, every node's
:class:`~repro.core.storage.NodeStorage`, the event engine's clock, both
RNG streams, and the pending event queue — so a killed run restarts from
the last checkpoint instead of from genesis.

Format (one self-contained JSON file per snapshot):

* a **state card**: schema version, simulation clock, reference chain
  height and :meth:`~repro.core.blockchain.Blockchain.chain_digest`, and
  every node's storage serialised through the canonical
  :func:`~repro.core.serialization.storage_to_dict` wire format — a
  portable, inspectable view that never requires unpickling;
* a **continuation blob**: the zlib-compressed pickle of the full
  :class:`~repro.sim.runner.SimRuntime` object graph (CRC-protected),
  which is what actually resumes execution.  The runner guarantees this
  graph is picklable (module-level driver classes, no closures on the
  event queue).

Invariants enforced here:

* **Atomicity** — snapshots are written to a temp file in the same
  directory, fsynced, then ``os.replace``d into place; a crash mid-write
  leaves either the old snapshot set or the new one, never a half file.
* **Versioning** — loads reject snapshots whose ``schema_version``
  differs from :data:`SNAPSHOT_SCHEMA_VERSION`.
* **Consistency** — after unpickling, the restored runtime must
  reproduce the state card's clock and chain digest exactly, or the
  snapshot is rejected; :func:`load_latest_snapshot` then falls back to
  the next-newest file.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import PersistError
from repro.core.serialization import storage_to_dict
from repro.sim.runner import SimRuntime

PathLike = Union[str, Path]

#: Bumped on breaking changes to the snapshot layout.
SNAPSHOT_SCHEMA_VERSION = 1

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


@dataclass(frozen=True)
class SnapshotInfo:
    """Cheap, unpickle-free description of one snapshot file."""

    path: Path
    clock: float
    height: int
    chain_digest: str
    schema_version: int
    blob_bytes: int


def _snapshot_name(height: int, clock: float) -> str:
    # Height first, then millisecond clock: lexicographic order == age order.
    return f"{_SNAPSHOT_PREFIX}{height:08d}-{int(clock * 1000):014d}{_SNAPSHOT_SUFFIX}"


def _rng_digest(runtime: Any) -> str:
    engine = runtime.engine
    state = (engine.rng.getstate(), engine.np_rng.bit_generator.state)
    return format(zlib.crc32(pickle.dumps(state)) & 0xFFFFFFFF, "08x")


def snapshot_paths(directory: PathLike) -> List[Path]:
    """Snapshot files in a run directory, oldest first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.name.startswith(_SNAPSHOT_PREFIX) and p.name.endswith(_SNAPSHOT_SUFFIX)
    )


def _state_card(runtime: Any) -> Tuple[int, str, int, Any, Dict[str, Any]]:
    """(height, digest, node_count, seed, storages) for either runtime kind.

    Federated runtimes expose the snapshot duck interface
    (``snapshot_height`` / ``snapshot_digest`` / ``snapshot_storages``);
    a ``SimRuntime`` derives the card from its reference chain.
    """
    if hasattr(runtime, "domains"):
        return (
            runtime.snapshot_height(),
            runtime.snapshot_digest(),
            runtime.spec.total_nodes,
            runtime.spec.seed,
            runtime.snapshot_storages(),
        )
    reference = runtime.cluster.longest_chain_node()
    return (
        reference.chain.height,
        reference.chain.chain_digest(),
        runtime.spec.node_count,
        runtime.spec.seed,
        {
            str(node_id): storage_to_dict(runtime.cluster.nodes[node_id].storage)
            for node_id in runtime.cluster.node_ids
        },
    )


def write_snapshot(directory: PathLike, runtime: Any, retain: int = 2) -> Path:
    """Atomically write one snapshot; prunes all but the newest ``retain``.

    Accepts a :class:`~repro.sim.runner.SimRuntime` or a
    :class:`~repro.federation.runtime.FederationRuntime` (whose card
    digest covers every cluster chain).
    """
    if retain < 1:
        raise ValueError("must retain at least one snapshot")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    height, digest, node_count, seed, storages = _state_card(runtime)
    blob = zlib.compress(pickle.dumps(runtime, protocol=pickle.HIGHEST_PROTOCOL))
    document: Dict[str, Any] = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "clock": runtime.engine.now,
        "height": height,
        "chain_digest": digest,
        "rng_digest": _rng_digest(runtime),
        "node_count": node_count,
        "seed": seed,
        "storages": storages,
        "blob_crc": format(zlib.crc32(blob) & 0xFFFFFFFF, "08x"),
        "blob_bytes": len(blob),
        "blob": base64.b64encode(blob).decode("ascii"),
    }
    target = root / _snapshot_name(height, runtime.engine.now)
    temp = target.with_name(target.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    for stale in snapshot_paths(root)[:-retain]:
        stale.unlink(missing_ok=True)
    return target


def inspect_snapshot(path: PathLike) -> SnapshotInfo:
    """Read a snapshot's state card without unpickling the blob."""
    document = _read_document(path)
    return SnapshotInfo(
        path=Path(path),
        clock=float(document["clock"]),
        height=int(document["height"]),
        chain_digest=str(document["chain_digest"]),
        schema_version=int(document["schema_version"]),
        blob_bytes=int(document["blob_bytes"]),
    )


def _read_document(path: PathLike) -> Dict[str, Any]:
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise PersistError(f"snapshot {path} unreadable: {error}") from error
    if not isinstance(document, dict):
        raise PersistError(f"snapshot {path} is not an object")
    version = document.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise PersistError(
            f"snapshot {path} has schema v{version!r}, "
            f"this build reads v{SNAPSHOT_SCHEMA_VERSION}"
        )
    return document


def load_snapshot(path: PathLike) -> Tuple[Any, SnapshotInfo]:
    """Restore a runtime from one snapshot, verifying every invariant."""
    # Imported lazily: federation.runtime imports the obs layer, which
    # must stay importable without dragging persist back in.
    from repro.federation.runtime import FederationRuntime

    document = _read_document(path)
    try:
        blob = base64.b64decode(document["blob"].encode("ascii"))
    except (KeyError, ValueError) as error:
        raise PersistError(f"snapshot {path} blob undecodable: {error}") from error
    crc = format(zlib.crc32(blob) & 0xFFFFFFFF, "08x")
    if crc != document.get("blob_crc"):
        raise PersistError(f"snapshot {path} blob CRC mismatch")
    try:
        runtime = pickle.loads(zlib.decompress(blob))
    except Exception as error:  # pickle raises a zoo of types on corruption
        raise PersistError(f"snapshot {path} blob unpicklable: {error}") from error
    if not isinstance(runtime, (SimRuntime, FederationRuntime)):
        raise PersistError(f"snapshot {path} does not contain a known runtime")
    info = inspect_snapshot(path)
    if runtime.engine.now != info.clock:
        raise PersistError(
            f"snapshot {path} clock {info.clock} does not match "
            f"restored engine clock {runtime.engine.now}"
        )
    if isinstance(runtime, FederationRuntime):
        restored_digest = runtime.snapshot_digest()
    else:
        restored_digest = runtime.cluster.longest_chain_node().chain.chain_digest()
    if restored_digest != info.chain_digest:
        raise PersistError(
            f"snapshot {path} chain digest mismatch after restore "
            f"(stored {info.chain_digest[:12]}…, got {restored_digest[:12]}…)"
        )
    if _rng_digest(runtime) != document.get("rng_digest"):
        raise PersistError(f"snapshot {path} RNG state digest mismatch")
    return runtime, info


def load_latest_snapshot(
    directory: PathLike,
) -> Tuple[Optional[Any], Optional[SnapshotInfo], List[str]]:
    """Restore from the newest valid snapshot, skipping corrupt ones.

    Returns ``(runtime, info, skipped)`` where ``skipped`` lists the
    reasons newer snapshots were rejected.  ``runtime`` is None when no
    usable snapshot exists (resume then replays from genesis).
    """
    skipped: List[str] = []
    for path in reversed(snapshot_paths(directory)):
        try:
            runtime, info = load_snapshot(path)
            return runtime, info, skipped
        except PersistError as error:
            skipped.append(str(error))
    return None, None, skipped
