"""Durable runs: journaled execution, crash recovery, deterministic resume.

This module glues the three persistence primitives to the simulation
runner:

* :func:`run_persistent` — run an experiment inside a run directory,
  journaling every mined block (write-ahead of the SQLite store),
  snapshotting the full runtime periodically, and finalising metrics on
  completion.  ``stop_after_seconds`` pauses cleanly mid-run (chunked
  long sweeps); a crash/kill at any point is equally recoverable.
* :func:`resume_run` — recover a run directory: journal tail recovery,
  store catch-up from the journal (journal is the source of truth),
  restore of the newest valid snapshot (falling back to older ones, or
  to a from-genesis deterministic replay when none survive), and
  continuation to the end of the run.

Determinism is the load-bearing invariant: the simulation is a closed
system over its seeded RNGs, so *run → kill → resume* must reproduce the
uninterrupted run byte for byte.  Resume enforces this actively — every
block re-mined after the snapshot is checked against the journal records
written before the crash, and any divergence aborts with
:class:`~repro.core.errors.PersistError` instead of silently forking
history.  The persistence hooks themselves never touch simulation state
or RNGs, so a durable run also produces exactly the same metrics as a
plain :func:`~repro.sim.runner.run_experiment` with the same spec.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.config import LifecycleSpec, SystemConfig
from repro.core.errors import PersistError
from repro.core.serialization import block_from_dict, block_to_dict
from repro.lifecycle.archive import ARCHIVE_NAME, BlockArchive
from repro.metrics.collector import RunMetrics
from repro.metrics.export import metrics_to_record, store_chain_record
from repro.obs import runtime as _obs
from repro.persist.chainstore import ChainStore
from repro.persist.journal import (
    REC_ALLOC,
    REC_BLOCK,
    REC_CHECKPOINT,
    REC_COMPLETE,
    REC_REORG,
    REC_RUN_START,
    JournalRecord,
    RunJournal,
    recover_journal,
)
from repro.persist.snapshot import (
    SnapshotInfo,
    inspect_snapshot,
    load_latest_snapshot,
    snapshot_paths,
    write_snapshot,
)
from repro.sim.runner import (
    ChurnSpec,
    ExperimentResult,
    ExperimentSpec,
    SimRuntime,
    build_runtime,
    collect_metrics,
)

PathLike = Union[str, Path]

#: Bumped on breaking changes to the run-directory layout.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
STORE_NAME = "chain.sqlite"
METRICS_NAME = "metrics.json"
CHAIN_SUMMARY_NAME = "chain_summary.json"

STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"


@dataclass(frozen=True)
class PersistConfig:
    """Tunables of the durable-run machinery (all in simulated seconds)."""

    journal_every_seconds: float = 30.0
    snapshot_every_seconds: float = 600.0
    snapshot_retain: int = 2
    fsync_every: int = 32

    def __post_init__(self) -> None:
        if self.journal_every_seconds <= 0:
            raise ValueError("journal interval must be positive")
        if self.snapshot_every_seconds <= 0:
            raise ValueError("snapshot interval must be positive")


# -- spec (de)serialisation ----------------------------------------------------------


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    if spec.node_classes:
        raise PersistError(
            "runs with custom node_classes (planted adversaries) cannot be "
            "persisted: classes do not serialise into a run manifest"
        )
    return {
        "node_count": spec.node_count,
        "seed": spec.seed,
        "duration_minutes": spec.duration_minutes,
        "mobility_epoch_minutes": spec.mobility_epoch_minutes,
        "churn": None if spec.churn is None else asdict(spec.churn),
        "config": asdict(spec.config),
    }


def spec_from_dict(payload: Dict[str, Any]) -> ExperimentSpec:
    try:
        churn = payload["churn"]
        config_payload = dict(payload["config"])
        lifecycle = config_payload.get("lifecycle")
        if isinstance(lifecycle, dict):
            # ``asdict`` flattens the nested dataclass on the way out.
            config_payload["lifecycle"] = LifecycleSpec(**lifecycle)
        return ExperimentSpec(
            node_count=int(payload["node_count"]),
            config=SystemConfig(**config_payload),
            seed=int(payload["seed"]),
            duration_minutes=payload["duration_minutes"],
            mobility_epoch_minutes=float(payload["mobility_epoch_minutes"]),
            churn=None if churn is None else ChurnSpec(**churn),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise PersistError(f"malformed experiment spec: {error}") from error


# -- manifest ------------------------------------------------------------------------


def _write_json_atomic(path: Path, document: Dict[str, Any]) -> None:
    temp = path.with_name(path.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def read_manifest(directory: PathLike) -> Dict[str, Any]:
    path = Path(directory) / MANIFEST_NAME
    try:
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as error:
        raise PersistError(f"{directory} is not a run directory: {error}") from error
    except json.JSONDecodeError as error:
        raise PersistError(f"manifest {path} is corrupt: {error}") from error
    version = manifest.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise PersistError(
            f"manifest {path} has schema v{version!r}, "
            f"this build reads v{MANIFEST_SCHEMA_VERSION}"
        )
    return manifest


# -- the session: everything holding OS resources (never pickled) --------------------


class PersistSession:
    """Open handles on one run directory (journal, store, snapshots)."""

    def __init__(
        self, directory: PathLike, persist: PersistConfig, journal: RunJournal,
        store: ChainStore,
    ):
        self.directory = Path(directory)
        self.persist = persist
        self.journal = journal
        self.store = store
        #: Journal records ahead of the restored snapshot: height → hash.
        #: Re-mined blocks must match these exactly (determinism check).
        self.verify_tail: Dict[int, str] = {}
        self.blocks_verified = 0
        #: Cold-archive handle, opened on the first compaction.
        self.archive: Optional[BlockArchive] = None

    def compact_to(self, horizon: int, checkpoints=None) -> int:
        """Move store rows below ``horizon`` into the cold archive."""
        if horizon <= self.store.pruned_below():
            return 0
        if self.archive is None:
            self.archive = BlockArchive(self.directory / ARCHIVE_NAME)
        return self.store.compact(self.archive, horizon, checkpoints)

    def record_block(self, block, clock: float) -> None:
        expected = self.verify_tail.pop(block.index, None)
        if expected is not None:
            if expected != block.current_hash:
                raise PersistError(
                    f"resumed run diverged from journal at block {block.index}: "
                    f"journal has {expected[:12]}…, re-mined "
                    f"{block.current_hash[:12]}…"
                )
            self.blocks_verified += 1
            # Already journaled before the crash — only ensure the store
            # caught up (idempotent).
            self.store.put_block(block)
            return
        self.journal.append(
            REC_BLOCK,
            clock,
            {
                "index": block.index,
                "hash": block.current_hash,
                "block": block_to_dict(block),
            },
        )
        if not block.is_genesis:
            self.journal.append(
                REC_ALLOC,
                clock,
                {
                    "index": block.index,
                    "block_storing": list(block.storing_nodes),
                    "recent_cache": list(block.recent_cache_nodes),
                    "data_storing": {
                        item.data_id: list(item.storing_nodes)
                        for item in block.metadata_items
                    },
                },
            )
        # Write-ahead: the journal hits the OS before the store row.
        self.store.put_block(block)

    def record_reorg(self, from_height: int, clock: float) -> None:
        self.journal.append(REC_REORG, clock, {"from": from_height})
        self.verify_tail = {
            height: block_hash
            for height, block_hash in self.verify_tail.items()
            if height < from_height
        }

    def close(self) -> None:
        self.journal.close()
        self.store.close()


class _PersistTask:
    """The in-simulation persistence hook (pickled with the runtime).

    Ticks on the event engine every ``journal_every_seconds`` of simulated
    time: journals newly mined blocks (following the longest chain, with
    explicit reorg records), and periodically snapshots the whole runtime.
    The tick never mutates protocol state or RNGs, so durable runs remain
    bit-identical to non-durable ones.
    """

    def __init__(self, runtime: SimRuntime, persist: PersistConfig):
        self.runtime = runtime
        self.persist = persist
        #: -1 so the very first flush journals the genesis block too.
        self.journaled_height = -1
        self.journaled_hashes: Dict[int, str] = {}
        self.next_snapshot_at = persist.snapshot_every_seconds
        #: Transient OS-resource holder; re-attached after every restore.
        self.session: Optional[PersistSession] = None

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["session"] = None  # open files/sockets never enter snapshots
        return state

    def start(self) -> None:
        self.runtime.engine.schedule(self.persist.journal_every_seconds, self.tick)

    def tick(self) -> None:
        engine = self.runtime.engine
        # Re-arm first so any snapshot written below already contains the
        # next tick in its pending-event queue.
        engine.schedule(self.persist.journal_every_seconds, self.tick)
        if self.session is None:
            return  # detached (restored but not yet re-adopted)
        self.flush()
        if engine.now >= self.next_snapshot_at:
            self.next_snapshot_at = engine.now + self.persist.snapshot_every_seconds
            self.snapshot()

    def flush(self) -> None:
        """Journal every block the longest chain gained since last time."""
        if self.session is None:
            return
        chain = self.runtime.cluster.longest_chain_node().chain
        clock = self.runtime.engine.now
        floor = chain.first_retained_index
        agree = min(self.journaled_height, chain.height)
        while agree > 0:
            if agree < floor:
                raise PersistError(
                    f"journal agreement point fell below the pruning "
                    f"horizon {floor}: cannot journal a pruned reorg"
                )
            if self.journaled_hashes.get(agree) == chain.block_at(agree).current_hash:
                break
            agree -= 1
        if agree < self.journaled_height:
            self.session.record_reorg(agree + 1, clock)
            for height in range(agree + 1, self.journaled_height + 1):
                self.journaled_hashes.pop(height, None)
        if agree + 1 < floor:
            raise PersistError(
                f"journal height {agree} fell behind the pruning horizon "
                f"{floor}: the bodies to journal were already pruned"
            )
        for height in range(agree + 1, chain.height + 1):
            block = chain.block_at(height)
            self.session.record_block(block, clock)
            self.journaled_hashes[height] = block.current_hash
        self.journaled_height = chain.height
        # Pruning must never outrun the journal: any node may become the
        # reference chain, so cap every node's prune floor at the height
        # just journaled — a fast-block burst between ticks then retains
        # its bodies until the next flush instead of dropping rows the
        # store has never seen.
        for node in self.runtime.cluster.nodes.values():
            node.chain.prune_floor_limit = self.journaled_height

    def snapshot(self) -> None:
        if self.session is None:
            return
        self.session.journal.append(
            REC_CHECKPOINT,
            self.runtime.engine.now,
            {"height": self.journaled_height},
        )
        self.session.journal.sync()
        write_snapshot(
            self.session.directory, self.runtime, retain=self.persist.snapshot_retain
        )
        # Chainstore compaction rides the snapshot cadence: once the
        # in-memory chain has pruned past the store's floor, migrate the
        # corresponding rows to the cold archive.  The snapshot above is
        # already durable, so a crash mid-compaction loses nothing.
        chain = self.runtime.cluster.longest_chain_node().chain
        floor = chain.first_retained_index
        if floor > 0:
            self.session.compact_to(
                min(floor, self.journaled_height), chain.checkpoints
            )


# -- run / resume --------------------------------------------------------------------


@dataclass
class PersistentRunResult:
    """Outcome of one durable run (or resume) invocation."""

    directory: Path
    completed: bool
    clock: float
    result: Optional[ExperimentResult] = None
    #: Simulation clock the run was restored from (resume only).
    resumed_from: Optional[float] = None
    #: Blocks re-mined after restore that were verified against the
    #: pre-crash journal (resume only).
    blocks_verified: int = 0

    @property
    def metrics(self) -> Optional[RunMetrics]:
        return None if self.result is None else self.result.metrics


def _open_session(
    directory: Path, persist: PersistConfig, fresh: bool
) -> PersistSession:
    journal_path = directory / JOURNAL_NAME
    if fresh and journal_path.exists():
        raise PersistError(
            f"{directory} already holds a run (journal exists); "
            "resume it or pick a fresh directory"
        )
    journal = RunJournal.open(journal_path, fsync_every=persist.fsync_every)
    store = ChainStore(directory / STORE_NAME)
    return PersistSession(directory, persist, journal, store)


def _finalize(
    session: PersistSession, task: _PersistTask, runtime: SimRuntime
) -> ExperimentResult:
    task.flush()
    if session.verify_tail:
        unmatched = sorted(session.verify_tail)
        raise PersistError(
            "resumed run never re-mined journaled block(s) "
            f"{unmatched[:5]} — the journal and the replay disagree"
        )
    metrics = collect_metrics(runtime)
    reference = runtime.cluster.longest_chain_node()
    record = metrics_to_record(metrics, seed=runtime.spec.seed)
    session.journal.append(
        REC_COMPLETE,
        runtime.engine.now,
        {
            "height": reference.chain.height,
            "tip_hash": reference.chain.tip.current_hash,
            "chain_digest": reference.chain.chain_digest(),
        },
    )
    session.journal.sync()
    session.store.set_meta("status", STATUS_COMPLETE)
    session.store.set_meta("final_chain_digest", reference.chain.chain_digest())
    _write_json_atomic(session.directory / METRICS_NAME, record)
    _write_json_atomic(
        session.directory / CHAIN_SUMMARY_NAME, store_chain_record(session.store)
    )
    manifest = read_manifest(session.directory)
    manifest["status"] = STATUS_COMPLETE
    manifest["completed_at_clock"] = runtime.engine.now
    manifest["final_tip_hash"] = reference.chain.tip.current_hash
    _write_json_atomic(session.directory / MANIFEST_NAME, manifest)
    return ExperimentResult(spec=runtime.spec, metrics=metrics, cluster=runtime.cluster)


def _pause(
    session: PersistSession, task: _PersistTask, runtime: SimRuntime
) -> None:
    task.flush()
    task.snapshot()
    manifest = read_manifest(session.directory)
    manifest["paused_at_clock"] = runtime.engine.now
    _write_json_atomic(session.directory / MANIFEST_NAME, manifest)


def run_persistent(
    spec: ExperimentSpec,
    directory: PathLike,
    persist: Optional[PersistConfig] = None,
    stop_after_seconds: Optional[float] = None,
) -> PersistentRunResult:
    """Run one experiment durably inside ``directory``.

    ``stop_after_seconds`` (simulated) pauses the run cleanly after that
    much progress — the orderly form of interruption; a SIGKILL at any
    point is the disorderly form, and both resume identically.
    """
    persist = persist or PersistConfig()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if (directory / MANIFEST_NAME).exists():
        raise PersistError(
            f"{directory} already holds a run; resume it or pick a fresh directory"
        )
    spec_payload = spec_to_dict(spec)  # validates persistability up front
    session = _open_session(directory, persist, fresh=True)
    try:
        _write_json_atomic(
            directory / MANIFEST_NAME,
            {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "status": STATUS_RUNNING,
                "spec": spec_payload,
                "persist": asdict(persist),
            },
        )
        session.journal.append(
            REC_RUN_START,
            0.0,
            {
                "seed": spec.seed,
                "node_count": spec.node_count,
                "duration_seconds": spec.duration_seconds,
            },
        )
        runtime = build_runtime(spec)
        session.store.put_accounts(runtime.cluster.accounts)
        task = _PersistTask(runtime, persist)
        task.session = session
        runtime.persist_task = task
        task.start()
        task.flush()  # journals + stores the genesis block
        return _advance(session, task, runtime, stop_after_seconds)
    finally:
        session.close()


def _advance(
    session: PersistSession,
    task: _PersistTask,
    runtime: SimRuntime,
    stop_after_seconds: Optional[float],
    resumed_from: Optional[float] = None,
) -> PersistentRunResult:
    duration = runtime.spec.duration_seconds
    target = duration
    if stop_after_seconds is not None:
        target = min(duration, runtime.engine.now + stop_after_seconds)
    with _obs.span("run.simulate", "run", duration_seconds=duration):
        runtime.engine.run_until(target)
    if runtime.engine.now >= duration:
        result = _finalize(session, task, runtime)
        return PersistentRunResult(
            directory=session.directory,
            completed=True,
            clock=runtime.engine.now,
            result=result,
            resumed_from=resumed_from,
            blocks_verified=session.blocks_verified,
        )
    _pause(session, task, runtime)
    return PersistentRunResult(
        directory=session.directory,
        completed=False,
        clock=runtime.engine.now,
        resumed_from=resumed_from,
        blocks_verified=session.blocks_verified,
    )


def _journal_chain_view(records: List[JournalRecord]) -> Dict[int, Dict[str, Any]]:
    """Fold block/reorg records into the journal's final height → record view."""
    view: Dict[int, Dict[str, Any]] = {}
    for record in records:
        if record.type == REC_BLOCK:
            view[int(record.payload["index"])] = record.payload
        elif record.type == REC_REORG:
            cut = int(record.payload["from"])
            view = {h: p for h, p in view.items() if h < cut}
    return view


def resume_run(
    directory: PathLike,
    persist: Optional[PersistConfig] = None,
    stop_after_seconds: Optional[float] = None,
) -> PersistentRunResult:
    """Recover ``directory`` and drive the run to completion (or next pause).

    Recovery order: journal prefix (torn tail dropped), SQLite store
    catch-up from the journal, newest loadable snapshot (corrupt ones are
    skipped; none at all means a deterministic from-genesis replay), then
    continuation with every re-mined block verified against the journal.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest.get("status") == STATUS_COMPLETE:
        raise PersistError(f"run in {directory} already completed; nothing to resume")
    spec = spec_from_dict(manifest["spec"])
    if persist is None:
        persist = PersistConfig(**manifest.get("persist", {}))

    recovery = recover_journal(directory / JOURNAL_NAME)
    if recovery.corrupt:
        raise PersistError(
            f"journal in {directory} is corrupt mid-file ({recovery.reason}); "
            "refusing to resume — run `repro inspect` for details"
        )
    journal_view = _journal_chain_view(recovery.records)

    session = _open_session(directory, persist, fresh=False)
    try:
        # Store catch-up: the journal is write-ahead, so it is the truth.
        # Heights below the compaction floor already moved to the cold
        # archive; re-inserting them would undo the compaction.
        pruned_floor = session.store.pruned_below()
        for height in sorted(journal_view):
            if height < pruned_floor:
                continue
            payload = journal_view[height]
            stored = session.store.block_by_index(height)
            if stored is None or stored.current_hash != payload["hash"]:
                session.store.put_block(block_from_dict(payload["block"]))

        runtime, info, _skipped = load_latest_snapshot(directory)
        if runtime is not None:
            _obs.set_sim_clock(runtime.engine.clock_reader())
            _obs.attach_runtime(runtime)
            task = runtime.persist_task
            if not isinstance(task, _PersistTask):
                raise PersistError(
                    f"snapshot in {directory} carries no persistence task"
                )
            resumed_from: Optional[float] = info.clock
        else:
            # No usable snapshot: deterministically replay from genesis.
            runtime = build_runtime(spec)
            task = _PersistTask(runtime, persist)
            runtime.persist_task = task
            task.start()
            resumed_from = 0.0
        task.session = session
        session.verify_tail = {
            height: str(payload["hash"])
            for height, payload in journal_view.items()
            if height > task.journaled_height
        }
        return _advance(session, task, runtime, stop_after_seconds, resumed_from)
    finally:
        session.close()


# -- inspection ----------------------------------------------------------------------


@dataclass
class RunReport:
    """Health report for one run directory (``repro inspect``)."""

    directory: Path
    status: str
    journal_records: int = 0
    journal_height: int = -1
    torn_tail_bytes: int = 0
    dropped_records: int = 0
    store_height: int = -1
    store_blocks: int = 0
    store_metadata: int = 0
    store_tip: Optional[str] = None
    #: First block index still in the hot store (0 = never compacted).
    store_pruned_below: int = 0
    #: On-disk byte footprints, hot tier vs cold tier.
    journal_bytes: int = 0
    store_bytes: int = 0
    snapshot_bytes: int = 0
    archive_bytes: int = 0
    archive_blocks: int = 0
    archive_checkpoints: int = 0
    snapshots: List[SnapshotInfo] = field(default_factory=list)
    #: Recoverable oddities (torn tail, store behind journal) — resume
    #: handles these; listed for transparency.
    notes: List[str] = field(default_factory=list)
    #: Unrecoverable corruption — ``repro inspect`` exits non-zero.
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def inspect_run(directory: PathLike) -> RunReport:
    """Examine a run directory without mutating anything.

    Checks the manifest, recovers the journal in memory (the file is not
    truncated), verifies SQLite store integrity, cross-checks the store
    against the journal's final chain view, and reads every snapshot's
    state card.  Corruption that resume could not transparently heal
    lands in ``problems``; self-healing oddities land in ``notes``.
    """
    directory = Path(directory)
    report = RunReport(directory=directory, status="unknown")

    try:
        manifest = read_manifest(directory)
        report.status = str(manifest.get("status", "unknown"))
    except PersistError as error:
        report.problems.append(str(error))
        return report

    recovery = recover_journal(directory / JOURNAL_NAME)
    report.journal_records = len(recovery.records)
    report.torn_tail_bytes = recovery.torn_tail_bytes
    report.dropped_records = recovery.dropped_records
    if recovery.corrupt:
        report.problems.append(
            f"journal corrupt mid-file ({recovery.reason}); "
            f"{recovery.dropped_records} record(s) unreadable"
        )
    elif recovery.torn_tail_bytes:
        report.notes.append(
            f"journal has a torn final record ({recovery.torn_tail_bytes} bytes); "
            "resume drops it"
        )
    journal_view = _journal_chain_view(recovery.records)
    if journal_view:
        report.journal_height = max(journal_view)

    journal_path = directory / JOURNAL_NAME
    if journal_path.exists():
        report.journal_bytes = journal_path.stat().st_size

    archive = None
    archive_path = directory / ARCHIVE_NAME
    if archive_path.exists():
        try:
            archive = BlockArchive(archive_path)
            stats = archive.stats()
            report.archive_bytes = stats.bytes
            report.archive_blocks = stats.blocks
            report.archive_checkpoints = len(stats.checkpoints)
            if stats.torn_tail_bytes:
                report.notes.append(
                    f"archive had a torn final record "
                    f"({stats.torn_tail_bytes} bytes); truncated on open"
                )
            report.problems.extend(archive.verify_integrity())
        except PersistError as error:
            report.problems.append(f"cold archive unreadable: {error}")
            archive = None

    store_path = directory / STORE_NAME
    if store_path.exists():
        try:
            with ChainStore(store_path) as store:
                report.store_height = store.height()
                report.store_blocks = store.block_count()
                report.store_metadata = store.metadata_count()
                report.store_tip = store.tip_hash()
                report.store_pruned_below = store.pruned_below()
                report.store_bytes = store.footprint_bytes()
                report.problems.extend(store.verify_integrity())
                if report.store_pruned_below > 0 and (
                    archive is None
                    or archive.archived_below < report.store_pruned_below
                ):
                    held = 0 if archive is None else archive.archived_below
                    report.problems.append(
                        f"store is compacted below {report.store_pruned_below} "
                        f"but the archive only holds [0, {held})"
                    )
                for height in sorted(journal_view):
                    if height < report.store_pruned_below:
                        # Compacted out of the hot store; the archive walk
                        # above already re-verified the cold copy.
                        continue
                    stored = store.block_by_index(height)
                    if stored is None:
                        report.notes.append(
                            f"store is missing journaled block {height}; "
                            "resume re-applies it"
                        )
                    elif stored.current_hash != journal_view[height]["hash"]:
                        report.problems.append(
                            f"store block {height} disagrees with the journal "
                            f"({stored.current_hash[:12]}… vs "
                            f"{journal_view[height]['hash'][:12]}…)"
                        )
        except Exception as error:  # sqlite raises a zoo of types on corruption
            report.problems.append(f"chain store unreadable: {error}")
    else:
        report.problems.append(f"chain store {STORE_NAME} is missing")

    for path in snapshot_paths(directory):
        try:
            report.snapshots.append(inspect_snapshot(path))
        except PersistError as error:
            report.problems.append(str(error))
        try:
            report.snapshot_bytes += path.stat().st_size
        except OSError:
            pass

    if report.status == STATUS_RUNNING and not report.snapshots:
        report.notes.append(
            "no usable snapshot; resume replays deterministically from genesis"
        )
    return report
