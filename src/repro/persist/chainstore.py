"""SQLite-backed chain and metadata store with an in-memory LRU cache.

The store is the *queryable* half of the persistence subsystem (the
journal is the durable half): blocks, their packed metadata items, node
accounts, and per-block storage-allocation assignments land in indexed
tables, so long-finished runs can be searched ("all AirQuality items
produced by node 7") without replaying anything.

Blocks are stored twice over, deliberately: the full canonical JSON
payload (``repro.core.serialization``) — which recomputes and re-verifies
its hash on read — plus extracted columns (miner, timestamp, hash) for
indexed queries.  ``verify_integrity`` re-walks the whole store checking
payload hashes, column consistency, and parent linkage; ``repro inspect``
exits non-zero when it reports problems.

Reads of hot blocks go through a small LRU cache so a resumed run's
replay loop and the export paths stay off the disk.
"""

from __future__ import annotations

import json
import sqlite3
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.account import Account
from repro.core.block import Block
from repro.core.errors import PersistError, ValidationError
from repro.core.metadata import MetadataItem
from repro.core.serialization import (
    block_from_dict,
    block_to_dict,
    metadata_from_dict,
)
from repro.obs import runtime as _obs

PathLike = Union[str, Path]

#: Bumped on breaking changes to the table layout.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS blocks (
    idx       INTEGER PRIMARY KEY,
    hash      TEXT    NOT NULL UNIQUE,
    miner     INTEGER NOT NULL,
    timestamp REAL    NOT NULL,
    payload   TEXT    NOT NULL
);
CREATE TABLE IF NOT EXISTS metadata_items (
    data_id    TEXT    PRIMARY KEY,
    block_idx  INTEGER NOT NULL,
    data_type  TEXT    NOT NULL,
    producer   INTEGER NOT NULL,
    created_at REAL    NOT NULL,
    payload    TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_metadata_type     ON metadata_items(data_type);
CREATE INDEX IF NOT EXISTS ix_metadata_producer ON metadata_items(producer);
CREATE TABLE IF NOT EXISTS accounts (
    node_id    INTEGER PRIMARY KEY,
    address    TEXT    NOT NULL,
    public_key TEXT    NOT NULL
);
CREATE TABLE IF NOT EXISTS assignments (
    block_idx INTEGER NOT NULL,
    node_id   INTEGER NOT NULL,
    kind      TEXT    NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS ix_assignments_unique
    ON assignments(block_idx, node_id, kind);
CREATE INDEX IF NOT EXISTS ix_assignments_node ON assignments(node_id);
"""

#: Assignment kinds recorded per block.
KIND_BLOCK = "block"  # node persists this block permanently
KIND_RECENT = "recent"  # node caches this block in its FIFO recent cache


class ChainStore:
    """Durable, queryable store for one run's chain."""

    def __init__(self, path: PathLike, cache_blocks: int = 256):
        if cache_blocks < 1:
            raise ValueError("cache must hold at least one block")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._cache: "OrderedDict[int, Block]" = OrderedDict()
        self._cache_blocks = cache_blocks
        self.cache_hits = 0
        self.cache_misses = 0
        existing = self.get_meta("schema_version")
        if existing is None:
            self.set_meta("schema_version", str(STORE_SCHEMA_VERSION))
        elif int(existing) != STORE_SCHEMA_VERSION:
            self._conn.close()
            raise PersistError(
                f"chain store {self.path} has schema v{existing}, "
                f"this build reads v{STORE_SCHEMA_VERSION}"
            )

    # -- meta ------------------------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def set_meta(self, key: str, value: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def pruned_below(self) -> int:
        """First block index still held in the hot tables (0 = never compacted)."""
        value = self.get_meta("pruned_below")
        return 0 if value is None else int(value)

    # -- writes ----------------------------------------------------------------------

    def put_block(self, block: Block) -> None:
        """Insert (or replace, after a reorg) one block and its satellites."""
        if _obs.is_enabled():
            start = time.perf_counter()
            with _obs.span("persist.put_block", "persist", index=block.index):
                self._put_block(block)
            _obs.add("persist.blocks_stored")
            _obs.observe("persist.commit_seconds", time.perf_counter() - start)
        else:
            self._put_block(block)

    def _put_block(self, block: Block) -> None:
        block_dict = block_to_dict(block)
        payload = json.dumps(block_dict, sort_keys=True)
        with self._conn:
            self._conn.execute(
                "DELETE FROM assignments WHERE block_idx = ?", (block.index,)
            )
            self._conn.execute(
                "DELETE FROM metadata_items WHERE block_idx = ?", (block.index,)
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO blocks "
                "(idx, hash, miner, timestamp, payload) VALUES (?, ?, ?, ?, ?)",
                (block.index, block.current_hash, block.miner, block.timestamp, payload),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO metadata_items "
                "(data_id, block_idx, data_type, producer, created_at, payload) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        item.data_id,
                        block.index,
                        item.data_type,
                        item.producer,
                        item.created_at,
                        json.dumps(
                            block_dict["metadata_items"][position], sort_keys=True
                        ),
                    )
                    for position, item in enumerate(block.metadata_items)
                ],
            )
            rows = [
                (block.index, node, KIND_BLOCK) for node in block.storing_nodes
            ] + [(block.index, node, KIND_RECENT) for node in block.recent_cache_nodes]
            self._conn.executemany(
                "INSERT OR REPLACE INTO assignments (block_idx, node_id, kind) "
                "VALUES (?, ?, ?)",
                rows,
            )
        self._cache_put(block)

    def put_accounts(self, accounts: Dict[int, Account]) -> None:
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO accounts (node_id, address, public_key) "
                "VALUES (?, ?, ?)",
                [
                    (node_id, account.address, account.public_key.hex())
                    for node_id, account in accounts.items()
                ],
            )

    # -- LRU cache -------------------------------------------------------------------

    def _cache_put(self, block: Block) -> None:
        self._cache[block.index] = block
        self._cache.move_to_end(block.index)
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)

    def _cache_get(self, index: int) -> Optional[Block]:
        block = self._cache.get(index)
        if block is not None:
            self._cache.move_to_end(index)
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return block

    # -- reads -----------------------------------------------------------------------

    def height(self) -> int:
        """Highest stored block index (-1 when empty)."""
        row = self._conn.execute("SELECT MAX(idx) FROM blocks").fetchone()
        return -1 if row[0] is None else int(row[0])

    def block_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM blocks").fetchone()[0])

    def metadata_count(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM metadata_items").fetchone()[0]
        )

    def tip_hash(self) -> Optional[str]:
        row = self._conn.execute(
            "SELECT hash FROM blocks ORDER BY idx DESC LIMIT 1"
        ).fetchone()
        return None if row is None else str(row[0])

    def block_by_index(self, index: int, verify_hash: bool = True) -> Optional[Block]:
        cached = self._cache_get(index)
        if cached is not None:
            return cached
        row = self._conn.execute(
            "SELECT payload FROM blocks WHERE idx = ?", (index,)
        ).fetchone()
        if row is None:
            return None
        block = block_from_dict(json.loads(row[0]), verify_hash=verify_hash)
        self._cache_put(block)
        return block

    def block_by_hash(self, block_hash: str) -> Optional[Block]:
        row = self._conn.execute(
            "SELECT idx FROM blocks WHERE hash = ?", (block_hash,)
        ).fetchone()
        return None if row is None else self.block_by_index(int(row[0]))

    def iter_blocks(self, verify_hashes: bool = False) -> Iterator[Block]:
        """All blocks in chain order (bypasses the cache)."""
        for (payload,) in self._conn.execute(
            "SELECT payload FROM blocks ORDER BY idx"
        ):
            yield block_from_dict(json.loads(payload), verify_hash=verify_hashes)

    def block_timestamps(self) -> List[float]:
        return [
            float(row[0])
            for row in self._conn.execute(
                "SELECT timestamp FROM blocks ORDER BY idx"
            )
        ]

    def miner_distribution(self) -> Dict[int, int]:
        """Blocks mined per node (genesis's miner -1 excluded)."""
        return {
            int(row[0]): int(row[1])
            for row in self._conn.execute(
                "SELECT miner, COUNT(*) FROM blocks WHERE miner >= 0 GROUP BY miner"
            )
        }

    def find_metadata(
        self,
        data_type: Optional[str] = None,
        producer: Optional[int] = None,
        created_after: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[MetadataItem]:
        """Indexed metadata search, newest first."""
        clauses: List[str] = []
        params: List[object] = []
        if data_type is not None:
            clauses.append("data_type LIKE ?")
            params.append(f"%{data_type}%")
        if producer is not None:
            clauses.append("producer = ?")
            params.append(producer)
        if created_after is not None:
            clauses.append("created_at >= ?")
            params.append(created_after)
        query = "SELECT payload FROM metadata_items"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        return [
            metadata_from_dict(json.loads(row[0]))
            for row in self._conn.execute(query, params)
        ]

    def assignments_of(self, node_id: int) -> List[Tuple[int, str]]:
        """(block index, kind) assignments recorded for one node."""
        return [
            (int(row[0]), str(row[1]))
            for row in self._conn.execute(
                "SELECT block_idx, kind FROM assignments WHERE node_id = ? "
                "ORDER BY block_idx",
                (node_id,),
            )
        ]

    def accounts(self) -> Dict[int, Tuple[str, str]]:
        """node id → (address, public key hex)."""
        return {
            int(row[0]): (str(row[1]), str(row[2]))
            for row in self._conn.execute(
                "SELECT node_id, address, public_key FROM accounts"
            )
        }

    # -- lifecycle compaction ----------------------------------------------------------

    def compact(self, archive, up_to: int, checkpoints=None) -> int:
        """Migrate blocks below ``up_to`` into the cold archive, then reclaim.

        Crash-safe by ordering: every block is appended (and fsynced) to
        the archive *before* any hot row is deleted, the deletes and the
        ``pruned_below`` floor bump commit in one transaction, and only
        then does VACUUM return the pages to the filesystem.  A crash at
        any point resumes idempotently — the archive append skips what it
        already holds (contiguous floor), and the deletes re-run
        harmlessly.  Metadata rows ride along with their block: cold
        queries go through ``repro archive fetch``.

        ``checkpoints`` maps block index → :class:`CheckpointRecord`;
        records falling in the compacted range are pinned into the
        archive alongside their block.  Returns the number of blocks
        moved out of the hot tier.
        """
        floor = self.pruned_below()
        if up_to <= floor:
            return 0
        if up_to > self.height():
            raise PersistError(
                f"cannot compact to {up_to}: store height is {self.height()}"
            )
        pinned = dict(checkpoints or {})
        for index in range(archive.archived_below, up_to):
            block = self.block_by_index(index, verify_hash=True)
            if block is None:
                raise PersistError(
                    f"cannot compact: block {index} is missing from the store"
                )
            archive.append(block, checkpoint=pinned.get(index))
        with self._conn:
            self._conn.execute("DELETE FROM blocks WHERE idx < ?", (up_to,))
            self._conn.execute(
                "DELETE FROM metadata_items WHERE block_idx < ?", (up_to,)
            )
            self._conn.execute(
                "DELETE FROM assignments WHERE block_idx < ?", (up_to,)
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
                ("pruned_below", str(up_to)),
            )
        for index in [i for i in self._cache if i < up_to]:
            del self._cache[index]
        self._conn.execute("VACUUM")
        # VACUUM in WAL mode rewrites the database *through* the WAL, so
        # the reclaimed pages sit in chain.sqlite-wal until a checkpoint;
        # truncate it now so compaction actually returns disk.
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        moved = up_to - floor
        if _obs.is_enabled():
            _obs.add("lifecycle.compacted_blocks", moved)
        return moved

    def footprint_bytes(self) -> int:
        """On-disk bytes of the hot store (main db + WAL + shared memory)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total

    # -- integrity --------------------------------------------------------------------

    def verify_integrity(self) -> List[str]:
        """Re-walk the store; returns human-readable problems (empty = ok).

        A compacted store anchors at its ``pruned_below`` floor: the walk
        starts there, and the first retained block's parent linkage is
        vouched for by the archive (its hash commits to the pruned
        prefix), not re-checked here.
        """
        problems: List[str] = []
        previous: Optional[Block] = None
        expected_index = self.pruned_below()
        for row in self._conn.execute(
            "SELECT idx, hash, payload FROM blocks ORDER BY idx"
        ):
            index, column_hash = int(row[0]), str(row[1])
            if index != expected_index:
                problems.append(
                    f"block index gap: expected {expected_index}, found {index}"
                )
                expected_index = index
            try:
                block = block_from_dict(json.loads(row[2]), verify_hash=True)
            except (ValidationError, json.JSONDecodeError) as error:
                problems.append(f"block {index} payload invalid: {error}")
                previous, expected_index = None, index + 1
                continue
            if block.current_hash != column_hash:
                problems.append(
                    f"block {index} hash column does not match its payload"
                )
            if block.index != index:
                problems.append(
                    f"block stored at idx {index} claims index {block.index}"
                )
            if previous is not None and not block.links_to(previous):
                problems.append(f"block {index} does not link to block {index - 1}")
            previous = block
            expected_index = index + 1
        return problems

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ChainStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
