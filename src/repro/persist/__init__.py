"""Durable persistence: run journal, SQLite chain store, snapshots, resume.

The paper's edge nodes churn, disconnect, and recover (Sections IV-C and
IV-D); this package gives the *simulator itself* the same resilience.  A
durable run directory holds four artefacts:

* ``journal.jsonl`` — append-only, CRC-checked write-ahead journal of
  simulation events (:mod:`repro.persist.journal`);
* ``chain.sqlite`` — indexed, queryable chain/metadata/account store
  (:mod:`repro.persist.chainstore`);
* ``snapshot-*.json`` — versioned atomic checkpoints of the full runtime
  (:mod:`repro.persist.snapshot`);
* ``manifest.json`` / ``metrics.json`` — run identity and final results
  (:mod:`repro.persist.resume`).

``repro run --persist DIR`` and ``repro resume DIR`` are the CLI faces;
:func:`run_persistent` / :func:`resume_run` the library ones.
"""

from repro.persist.chainstore import ChainStore, STORE_SCHEMA_VERSION
from repro.persist.journal import (
    JournalRecord,
    JournalRecovery,
    RunJournal,
    recover_journal,
)
from repro.persist.resume import (
    PersistConfig,
    PersistentRunResult,
    RunReport,
    inspect_run,
    resume_run,
    run_persistent,
)
from repro.persist.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotInfo,
    inspect_snapshot,
    load_latest_snapshot,
    load_snapshot,
    snapshot_paths,
    write_snapshot,
)

__all__ = [
    "ChainStore",
    "STORE_SCHEMA_VERSION",
    "JournalRecord",
    "JournalRecovery",
    "RunJournal",
    "recover_journal",
    "PersistConfig",
    "PersistentRunResult",
    "RunReport",
    "inspect_run",
    "resume_run",
    "run_persistent",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotInfo",
    "inspect_snapshot",
    "load_latest_snapshot",
    "load_snapshot",
    "snapshot_paths",
    "write_snapshot",
]
