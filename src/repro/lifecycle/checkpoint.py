"""Pinned checkpoint records: the digests that replace pruned bodies.

When a chain prunes to a checkpoint it pins a :class:`CheckpointRecord`
there — the block hash, the cumulative ledger digest *as of that block*,
and a per-node stake summary.  The record is what the dropped prefix
collapses into: any later attempt to rewrite history at or below the
checkpoint fails the anchor-hash comparison (block hashes commit to the
entire ancestor chain, so one comparison covers every pruned block), and
resume/verdict paths re-derive the ledger digest from the replay anchor
and compare it against the pinned value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.crypto.hashing import hash_items

__all__ = ["CheckpointRecord"]


@dataclass(frozen=True)
class CheckpointRecord:
    """One pinned checkpoint: chain digest + validator/stake summary."""

    index: int
    block_hash: str
    #: Cumulative ledger digest after applying blocks 0..index.
    ledger_digest: str
    #: Per-node stake at the checkpoint: (node id, repr(tokens)) pairs,
    #: sorted by node id.  ``repr`` keeps the float balances bit-exact,
    #: the same convention the ledger digest itself uses.
    stake_summary: Tuple[Tuple[int, str], ...]
    #: Timestamp of the checkpointed block (the metadata-expiry cutoff
    #: used when the in-memory index was pruned to this horizon).
    timestamp: float

    @classmethod
    def pin(cls, block: Any, state: Any) -> "CheckpointRecord":
        """Pin a record for ``block`` from the chain state *at* that block.

        ``state`` must be the replay state with exactly blocks 0..index
        applied (the pruning anchor state) — pinning from a tip state
        would record post-checkpoint balances.
        """
        if getattr(state, "blocks_applied", None) != block.index + 1:
            raise ValueError(
                f"checkpoint state has {state.blocks_applied} blocks applied, "
                f"expected {block.index + 1}"
            )
        summary = tuple(
            (node, repr(state.tokens(node))) for node in state.node_ids
        )
        return cls(
            index=block.index,
            block_hash=block.current_hash,
            ledger_digest=state.ledger_digest(),
            stake_summary=summary,
            timestamp=block.timestamp,
        )

    def digest(self) -> str:
        """One hash committing to the whole record (archive/store pinning)."""
        fields = [
            "lifecycle-checkpoint",
            self.index,
            self.block_hash,
            self.ledger_digest,
            repr(self.timestamp),
        ]
        for node, tokens in self.stake_summary:
            fields.extend((node, tokens))
        return hash_items(*fields).hex()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "block_hash": self.block_hash,
            "ledger_digest": self.ledger_digest,
            "stake_summary": [[node, tokens] for node, tokens in self.stake_summary],
            "timestamp": self.timestamp,
            "digest": self.digest(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CheckpointRecord":
        record = cls(
            index=int(payload["index"]),
            block_hash=str(payload["block_hash"]),
            ledger_digest=str(payload["ledger_digest"]),
            stake_summary=tuple(
                (int(node), str(tokens)) for node, tokens in payload["stake_summary"]
            ),
            timestamp=float(payload["timestamp"]),
        )
        stored = payload.get("digest")
        if stored is not None and stored != record.digest():
            raise ValueError(
                f"checkpoint record at {record.index} fails its digest"
            )
        return record
