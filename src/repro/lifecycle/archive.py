"""The cold-archive tier: an append-only, CRC-checked block archive.

``archive.jsonl`` sits next to the run's journal and chain store.  Every
line is one archived block — a JSON object carrying the block index,
its hash, the canonical block payload, an optional pinned checkpoint
record, and a CRC-32 over the canonical encoding of everything else
(the same framing discipline as the run journal).  Compaction appends
blocks in strict index order, so the archive is a contiguous prefix
``[0, archived_below)`` of the chain and a ranged fetch is a scan.

Crash tolerance mirrors the journal: a torn final line (the process died
mid-append during compaction) is truncated away on open and the
compactor simply re-archives from the surviving floor — archiving is
idempotent because the chain store only deletes a row *after* the
archive holds (and has fsynced) its copy.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.block import Block
from repro.core.errors import PersistError
from repro.core.serialization import block_from_dict, block_to_dict
from repro.lifecycle.checkpoint import CheckpointRecord
from repro.obs import runtime as _obs

PathLike = Union[str, Path]

#: Canonical archive file name inside a durable run directory.
ARCHIVE_NAME = "archive.jsonl"

#: Bumped on breaking changes to the record encoding.
ARCHIVE_FORMAT_VERSION = 1

__all__ = ["ARCHIVE_NAME", "ArchiveStats", "BlockArchive"]


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _crc_of(body: Dict[str, Any]) -> str:
    return format(zlib.crc32(_canonical(body)) & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class ArchiveStats:
    """Cheap summary of one archive file (``repro archive inspect``)."""

    path: Path
    blocks: int
    bytes: int
    #: First index NOT in the archive (== blocks for a healthy archive).
    archived_below: int
    #: Pinned checkpoint records found in the archive, by index.
    checkpoints: Tuple[int, ...]
    #: Bytes of torn trailing data dropped on the last open (0 = clean).
    torn_tail_bytes: int


class BlockArchive:
    """Append/scan handle for one cold-archive file.

    Opening scans the file once, truncates any torn tail, and builds an
    in-memory ``index → byte offset`` map — cold reads are rare, so a
    seek-per-fetch is fine, but integrity verification and ranged fetch
    must not re-scan per block.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._offsets: Dict[int, int] = {}
        self._checkpoints: Dict[int, CheckpointRecord] = {}
        self._length = 0
        self.torn_tail_bytes = 0
        self._load()

    # -- scanning ---------------------------------------------------------------

    def _load(self) -> None:
        self._offsets.clear()
        self._checkpoints.clear()
        self._length = 0
        self.torn_tail_bytes = 0
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        offset = 0
        expected = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                self.torn_tail_bytes = len(raw) - offset
                break
            line = raw[offset:newline]
            try:
                body = self._decode(line, expected)
            except PersistError as error:
                if newline + 1 >= len(raw):
                    # Terminated-but-invalid final record: a torn append.
                    self.torn_tail_bytes = len(raw) - offset
                    break
                raise PersistError(
                    f"archive {self.path} is corrupt mid-file: {error}"
                ) from error
            self._offsets[expected] = offset
            checkpoint = body.get("checkpoint")
            if checkpoint is not None:
                try:
                    record = CheckpointRecord.from_dict(checkpoint)
                except (KeyError, TypeError, ValueError) as error:
                    raise PersistError(
                        f"archive {self.path} checkpoint record at "
                        f"{expected} is invalid: {error}"
                    ) from error
                self._checkpoints[record.index] = record
            expected += 1
            offset = newline + 1
            self._length = offset
        if self.torn_tail_bytes:
            with open(self.path, "ab") as handle:
                handle.truncate(self._length)

    def _decode(self, line: bytes, expected_index: int) -> Dict[str, Any]:
        try:
            body = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise PersistError(f"archive record is not valid JSON: {error}") from error
        if not isinstance(body, dict):
            raise PersistError("archive record is not an object")
        crc = body.pop("crc", None)
        if crc != _crc_of(body):
            raise PersistError(
                f"archive record CRC mismatch (idx {body.get('idx')})"
            )
        if body.get("v") != ARCHIVE_FORMAT_VERSION:
            raise PersistError(f"unsupported archive format {body.get('v')!r}")
        if body.get("idx") != expected_index:
            raise PersistError(
                f"archive index break: expected {expected_index}, "
                f"got {body.get('idx')}"
            )
        return body

    # -- accessors --------------------------------------------------------------

    @property
    def archived_below(self) -> int:
        """First block index the archive does NOT hold."""
        return len(self._offsets)

    @property
    def size_bytes(self) -> int:
        return self._length

    def checkpoints(self) -> Dict[int, CheckpointRecord]:
        return dict(self._checkpoints)

    def stats(self) -> ArchiveStats:
        return ArchiveStats(
            path=self.path,
            blocks=len(self._offsets),
            bytes=self._length,
            archived_below=self.archived_below,
            checkpoints=tuple(sorted(self._checkpoints)),
            torn_tail_bytes=self.torn_tail_bytes,
        )

    # -- appending (compaction) -------------------------------------------------

    def append(
        self, block: Block, checkpoint: Optional[CheckpointRecord] = None
    ) -> None:
        """Archive one block (must be the next contiguous index)."""
        if block.index != self.archived_below:
            raise PersistError(
                f"archive append out of order: expected {self.archived_below}, "
                f"got {block.index}"
            )
        body: Dict[str, Any] = {
            "v": ARCHIVE_FORMAT_VERSION,
            "idx": block.index,
            "hash": block.current_hash,
            "block": block_to_dict(block),
        }
        if checkpoint is not None:
            body["checkpoint"] = checkpoint.to_dict()
        body["crc"] = _crc_of(body)
        encoded = _canonical(body) + b"\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            if handle.tell() != self._length:
                handle.truncate(self._length)
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        self._offsets[block.index] = self._length
        if checkpoint is not None:
            self._checkpoints[checkpoint.index] = checkpoint
        self._length += len(encoded)
        if _obs.is_enabled():
            _obs.add("lifecycle.archived_blocks")
            _obs.add("lifecycle.archive_bytes", len(encoded))

    # -- fetching ---------------------------------------------------------------

    def _record_at(self, index: int) -> Dict[str, Any]:
        offset = self._offsets.get(index)
        if offset is None:
            raise PersistError(
                f"block {index} is not in the archive "
                f"(holds [0, {self.archived_below}))"
            )
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            line = handle.readline()
        return self._decode(line.rstrip(b"\n"), index)

    def fetch(self, index: int, verify_hash: bool = True) -> Block:
        """Read one archived block, re-verifying its content hash."""
        body = self._record_at(index)
        block = block_from_dict(body["block"], verify_hash=verify_hash)
        if block.index != index or body.get("hash") != block.current_hash:
            raise PersistError(f"archived block {index} fails verification")
        return block

    def fetch_range(
        self, start: int, stop: int, verify_hashes: bool = True
    ) -> Iterator[Block]:
        """Yield archived blocks with ``start <= index < stop`` in order."""
        stop = min(stop, self.archived_below)
        for index in range(max(start, 0), stop):
            yield self.fetch(index, verify_hash=verify_hashes)

    # -- integrity ---------------------------------------------------------------

    def verify_integrity(self) -> List[str]:
        """Full cold-tier walk; returns human-readable problems (empty = ok).

        Re-hashes every archived body, re-checks parent linkage across
        the whole prefix, and re-derives every pinned checkpoint digest.
        """
        problems: List[str] = []
        previous: Optional[Block] = None
        for index in range(self.archived_below):
            try:
                block = self.fetch(index)
            except Exception as error:  # noqa: BLE001 — report, don't raise
                problems.append(f"block {index} unreadable: {error}")
                previous = None
                continue
            if previous is not None and not block.links_to(previous):
                problems.append(
                    f"block {index} does not link to archived parent"
                )
            checkpoint = self._checkpoints.get(index)
            if checkpoint is not None and checkpoint.block_hash != block.current_hash:
                problems.append(
                    f"checkpoint record at {index} pins a different block hash"
                )
            previous = block
        return problems
