"""Retention-horizon and storage-bound arithmetic for chain lifecycle.

All pure functions of a :class:`~repro.core.config.SystemConfig` and a
chain height — no chain access, so the persistence layer, the CLI, and
the observability probes can all agree on where the horizon sits without
holding a live chain.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LifecycleSpec, SystemConfig

__all__ = [
    "checkpoint_lag",
    "hot_bound_blocks",
    "last_checkpoint_for",
    "lifecycle_enabled",
    "retention_horizon",
]


def lifecycle_enabled(config: SystemConfig) -> bool:
    """True when the config prunes (a spec plus a checkpoint schedule)."""
    spec: Optional[LifecycleSpec] = getattr(config, "lifecycle", None)
    return spec is not None and config.checkpoint_interval > 0


def checkpoint_lag(config: SystemConfig) -> int:
    """Confirmation depth before a block may become a checkpoint."""
    if config.checkpoint_lag is not None:
        return config.checkpoint_lag
    return 2 * config.checkpoint_interval


def last_checkpoint_for(config: SystemConfig, height: int) -> int:
    """Index of the newest checkpointed block at ``height`` (0 if none).

    Mirrors :meth:`repro.core.blockchain.Blockchain.last_checkpoint` so
    horizon math works from a store height alone (offline ``repro prune``
    has no live chain).
    """
    interval = config.checkpoint_interval
    if interval <= 0:
        return 0
    confirmed = height - checkpoint_lag(config)
    if confirmed <= 0:
        return 0
    return (confirmed // interval) * interval


def retention_horizon(config: SystemConfig, height: int) -> int:
    """First block index whose body must be retained at ``height``.

    The horizon is the newest checkpoint index that is both confirmed
    (``last_checkpoint``) and buried deeper than the retention window —
    pruning is always anchored at a checkpoint, never mid-interval, so a
    pinned :class:`~repro.lifecycle.checkpoint.CheckpointRecord` exists
    exactly at every horizon the chain has ever pruned to.  Returns 0
    (nothing prunable) when lifecycle is off or the chain is too short.
    """
    if not lifecycle_enabled(config):
        return 0
    interval = config.checkpoint_interval
    by_retention = (height - config.lifecycle.retain_blocks) // interval * interval
    return max(0, min(last_checkpoint_for(config, height), by_retention))


def hot_bound_blocks(config: SystemConfig) -> Optional[int]:
    """Upper bound on retained block bodies, or None when unbounded.

    A chain pruned on every append retains ``height - horizon + 1``
    bodies; the horizon lags the tip by at most
    ``max(retain_blocks, checkpoint_lag) + interval`` blocks (one full
    interval of slack because the horizon only advances in checkpoint
    steps).  The ``storage-unbounded`` monitor fires when a live chain
    exceeds this.
    """
    if not lifecycle_enabled(config):
        return None
    interval = config.checkpoint_interval
    slack = max(config.lifecycle.retain_blocks, checkpoint_lag(config))
    return slack + interval + 1
