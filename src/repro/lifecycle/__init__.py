"""Chain lifecycle: finite-lifetime blocks with checkpoint-anchored pruning.

The paper's edge nodes have strictly bounded storage, yet a chain that
never forgets grows without bound.  This subsystem keeps per-node storage
bounded on long runs while preserving every digest/verification contract
(DESIGN.md §15):

* :class:`~repro.core.config.LifecycleSpec` (lives in config so it rides
  the existing manifest round-trip) configures the retention window;
* :mod:`repro.lifecycle.spec` derives the pruning horizon and the hot
  storage bound from a config;
* :mod:`repro.lifecycle.checkpoint` pins a :class:`CheckpointRecord` —
  cumulative ledger digest + validator/stake summary — at every pruned-to
  checkpoint, the snippet idiom of keeping digests at checkpoints and
  dropping bodies below them;
* :mod:`repro.lifecycle.archive` is the cold tier: an append-only,
  CRC-checked JSONL file the chain store's ``compact()`` migrates pruned
  block bodies into.
"""

from repro.core.config import LifecycleSpec
from repro.lifecycle.archive import ARCHIVE_NAME, BlockArchive, ArchiveStats
from repro.lifecycle.checkpoint import CheckpointRecord
from repro.lifecycle.spec import hot_bound_blocks, lifecycle_enabled, retention_horizon

__all__ = [
    "ARCHIVE_NAME",
    "ArchiveStats",
    "BlockArchive",
    "CheckpointRecord",
    "LifecycleSpec",
    "hot_bound_blocks",
    "lifecycle_enabled",
    "retention_horizon",
]
