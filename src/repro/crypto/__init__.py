"""Cryptographic substrate: SHA-256 helpers, secp256k1 ECDSA, Merkle trees.

Everything is implemented from scratch on top of :mod:`hashlib` so the
blockchain core has a real signature scheme without external dependencies.
"""

from repro.crypto.hashing import (
    DIGEST_BITS,
    DIGEST_SIZE,
    hash_items,
    hash_items_hex,
    hash_to_int,
    sha256,
    sha256_hex,
)
from repro.crypto.keys import (
    GENERATOR,
    INFINITY,
    N as CURVE_ORDER,
    CurvePoint,
    PrivateKey,
    PublicKey,
    generate_keypair,
)
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_proof
from repro.crypto.signature import Signature, sign, verify

__all__ = [
    "DIGEST_BITS",
    "DIGEST_SIZE",
    "sha256",
    "sha256_hex",
    "hash_items",
    "hash_items_hex",
    "hash_to_int",
    "CurvePoint",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "GENERATOR",
    "INFINITY",
    "CURVE_ORDER",
    "Signature",
    "sign",
    "verify",
    "MerkleTree",
    "MerkleProof",
    "merkle_root",
    "verify_proof",
]
