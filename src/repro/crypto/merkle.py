"""Merkle trees over block contents.

The paper's blocks carry a content section (metadata items plus storage
assignments).  We digest that section with a Merkle tree so a block header
commits to its contents and individual metadata items can be proven present
without shipping the whole block — useful for the data-access protocol where
a requester holds only headers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import sha256

#: Domain-separation prefixes guard against second-preimage attacks where an
#: interior node is presented as a leaf.
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Digest of the empty tree (hash of a reserved sentinel).
EMPTY_ROOT = sha256(b"repro/merkle/empty")


def _leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index and sibling digests bottom-up."""

    leaf_index: int
    siblings: Tuple[bytes, ...]


class MerkleTree:
    """Binary Merkle tree with duplicate-last-leaf padding at odd levels."""

    def __init__(self, leaves: Sequence[bytes]):
        self._leaf_data = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = []
        self._build()

    def _build(self) -> None:
        if not self._leaf_data:
            self._levels = [[EMPTY_ROOT]]
            return
        level = [_leaf_hash(leaf) for leaf in self._leaf_data]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                self._levels[-1] = level
            level = [
                _node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def root_hex(self) -> str:
        return self.root.hex()

    def __len__(self) -> int:
        return len(self._leaf_data)

    def prove(self, leaf_index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``leaf_index``."""
        if not self._leaf_data:
            raise IndexError("cannot prove inclusion in an empty tree")
        if not (0 <= leaf_index < len(self._leaf_data)):
            raise IndexError("leaf index out of range")
        siblings: List[bytes] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            # Duplicate-padding means the sibling always exists at this point.
            siblings.append(level[sibling_index])
            index //= 2
        return MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings))


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: the root digest of ``leaves`` without keeping the tree."""
    return MerkleTree(leaves).root


def verify_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` is included under ``root`` per ``proof``."""
    digest = _leaf_hash(leaf)
    index = proof.leaf_index
    for sibling in proof.siblings:
        if index % 2 == 0:
            digest = _node_hash(digest, sibling)
        else:
            digest = _node_hash(sibling, digest)
        index //= 2
    return digest == root
