"""Hashing primitives used throughout the edge blockchain.

All protocol-level hashing in the system is SHA-256, matching the paper's
description ("hash function SHA-256 generates a 256-bit binary number",
Section V-A).  The helpers here normalise the many "hash this thing" call
sites into a small, well-tested surface:

* :func:`sha256` / :func:`sha256_hex` — raw digest over bytes.
* :func:`hash_items` — canonical digest over a sequence of heterogeneous
  fields (ints, strings, bytes), with unambiguous framing so that
  ``hash_items("ab", "c") != hash_items("a", "bc")``.
* :func:`hash_to_int` — interpret a digest as a big-endian integer, the
  operation behind the paper's ``POSHash mod M`` (Eq. 7).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

HashableField = Union[bytes, str, int]

#: Number of bits in a SHA-256 digest.
DIGEST_BITS = 256

#: Number of bytes in a SHA-256 digest.
DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data`` as 32 raw bytes."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a 64-char lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def _encode_field(field: HashableField) -> bytes:
    """Encode one field with a type tag so distinct types never collide."""
    if isinstance(field, bytes):
        return b"B" + field
    if isinstance(field, str):
        return b"S" + field.encode("utf-8")
    if isinstance(field, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool fields are ambiguous; pass an int or str")
    if isinstance(field, int):
        # Sign-and-magnitude so negative values are representable.
        sign = b"-" if field < 0 else b"+"
        magnitude = abs(field)
        length = max(1, (magnitude.bit_length() + 7) // 8)
        return b"I" + sign + magnitude.to_bytes(length, "big")
    raise TypeError(f"unhashable field type: {type(field).__name__}")


def hash_items(*fields: HashableField) -> bytes:
    """Hash a sequence of fields with unambiguous length framing.

    Each field is encoded with a one-byte type tag and prefixed with its
    4-byte big-endian length, so no concatenation of distinct field
    sequences can produce the same byte stream.
    """
    hasher = hashlib.sha256()
    for field in fields:
        encoded = _encode_field(field)
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return hasher.digest()


def hash_items_hex(*fields: HashableField) -> str:
    """Like :func:`hash_items` but returning lowercase hex."""
    return hash_items(*fields).hex()


def hash_to_int(digest: bytes) -> int:
    """Interpret a digest as a big-endian unsigned integer.

    This is the reduction used by the PoS hit computation (Eq. 7): the
    256-bit ``POSHash`` becomes an integer which is then taken ``mod M``.
    """
    if not digest:
        raise ValueError("empty digest")
    return int.from_bytes(digest, "big")


def hash_concat(left: bytes, right: bytes) -> bytes:
    """Hash the concatenation of two digests (Merkle interior nodes)."""
    return sha256(left + right)


def checksum8(data: bytes) -> str:
    """Short 8-hex-char checksum for human-readable identifiers and logs."""
    return sha256_hex(data)[:8]


def iter_hash(seed: bytes, rounds: int) -> bytes:
    """Apply SHA-256 ``rounds`` times starting from ``seed``.

    Used by the energy benchmarks to model a PoW miner's brute-force loop
    deterministically (a PoW attempt is one such round).
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    digest = seed
    for _ in range(rounds):
        digest = sha256(digest)
    return digest


def combine_hex(parts: Iterable[str]) -> str:
    """Hash an iterable of hex digests into one hex digest (order-sensitive)."""
    hasher = hashlib.sha256()
    for part in parts:
        raw = bytes.fromhex(part)
        hasher.update(len(raw).to_bytes(4, "big"))
        hasher.update(raw)
    return hasher.hexdigest()
