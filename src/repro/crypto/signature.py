"""ECDSA signatures over secp256k1.

Metadata items carry the producer's signature so any node can validate data
integrity via the producer's public key (Section III-B-2 of the paper).  The
signer here uses an RFC-6979-style deterministic nonce (HMAC-free simplified
derivation) so signing is reproducible in seeded simulations while remaining
secure against nonce reuse across distinct messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import hash_items, sha256
from repro.crypto.keys import GENERATOR, N, PrivateKey, PublicKey, _inverse_mod


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s), both scalars in [1, N)."""

    r: int
    s: int

    def __post_init__(self) -> None:
        if not (1 <= self.r < N and 1 <= self.s < N):
            raise ValueError("signature components out of range")

    def encode(self) -> bytes:
        """Fixed-width 64-byte encoding (32-byte r ‖ 32-byte s)."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    def hex(self) -> str:
        return self.encode().hex()

    @classmethod
    def decode(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("signature must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))

    @classmethod
    def from_hex(cls, text: str) -> "Signature":
        return cls.decode(bytes.fromhex(text))


def _message_scalar(message: bytes) -> int:
    """Map a message to a scalar: SHA-256 then reduce mod N (z in ECDSA)."""
    return int.from_bytes(sha256(message), "big") % N


def _deterministic_nonce(private: PrivateKey, message: bytes, attempt: int) -> int:
    """Deterministic per-(key, message) nonce in [1, N).

    A simplified RFC-6979 construction: the nonce is a hash of the private
    scalar, the message digest, and a retry counter, rejection-sampled into
    the valid scalar range.  Distinct messages yield independent nonces, so
    the classic nonce-reuse key recovery does not apply.
    """
    counter = 0
    while True:
        digest = hash_items(private.encode(), sha256(message), attempt, counter)
        candidate = int.from_bytes(digest, "big")
        if 1 <= candidate < N:
            return candidate
        counter += 1


def sign(private: PrivateKey, message: bytes) -> Signature:
    """Sign ``message`` with ``private``; deterministic for a given input."""
    z = _message_scalar(message)
    attempt = 0
    while True:
        k = _deterministic_nonce(private, message, attempt)
        point = GENERATOR * k
        assert point.x is not None
        r = point.x % N
        if r == 0:
            attempt += 1
            continue
        s = (_inverse_mod(k, N) * (z + r * private.secret)) % N
        if s == 0:
            attempt += 1
            continue
        # Canonical low-s form (as Bitcoin mandates) so signatures are unique.
        if s > N // 2:
            s = N - s
        return Signature(r, s)


def verify(public: PublicKey, message: bytes, signature: Signature) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``public``."""
    z = _message_scalar(message)
    try:
        w = _inverse_mod(signature.s, N)
    except ZeroDivisionError:
        return False
    u1 = (z * w) % N
    u2 = (signature.r * w) % N
    point = GENERATOR * u1 + public.point * u2
    if point.is_infinity:
        return False
    assert point.x is not None
    return point.x % N == signature.r
