"""Asyncio peer connection manager: dial, accept, handshake, keep alive.

One :class:`PeerManager` per node.  Responsibilities:

* **Listen** on a TCP port and accept inbound peers.
* **Dial** the peers this node is responsible for (the lower node id
  dials the higher — a deterministic rule that survives restarts on both
  sides without duplicate-connection races).
* **Handshake** before any protocol traffic: both sides exchange a
  ``hello`` frame carrying node id, genesis digest, and protocol
  version; any mismatch closes the socket.  The paper's testbed nodes
  shared a genesis by construction — here it is enforced.
* **Send queues**: every peer gets a bounded outbound queue drained by a
  writer task.  A full queue applies backpressure by dropping the newest
  frame (the protocol is loss-tolerant by design: lost announcements are
  repaired by gap recovery / chain sync).
* **Heartbeats**: periodic pings; a silent link is declared dead and
  closed, which triggers reconnection.
* **Reconnect** with jittered exponential backoff, forever — edge
  deployments churn, and the dial side must keep trying until the peer
  returns (:func:`reconnect_backoff` is the pure schedule, unit-tested
  separately).

Observability threads through the usual one-branch hooks:
``net.frames_sent`` / ``net.frames_received`` / ``net.reconnects`` /
``net.sends_dropped`` counters and ``net.handshake_ms`` / ``net.rtt_ms``
histograms, all disabled by default.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.net.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireError,
    encode_frame,
    hello_frame,
    ping_frame,
    pong_frame,
)
from repro.obs import runtime as _obs

#: Chunk size for socket reads.
_READ_BYTES = 1 << 16


def reconnect_backoff(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.25,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before reconnect ``attempt`` (0-based): capped exponential.

    ``delay = min(cap, base·2^attempt)`` stretched by up to ``+jitter``
    fraction so a rebooted hub is not stampeded by synchronised dialers.
    Deterministic when ``rng`` is seeded; jitter-free when ``rng`` is None.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    if base <= 0 or cap <= 0:
        raise ValueError("base and cap must be positive")
    if not (0.0 <= jitter <= 1.0):
        raise ValueError("jitter must be in [0, 1]")
    # 2^attempt overflows nothing but needn't be computed past the cap.
    delay = min(cap, base * (2.0 ** min(attempt, 32)))
    if rng is not None and jitter > 0.0:
        delay *= 1.0 + jitter * rng.random()
    return min(delay, cap * (1.0 + jitter))


@dataclass(frozen=True)
class PeerConfig:
    """Tunables for connection management (wall-clock seconds)."""

    handshake_timeout: float = 5.0
    heartbeat_interval: float = 1.0
    #: Heartbeat intervals of silence before the link is declared dead.
    heartbeat_misses: int = 3
    send_queue_frames: int = 256
    reconnect_base: float = 0.05
    reconnect_cap: float = 2.0
    reconnect_jitter: float = 0.25
    max_frame_bytes: int = MAX_FRAME_BYTES


@dataclass(frozen=True)
class HandshakeInfo:
    """What a completed handshake established about the remote side."""

    node_id: int
    genesis_digest: str
    listen_port: int


@dataclass
class PeerState:
    """One live (handshaken) connection."""

    info: HandshakeInfo
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    queue: "asyncio.Queue[Optional[bytes]]"
    tasks: list = field(default_factory=list)
    last_rx: float = 0.0

    def close(self) -> None:
        for task in self.tasks:
            task.cancel()
        self.tasks.clear()
        try:
            self.writer.close()
        except Exception:
            pass


class PeerManager:
    """Connection fabric for one node: accept + dial + keep-alive."""

    def __init__(
        self,
        node_id: int,
        genesis_digest: str,
        on_message: Callable[[int, Dict[str, Any]], None],
        config: Optional[PeerConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        rng: Optional[random.Random] = None,
        on_peer_up: Optional[Callable[[int], None]] = None,
        on_peer_down: Optional[Callable[[int], None]] = None,
    ):
        self.node_id = node_id
        self.genesis_digest = genesis_digest
        self.config = config or PeerConfig()
        self.host = host
        self.port = port  # updated to the bound port once listening
        self._on_message = on_message
        self._on_peer_up = on_peer_up
        self._on_peer_down = on_peer_down
        self._rng = rng or random.Random(node_id)
        self._peers: Dict[int, PeerState] = {}
        self._dial_targets: Dict[int, tuple] = {}  # peer id -> (host, port)
        self._dial_tasks: Dict[int, asyncio.Task] = {}
        self._dial_attempts: Dict[int, int] = {}  # peer id -> failed attempts
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        # Counters mirrored into obs when enabled.
        self.frames_sent = 0
        self.frames_received = 0
        self.reconnects = 0
        self.sends_dropped = 0

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> int:
        """Bind the listening socket; returns the actual port."""
        self._server = await asyncio.start_server(
            self._on_inbound, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        """Tear everything down: server, dial loops, live connections."""
        self._closed = True
        for task in self._dial_tasks.values():
            task.cancel()
        self._dial_tasks.clear()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for peer in list(self._peers.values()):
            peer.close()
        self._peers.clear()
        await asyncio.sleep(0)  # let cancelled tasks unwind

    # -- queries -------------------------------------------------------------------

    def is_connected(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def connected_peers(self) -> list:
        return sorted(self._peers)

    # -- dialing -------------------------------------------------------------------

    def dial(self, peer_id: int, host: str, port: int) -> None:
        """Maintain a connection to ``peer_id``, reconnecting forever."""
        self._dial_targets[peer_id] = (host, port)
        if peer_id not in self._dial_tasks and peer_id not in self._peers:
            self._dial_tasks[peer_id] = asyncio.ensure_future(
                self._dial_loop(peer_id)
            )

    async def wait_connected(self, peer_ids, timeout: float = 10.0) -> None:
        """Block until every peer in ``peer_ids`` has completed a handshake."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            missing = [p for p in peer_ids if p not in self._peers]
            if not missing:
                return
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"peers never connected: {missing}")
            await asyncio.sleep(0.01)

    def _next_dial_delay(self, peer_id: int) -> float:
        """Backoff delay before the next dial to ``peer_id``; advances the schedule.

        Failed attempts persist across dial loops and reset only on a
        successful handshake (:meth:`_adopt`), so a peer that accepts TCP
        connects but keeps failing the handshake continues backing off
        instead of restarting the schedule from the base delay.
        """
        cfg = self.config
        attempt = self._dial_attempts.get(peer_id, 0)
        self._dial_attempts[peer_id] = attempt + 1
        return reconnect_backoff(
            attempt,
            base=cfg.reconnect_base,
            cap=cfg.reconnect_cap,
            jitter=cfg.reconnect_jitter,
            rng=self._rng,
        )

    async def _dial_loop(self, peer_id: int) -> None:
        while not self._closed and peer_id not in self._peers:
            host, port = self._dial_targets[peer_id]
            try:
                reader, writer = await asyncio.open_connection(host, port)
                started = asyncio.get_running_loop().time()
                info, decoder, preamble = await self._handshake(reader, writer)
                if info.node_id != peer_id:
                    raise WireError(
                        f"dialed node {peer_id} but peer claims id {info.node_id}"
                    )
                if self._dial_attempts.get(peer_id, 0) > 0:
                    self.reconnects += 1
                    _obs.add("net.reconnects")
                _obs.observe(
                    "net.handshake_ms",
                    (asyncio.get_running_loop().time() - started) * 1000.0,
                )
                self._adopt(info, reader, writer, decoder, preamble)
                return
            except (OSError, WireError, asyncio.TimeoutError, TimeoutError):
                await asyncio.sleep(self._next_dial_delay(peer_id))
        self._dial_tasks.pop(peer_id, None)

    # -- handshake -----------------------------------------------------------------

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple:
        """Exchange ``hello`` frames; raises WireError on any mismatch.

        Returns ``(info, decoder, preamble)``: the established identity,
        the stream decoder (it may hold a partial frame), and any frames
        that rode in behind the hello.
        """
        loop = asyncio.get_running_loop()
        writer.write(
            encode_frame(
                hello_frame(self.node_id, self.genesis_digest, self.port, loop.time())
            )
        )
        await writer.drain()
        decoder = FrameDecoder(max_bytes=self.config.max_frame_bytes)
        frames: list = []
        while not frames:
            chunk = await asyncio.wait_for(
                reader.read(_READ_BYTES), timeout=self.config.handshake_timeout
            )
            if not chunk:
                raise WireError("connection closed during handshake")
            frames = decoder.feed(chunk)
        hello = frames.pop(0)
        if hello.get("kind") != "hello":
            raise WireError(f"expected hello frame, got {hello.get('kind')!r}")
        if hello.get("v") != PROTOCOL_VERSION:
            raise WireError(
                f"protocol version mismatch: ours {PROTOCOL_VERSION}, "
                f"theirs {hello.get('v')!r}"
            )
        if hello.get("genesis") != self.genesis_digest:
            raise WireError("genesis digest mismatch — peer is on a different chain")
        try:
            info = HandshakeInfo(
                node_id=int(hello["node"]),
                genesis_digest=str(hello["genesis"]),
                listen_port=int(hello["port"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise WireError(f"malformed hello frame: {error}") from error
        return info, decoder, frames

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            info, decoder, preamble = await self._handshake(reader, writer)
        except (WireError, asyncio.TimeoutError, TimeoutError, OSError):
            writer.close()
            return
        self._adopt(info, reader, writer, decoder, preamble)

    def _adopt(
        self,
        info: HandshakeInfo,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        preamble: list,
    ) -> None:
        """Install a handshaken connection and start its service tasks."""
        existing = self._peers.pop(info.node_id, None)
        if existing is not None:
            existing.close()
        peer = PeerState(
            info=info,
            reader=reader,
            writer=writer,
            queue=asyncio.Queue(maxsize=self.config.send_queue_frames),
            last_rx=asyncio.get_running_loop().time(),
        )
        self._peers[info.node_id] = peer
        self._dial_tasks.pop(info.node_id, None)
        # Successful handshake: the backoff schedule starts over.
        self._dial_attempts.pop(info.node_id, None)
        peer.tasks = [
            asyncio.ensure_future(self._reader_loop(peer, decoder, preamble)),
            asyncio.ensure_future(self._writer_loop(peer)),
            asyncio.ensure_future(self._heartbeat_loop(peer)),
        ]
        if self._on_peer_up is not None:
            self._on_peer_up(info.node_id)

    # -- per-connection service tasks ----------------------------------------------

    def _lost(self, peer: PeerState) -> None:
        """Connection died: clean up and, if we are the dialer, re-dial."""
        current = self._peers.get(peer.info.node_id)
        if current is not peer:
            return  # already replaced by a fresh connection
        del self._peers[peer.info.node_id]
        peer.close()
        if self._on_peer_down is not None:
            self._on_peer_down(peer.info.node_id)
        if not self._closed and peer.info.node_id in self._dial_targets:
            self.dial(peer.info.node_id, *self._dial_targets[peer.info.node_id])

    async def _reader_loop(
        self, peer: PeerState, decoder: FrameDecoder, preamble: list
    ) -> None:
        try:
            frames = list(preamble)
            while True:
                for frame in frames:
                    self._dispatch(peer, frame)
                chunk = await peer.reader.read(_READ_BYTES)
                if not chunk:
                    break  # EOF
                peer.last_rx = asyncio.get_running_loop().time()
                frames = decoder.feed(chunk)
        except asyncio.CancelledError:
            return
        except (OSError, WireError):
            pass  # malformed stream or dead socket: drop the connection
        self._lost(peer)

    def _dispatch(self, peer: PeerState, frame: Dict[str, Any]) -> None:
        kind = frame.get("kind")
        if kind == "ping":
            self._enqueue(peer, encode_frame(pong_frame(frame.get("t", 0.0))))
            return
        if kind == "pong":
            sent = frame.get("t")
            if isinstance(sent, (int, float)):
                rtt = asyncio.get_running_loop().time() - float(sent)
                _obs.observe("net.rtt_ms", max(rtt, 0.0) * 1000.0)
            return
        self.frames_received += 1
        _obs.add("net.frames_received")
        self._on_message(peer.info.node_id, frame)

    async def _writer_loop(self, peer: PeerState) -> None:
        try:
            while True:
                data = await peer.queue.get()
                if data is None:
                    break
                peer.writer.write(data)
                await peer.writer.drain()
        except asyncio.CancelledError:
            return
        except (OSError, ConnectionError):
            self._lost(peer)

    async def _heartbeat_loop(self, peer: PeerState) -> None:
        cfg = self.config
        try:
            while True:
                await asyncio.sleep(cfg.heartbeat_interval)
                loop_now = asyncio.get_running_loop().time()
                silent = loop_now - peer.last_rx
                if silent > cfg.heartbeat_interval * cfg.heartbeat_misses:
                    self._lost(peer)
                    return
                self._enqueue(peer, encode_frame(ping_frame(loop_now)))
        except asyncio.CancelledError:
            return

    # -- sending -------------------------------------------------------------------

    def _enqueue(self, peer: PeerState, data: bytes) -> bool:
        try:
            peer.queue.put_nowait(data)
        except asyncio.QueueFull:
            # Backpressure: protocol traffic is repairable (gap recovery,
            # chain sync), so shedding beats unbounded buffering on a slow
            # or wedged link.
            self.sends_dropped += 1
            _obs.add("net.sends_dropped")
            return False
        return True

    def send_frame(self, peer_id: int, data: bytes) -> bool:
        """Queue raw frame bytes to a peer; False if down or queue full."""
        peer = self._peers.get(peer_id)
        if peer is None:
            return False
        if not self._enqueue(peer, data):
            return False
        self.frames_sent += 1
        _obs.add("net.frames_sent")
        return True
