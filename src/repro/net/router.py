"""Socket-backed message router, drop-in for the simulated transport.

:class:`SocketNetwork` exposes the exact surface protocol code consumes
from :class:`repro.simnet.transport.Network` — ``register`` /
``is_online`` / ``send`` / ``broadcast`` returning the same
:class:`~repro.simnet.transport.SendReceipt` — so the PoS miner, the
recent-block allocation path, gap/chain sync, and the Raft handlers run
**unmodified** over real sockets.

Semantics mapping:

* unicast ``send`` → one framed message on the peer's TCP connection
  (the kernel routes; multi-hop costs are *modelled*, see below);
* ``broadcast`` → direct fan-out to every connected peer, delivering to
  each node exactly once — the same delivered-set the simulator's BFS
  spanning tree produces on a connected topology (the broadcast-parity
  test pins this equivalence);
* byte accounting still flows into a :class:`~repro.simnet.trace.
  TransmissionTrace` (one "hop" per socket send of the *serialised*
  frame size), and drops into ``messages_dropped``, mirroring the
  simulator's loss accounting so sim and live traffic summaries compare
  field for field.

Latency shaping — the parity-critical piece
-------------------------------------------

The simulator delivers a message at ``sent_at + path_latency(size,
hops)`` on the shared logical clock; a raw socket delivers at "whenever
the kernel got around to it", with the receiver's clock parked at its
last local timer.  To keep live runs digest-identical to simnet, the
receiver re-derives the *modelled* delivery instant — the envelope
carries the sender's logical send time and model size, the hop count
comes from the shared deterministic :class:`~repro.simnet.topology.
Topology`, and the handler is scheduled on the receiver's
:class:`~repro.net.clock.AsyncEngine` at exactly that logical time.
Handlers therefore observe the same ``engine.now`` as their simulated
counterparts, and everything they derive from it (mining schedules,
block timestamps, retry timers) matches bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.errors import ValidationError
from repro.net.peer import PeerManager
from repro.net.wire import decode_message, encode_message
from repro.obs import runtime as _obs
from repro.obs.tracer import TraceContext
from repro.simnet.channel import ChannelModel
from repro.simnet.topology import UNREACHABLE, Topology
from repro.simnet.trace import TransmissionTrace
from repro.simnet.transport import MessageHandler, SendReceipt


class SocketNetwork:
    """Unicast + broadcast over a :class:`PeerManager`'s live connections."""

    def __init__(
        self,
        node_id: int,
        node_count: int,
        peers: PeerManager,
        engine: Any = None,
        topology: Optional[Topology] = None,
        channel: Optional[ChannelModel] = None,
        trace: Optional[TransmissionTrace] = None,
    ):
        self.node_id = node_id
        self.node_count = node_count
        self.peers = peers
        #: AsyncEngine + topology + channel enable latency shaping; when
        #: any is absent, delivery degrades to immediate dispatch.
        self.engine = engine
        self.topology = topology
        self.channel = channel
        self.trace = trace if trace is not None else TransmissionTrace()
        self._handlers: Dict[int, MessageHandler] = {}
        #: Counters matching :class:`repro.simnet.transport.Network`.
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Frames that arrived but failed to decode (malformed/tampered).
        self.frames_rejected = 0

    # -- membership (Network-compatible surface) -----------------------------------

    def register(self, node: int, handler: MessageHandler) -> None:
        """Attach the local protocol handler (the one node this router hosts)."""
        self._handlers[node] = handler

    def is_online(self, node: int) -> bool:
        """Local node: always online.  Remote: online iff a link is up."""
        if node == self.node_id:
            return True
        return self.peers.is_connected(node)

    def online_nodes(self) -> List[int]:
        return sorted(set(self.peers.connected_peers()) | {self.node_id})

    # -- unicast ------------------------------------------------------------------

    def send(
        self,
        source: int,
        target: int,
        payload: Any,
        size_bytes: int,
        category: str,
    ) -> SendReceipt:
        """Frame ``payload`` and queue it on the link to ``target``.

        ``size_bytes`` is the protocol-model size; billing uses the real
        serialised frame size so live overhead reflects actual bytes.
        ``delivered=False`` means the peer is down or its queue is full —
        the same contract the simulator's receipt carries.
        """
        if source == target:
            raise ValueError("loopback sends are not routed")
        frame = encode_message(
            source,
            payload,
            category,
            size_bytes=size_bytes,
            sent_at=self._now(),
            trace_ctx=self._trace_ctx(),
        )
        if not self.peers.send_frame(target, frame):
            self.messages_dropped += 1
            _obs.add("net.messages_dropped")
            return SendReceipt(delivered=False, hops=0, latency=0.0)
        self.trace.record_hop(source, target, len(frame), category)
        self.messages_sent += 1
        _obs.add("net.messages_sent")
        hops, latency = self._model(target, size_bytes)
        return SendReceipt(delivered=True, hops=hops, latency=latency)

    # -- broadcast ----------------------------------------------------------------

    def broadcast(
        self,
        source: int,
        payload: Any,
        size_bytes: int,
        category: str,
        mode: str = "tree",
    ) -> int:
        """Fan ``payload`` out to every connected peer; returns the count.

        ``mode`` is accepted for signature compatibility; a socket mesh
        has no redundant flooding copies to model — every node receives
        the message exactly once, like the simulator's ``tree`` mode.
        """
        if mode not in ("tree", "flood"):
            raise ValueError(f"unknown broadcast mode: {mode}")
        frame = encode_message(
            source,
            payload,
            category,
            size_bytes=size_bytes,
            sent_at=self._now(),
            trace_ctx=self._trace_ctx(),
        )
        reached = 0
        for peer_id in self.peers.connected_peers():
            if self.peers.send_frame(peer_id, frame):
                self.trace.record_hop(source, peer_id, len(frame), category)
                reached += 1
        self.messages_sent += 1
        _obs.add("net.messages_sent")
        if reached == 0:
            self.messages_dropped += 1
            _obs.add("net.messages_dropped")
        return reached

    # -- delivery -----------------------------------------------------------------

    def deliver_frame(self, peer_id: int, frame: Dict[str, Any]) -> None:
        """Decode an inbound ``msg`` frame and invoke the local handler.

        Wired as the :class:`PeerManager`'s ``on_message`` callback.
        Malformed or tampered frames (bad JSON shape, failed block-hash
        re-verification) are counted and dropped — a hostile peer cannot
        crash the node's reader.

        Delivery is shaped onto the logical clock: the handler runs as an
        engine timer at ``sent_at + modelled path latency``, matching the
        instant the simulator would deliver the same message.
        """
        try:
            source, payload, category, size_bytes, sent_at = decode_message(frame)
        except ValidationError:
            self.frames_rejected += 1
            _obs.add("net.frames_rejected")
            return
        handler = self._handlers.get(self.node_id)
        if handler is None:
            return
        tc = frame.get("tc")
        if self.engine is None:
            self._dispatch(handler, source, payload, category, tc)
            return
        _, latency = self._model(source, size_bytes)
        self.engine.call_at(
            sent_at + latency, self._dispatch, handler, source, payload, category, tc
        )

    def _dispatch(
        self,
        handler: MessageHandler,
        source: int,
        payload: Any,
        category: str,
        tc: Any = None,
    ) -> None:
        # Continue the sender's trace when the envelope carried a context:
        # the delivery span re-parents onto the remote span id, so a merged
        # multi-process trace stitches the send and the receive together.
        ctx = TraceContext.from_wire(tc) if tc is not None else None
        with _obs.remote_span("net.deliver", "net", ctx, msg=category):
            handler(source, payload, category)

    # -- modelling helpers --------------------------------------------------------

    def _trace_ctx(self) -> Optional[List[Any]]:
        """Wire form of the current trace context (None when obs is off)."""
        ctx = _obs.current_trace_context()
        return ctx.to_wire() if ctx is not None else None

    def _now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    def _model(self, remote: int, size_bytes: int) -> tuple:
        """Modelled ``(hops, latency)`` between this node and ``remote``.

        Falls back to a single hop when no topology/channel is attached
        or the model graph says unreachable (the socket clearly works).
        """
        hops = 1
        if self.topology is not None:
            counted = self.topology.hop_count(remote, self.node_id)
            if counted != UNREACHABLE and counted > 0:
                hops = counted
        if self.channel is None:
            return hops, 0.0
        return hops, self.channel.path_latency(size_bytes, hops)

    # -- accounting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Traffic summary with the same keys as the simulator transport's."""
        return {
            **self.trace.snapshot(),
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
        }
