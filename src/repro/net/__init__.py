"""Live asyncio network runtime: real sockets under the unmodified protocol.

The simulator (:mod:`repro.simnet`) proves the protocol's *logic*; this
package proves its *deployability*: the same :class:`~repro.core.node.
EdgeNode` handlers run over real TCP sockets on localhost (or a LAN),
with a framed wire protocol, handshakes, heartbeats, and reconnection —
the runtime shape of the paper's Docker/Naivechain testbed.

* :mod:`repro.net.wire` — versioned length-prefixed JSON frame codec and
  the message (de)serialisers built on :mod:`repro.core.serialization`.
* :mod:`repro.net.clock` — :class:`AsyncEngine`, the asyncio-backed
  scheduler that is duck-type compatible with
  :class:`~repro.simnet.engine.EventEngine` and keeps a *logical* clock
  (timers observe their exact scheduled logical time) so live runs stay
  comparable — and, for seeded workloads, digest-identical — to simnet.
* :mod:`repro.net.peer` — connection manager: dial/accept, handshake,
  per-peer bounded send queues, heartbeats, jittered-backoff reconnect.
* :mod:`repro.net.router` — :class:`SocketNetwork`, drop-in
  signature-compatible with :class:`~repro.simnet.transport.Network`.
* :mod:`repro.net.harness` — N-node live clusters on localhost, the
  deterministic workload driver, and the sim/live parity oracle.
"""

from repro.net.clock import AsyncEngine, AsyncEventHandle
from repro.net.harness import (
    LiveClusterHarness,
    LiveRunResult,
    LiveSpec,
    LiveWorkload,
    build_workload,
    parity_report,
    run_live_experiment,
)
from repro.net.peer import (
    HandshakeInfo,
    PeerConfig,
    PeerManager,
    PeerState,
    reconnect_backoff,
)
from repro.net.router import SocketNetwork
from repro.net.wire import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)

__all__ = [
    "AsyncEngine",
    "AsyncEventHandle",
    "FRAME_HEADER_BYTES",
    "FrameDecoder",
    "HandshakeInfo",
    "LiveClusterHarness",
    "LiveRunResult",
    "LiveSpec",
    "LiveWorkload",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PeerConfig",
    "PeerManager",
    "PeerState",
    "SocketNetwork",
    "WireError",
    "build_workload",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "parity_report",
    "reconnect_backoff",
    "run_live_experiment",
]
