"""Framed wire protocol: length-prefixed, versioned JSON messages.

Every frame on a live socket is ``4-byte big-endian length ‖ UTF-8 JSON``.
The JSON object always carries the protocol version (``"v"``) and a
``"kind"`` discriminator; protocol messages additionally carry the sender,
the traffic category (so live byte accounting matches the simulator's
category breakdown), and a typed body built with the canonical encoders
from :mod:`repro.core.serialization` — a block decoded off a socket goes
through the same hash re-verification as one decoded from a snapshot.

Defences expected of a real listener:

* frames longer than :data:`MAX_FRAME_BYTES` are rejected *from the
  header alone*, before any payload is buffered;
* non-JSON payloads, non-object payloads, unknown versions, and unknown
  message kinds raise :class:`WireError` instead of crashing the reader;
* truncated frames simply stay buffered until more bytes arrive
  (:class:`FrameDecoder` is incremental).
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import messages as m
from repro.core.errors import ValidationError
from repro.core.serialization import (
    block_from_dict,
    block_to_dict,
    metadata_from_dict,
    metadata_to_dict,
)

#: Version tag carried by every frame; peers reject any mismatch at
#: handshake time, so it only changes on breaking format revisions.
PROTOCOL_VERSION = 1

#: Length-prefix size: one unsigned 32-bit big-endian integer.
FRAME_HEADER_BYTES = 4

#: Hard ceiling on a single frame's JSON payload.  A whole-chain
#: ``ChainResponse`` for a long run fits comfortably; anything larger is
#: hostile or corrupt.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ValidationError):
    """A frame or message failed to encode/decode."""


# -- frame codec ---------------------------------------------------------------


def encode_frame(payload: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one JSON-object frame to length-prefixed bytes."""
    try:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as error:
        raise WireError(f"frame payload is not JSON-serialisable: {error}") from error
    if len(body) > max_bytes:
        raise WireError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Decode exactly one complete frame (header + full payload)."""
    decoder = FrameDecoder(max_bytes=max_bytes)
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending_bytes:
        raise WireError(
            f"expected exactly one complete frame, got {len(frames)} "
            f"with {decoder.pending_bytes} byte(s) left over"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame parser for a TCP byte stream.

    ``feed(chunk)`` returns every frame completed by the chunk; partial
    frames stay buffered.  Oversized or malformed frames raise
    :class:`WireError` — after which the stream is unusable and the
    connection should be dropped (there is no resynchronisation point in
    a length-prefixed stream).
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = max_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(chunk)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < FRAME_HEADER_BYTES:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > self.max_bytes:
                raise WireError(
                    f"announced frame of {length} bytes exceeds the "
                    f"{self.max_bytes}-byte limit"
                )
            end = FRAME_HEADER_BYTES + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[FRAME_HEADER_BYTES:end])
            del self._buffer[:end]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise WireError(f"frame payload is not valid JSON: {error}") from error
            if not isinstance(payload, dict):
                raise WireError(
                    f"frame payload must be a JSON object, got {type(payload).__name__}"
                )
            frames.append(payload)


# -- message codec -------------------------------------------------------------
#
# Each protocol dataclass gets an (encode, decode) pair keyed on its class
# name.  Scalar-only messages go through dataclasses.asdict; anything
# carrying blocks or metadata reuses the canonical serialisers so hash
# verification happens on every decode.


def _plain_encode(message: Any) -> Dict[str, Any]:
    return dataclasses.asdict(message)


def _plain_decoder(cls: type) -> Callable[[Dict[str, Any]], Any]:
    def decode(body: Dict[str, Any]) -> Any:
        try:
            return cls(**body)
        except TypeError as error:
            raise WireError(f"malformed {cls.__name__} body: {error}") from error

    return decode


def _blocks_to_list(blocks: Iterable[Any]) -> List[Dict[str, Any]]:
    return [block_to_dict(block) for block in blocks]


def _blocks_from_list(entries: Any) -> Tuple[Any, ...]:
    if not isinstance(entries, list):
        raise WireError("block list must be a JSON array")
    return tuple(block_from_dict(entry) for entry in entries)


_ENCODERS: Dict[str, Callable[[Any], Dict[str, Any]]] = {}
_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {}


def _register(
    cls: type,
    encode: Callable[[Any], Dict[str, Any]],
    decode: Callable[[Dict[str, Any]], Any],
) -> None:
    _ENCODERS[cls.__name__] = encode
    _DECODERS[cls.__name__] = decode


_register(
    m.MetadataAnnounce,
    lambda msg: {"metadata": metadata_to_dict(msg.metadata)},
    lambda body: m.MetadataAnnounce(metadata=metadata_from_dict(body["metadata"])),
)
_register(
    m.BlockAnnounce,
    lambda msg: {"block": block_to_dict(msg.block)},
    lambda body: m.BlockAnnounce(block=block_from_dict(body["block"])),
)
_register(
    m.BlockRequest,
    lambda msg: {"indices": list(msg.indices), "origin": msg.origin, "ttl": msg.ttl},
    lambda body: m.BlockRequest(
        indices=tuple(int(i) for i in body["indices"]),
        origin=int(body["origin"]),
        ttl=int(body["ttl"]),
    ),
)
_register(
    m.BlockResponse,
    lambda msg: {"blocks": _blocks_to_list(msg.blocks)},
    lambda body: m.BlockResponse(blocks=_blocks_from_list(body["blocks"])),
)
_register(
    m.ChainResponse,
    lambda msg: {"blocks": _blocks_to_list(msg.blocks)},
    lambda body: m.ChainResponse(blocks=_blocks_from_list(body["blocks"])),
)
for _cls in (
    m.DataRequest,
    m.DataResponse,
    m.DataNack,
    m.DisseminationRequest,
    m.DisseminationResponse,
    m.InvalidStorageClaim,
    m.ChainRequest,
):
    _register(_cls, _plain_encode, _plain_decoder(_cls))


def encode_message(
    source: int,
    payload: Any,
    category: str,
    size_bytes: int = 0,
    sent_at: float = 0.0,
    max_bytes: int = MAX_FRAME_BYTES,
    trace_ctx: Optional[List[Any]] = None,
) -> bytes:
    """Encode one protocol message as a complete ``msg`` frame.

    ``size_bytes`` is the protocol-model message size and ``sent_at`` the
    sender's *logical* clock at dispatch — both ride in the envelope so
    the receiver can shape delivery onto its own logical clock with the
    shared deterministic channel model (see
    :meth:`repro.net.router.SocketNetwork.deliver_frame`).

    ``trace_ctx`` is the sender's wire-form observability trace context
    (:meth:`repro.obs.tracer.TraceContext.to_wire`); present only while
    tracing is enabled.  It rides as the optional ``"tc"`` envelope key —
    purely advisory, never part of protocol semantics: delivery timing is
    derived from ``t``/``size`` alone, so traced and untraced runs stay
    digest-identical.
    """
    encoder = _ENCODERS.get(type(payload).__name__)
    if encoder is None:
        raise WireError(f"no wire encoding for message type {type(payload).__name__}")
    frame = {
        "v": PROTOCOL_VERSION,
        "kind": "msg",
        "type": type(payload).__name__,
        "source": source,
        "category": category,
        "size": size_bytes,
        "t": sent_at,
        "body": encoder(payload),
    }
    if trace_ctx is not None:
        frame["tc"] = trace_ctx
    return encode_frame(frame, max_bytes=max_bytes)


def decode_message(frame: Dict[str, Any]) -> Tuple[int, Any, str, int, float]:
    """Decode a ``msg`` frame into ``(source, payload, category, size, sent_at)``.

    Raises :class:`WireError` on version/kind/type mismatches and
    propagates the canonical serialisers' :class:`ValidationError` for
    tampered blocks or metadata.
    """
    if frame.get("v") != PROTOCOL_VERSION:
        raise WireError(f"unsupported wire protocol version {frame.get('v')!r}")
    if frame.get("kind") != "msg":
        raise WireError(f"not a protocol message frame: kind={frame.get('kind')!r}")
    decoder = _DECODERS.get(frame.get("type"))
    if decoder is None:
        raise WireError(f"unknown message type {frame.get('type')!r}")
    body = frame.get("body")
    if not isinstance(body, dict):
        raise WireError("message body must be a JSON object")
    try:
        payload = decoder(body)
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed {frame.get('type')} body: {error}") from error
    try:
        source = int(frame["source"])
        category = str(frame["category"])
        size_bytes = int(frame.get("size", 0))
        sent_at = float(frame.get("t", 0.0))
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed message envelope: {error}") from error
    return source, payload, category, size_bytes, sent_at


# -- control frames ------------------------------------------------------------


def hello_frame(
    node_id: int, genesis_digest: str, listen_port: int, sent_at: float
) -> Dict[str, Any]:
    """The handshake frame each side sends first on a fresh connection."""
    return {
        "v": PROTOCOL_VERSION,
        "kind": "hello",
        "node": node_id,
        "genesis": genesis_digest,
        "port": listen_port,
        "t": sent_at,
    }


def ping_frame(sent_at: float) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "kind": "ping", "t": sent_at}


def pong_frame(echo: float) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "kind": "pong", "t": echo}
