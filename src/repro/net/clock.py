"""Asyncio-backed scheduler with a *logical* protocol clock.

:class:`AsyncEngine` is duck-type compatible with the slice of
:class:`~repro.simnet.engine.EventEngine` the protocol node uses —
``now``, ``schedule``, ``call_at``, ``np_rng``/``rng``/``seed``, and
cancellable handles — but timers fire on a real asyncio event loop.

The load-bearing design choice is the clock.  Logical (protocol) seconds
map onto wall time through ``time_scale`` (wall seconds per logical
second), and when a timer fires, ``now`` is set to the timer's **exact
scheduled logical time**, not to the wall clock.  Event-loop jitter
therefore never leaks into protocol state: a mining event scheduled for
logical ``t=120.0`` observes ``now == 120.0`` even if the loop ran it a
few milliseconds late.  That is what makes a live run's chain
bit-identical to the simulator's for the same seeded workload (the
parity oracle of :mod:`repro.net.harness`) — block timestamps, metadata
creation times, and every other ``engine.now`` read that ends up hashed
into the chain take the same values in both runtimes.

Between timers, ``now`` holds the last fired timer's logical time, which
mirrors how the simulator's clock only advances on event execution.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Optional

import numpy as np

from repro.obs import runtime as _obs


class AsyncEventHandle:
    """Cancellable handle, mirroring :class:`~repro.simnet.engine.EventHandle`."""

    def __init__(self, when: float):
        self._when = when
        self._timer: Optional[asyncio.TimerHandle] = None
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time(self) -> float:
        return self._when


class AsyncEngine:
    """Scaled-real-time scheduler exposing the simulator engine's surface.

    Parameters
    ----------
    seed:
        Seeds the owned ``random``/``numpy`` generators (protocol code
        expects them on its engine).
    time_scale:
        Wall seconds per logical second.  ``0.02`` runs a 60 s block
        interval in 1.2 s of real time.
    start_logical:
        Logical time at which this engine begins — a restarted node
        resumes the cluster's current logical clock instead of t=0.
    """

    def __init__(
        self,
        seed: int = 0,
        time_scale: float = 0.02,
        start_logical: float = 0.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ):
        if time_scale <= 0:
            raise ValueError("time scale must be positive")
        self.seed = seed
        self.time_scale = time_scale
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed)
        self.events_processed = 0
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = asyncio.new_event_loop()
                asyncio.set_event_loop(loop)
        self._loop = loop
        self._now = start_logical
        # Wall instant corresponding to logical ``start_logical``.
        self._wall_origin = self._loop.time() - start_logical * time_scale
        self._pending = 0
        self._stopped = False

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Logical time of the most recently fired timer."""
        return self._now

    def wall_elapsed_logical(self) -> float:
        """The wall clock mapped into logical seconds (monitoring only)."""
        return (self._loop.time() - self._wall_origin) / self.time_scale

    def rebase(self, start_logical: Optional[float] = None, wall_at: Optional[float] = None) -> None:
        """Re-anchor the logical↔wall mapping.

        Called once per node right before the protocol starts so logical
        ``t=0`` means "after the mesh came up", not "at object creation"
        — and, in multi-process clusters, so every node anchors to the
        same shared wall instant (``wall_at``, epoch seconds of the
        loop's clock domain is not portable across processes, so the
        harness passes a ``time.time()`` instant and we convert).
        """
        logical = self._now if start_logical is None else start_logical
        self._now = logical
        if wall_at is None:
            self._wall_origin = self._loop.time() - logical * self.time_scale
        else:
            import time as _time

            # Convert an epoch instant into this loop's clock domain.
            offset = wall_at - _time.time()
            self._wall_origin = (
                self._loop.time() + offset - logical * self.time_scale
            )

    def clock_reader(self) -> Callable[[], float]:
        return lambda: self._now

    @property
    def queue_depth(self) -> int:
        """Timers scheduled but not yet fired."""
        return self._pending

    # -- scheduling ----------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> AsyncEventHandle:
        """Run ``callback(*args)`` after ``delay`` *logical* seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> AsyncEventHandle:
        """Run ``callback(*args)`` at absolute logical time ``when``.

        Unlike the simulator there is no "past" to reject deterministically
        — a message may arrive while our last-fired-timer clock lags the
        wall — so a ``when`` already behind the wall clock simply fires as
        soon as the loop is free, observing its scheduled logical time.
        """
        handle = AsyncEventHandle(when)
        wall_at = self._wall_origin + when * self.time_scale
        self._pending += 1
        handle._timer = self._loop.call_at(wall_at, self._fire, handle, callback, args)
        return handle

    def _fire(
        self, handle: AsyncEventHandle, callback: Callable[..., None], args: tuple
    ) -> None:
        self._pending -= 1
        if handle.cancelled or self._stopped:
            return
        # Exact-time semantics: the callback observes its scheduled logical
        # instant.  Out-of-order wall delivery of nearly-simultaneous timers
        # may briefly step the clock backwards; protocol determinism only
        # needs each *timer-driven* read to be exact.
        self._now = handle.time
        self.events_processed += 1
        if _obs.is_enabled():
            with _obs.span(
                "net.timer", "net", callback=getattr(callback, "__qualname__", "?")
            ):
                callback(*args)
            _obs.add("net.timers_fired")
            _obs.timeline_tick(self._now)
        else:
            callback(*args)

    def stop(self) -> None:
        """Suppress all not-yet-fired timers (node shutdown)."""
        self._stopped = True
