"""Live cluster harness: N real nodes on localhost, one seeded workload.

Runs the **unmodified** :class:`~repro.core.node.EdgeNode` protocol over
real TCP sockets — each node gets its own :class:`~repro.net.clock.
AsyncEngine`, :class:`~repro.net.peer.PeerManager`, and
:class:`~repro.net.router.SocketNetwork` — while driving the exact same
seeded workload as the simulator.

The parity oracle
-----------------

For a seeded, churn-free, mobility-free PoS run, a live cluster and the
simulator must converge to the **identical** ``chain_digest``.  Three
properties make that hold:

1. :func:`build_workload` consumes the seed's RNG stream in precisely
   the order ``repro.sim.cluster.build_cluster`` + ``repro.sim.runner.
   build_runtime`` do — positions, mobility ranges, production schedule,
   then one request plan per production event in time order — so every
   derived value (topology, accounts, data ids, request times) matches.
2. The :class:`AsyncEngine` logical clock: timers observe their exact
   scheduled logical time, so block timestamps and metadata creation
   times are bit-identical to the simulator's.
3. With PoS consensus and the greedy solver, no protocol code draws
   randomness at run time — mining delays are deterministic functions of
   chain state, so both runtimes elect the same miner for every height.

Socket latency only shifts *wall* delivery order; as long as it stays
far below the scaled block interval (the default ``time_scale`` keeps a
60 s interval at 1.2 s wall against sub-millisecond loopback RTTs), the
causal order of chain events matches the simulator's and the digests
agree.  :func:`parity_report` runs both sides and diffs them.

Fault injection
---------------

:class:`LiveSpec.kill` schedules a mid-run kill + restart of one node:
its engine stops, its sockets close, and after the downtime a **fresh**
process-restart-equivalent node (empty chain, same identity and port)
rejoins, reconnects via the peers' dial loops, and resyncs the chain
through the normal gap-recovery path.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.account import Account
from repro.core.allocation import AllocationEngine
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.messages import CATEGORY_CHAIN_SYNC, ChainRequest
from repro.core.metadata import data_id_for
from repro.core.node import EdgeNode
from repro.metrics.collector import RunMetrics, collect_run_metrics
from repro.net.clock import AsyncEngine
from repro.net.peer import PeerConfig, PeerManager
from repro.net.router import SocketNetwork
from repro.obs import runtime as _obs
from repro.simnet.channel import ChannelModel
from repro.simnet.mobility import RangeBoundedMobility
from repro.simnet.topology import Topology, connected_random_positions
from repro.simnet.trace import TransmissionTrace
from repro.workloads.generator import ProductionEvent, generate_production_schedule
from repro.workloads.requests import RequestPlan, plan_requests

#: Mirror of the simulator runner's request-retry policy.
_REQUEST_RETRY_SECONDS = 60.0
_REQUEST_MAX_RETRIES = 5

#: Wall seconds granted after the logical run ends for in-flight frames
#: to drain before metrics are collected.
_DRAIN_SECONDS = 0.25


@dataclass(frozen=True)
class KillSpec:
    """Kill one node mid-run and bring a fresh instance back later."""

    node_id: int
    at_minutes: float
    down_minutes: float

    def __post_init__(self) -> None:
        if self.at_minutes <= 0 or self.down_minutes <= 0:
            raise ValueError("kill/restart times must be positive")


@dataclass(frozen=True)
class LiveSpec:
    """Everything that defines one live run (cf. ``ExperimentSpec``)."""

    node_count: int
    config: SystemConfig
    seed: int = 0
    duration_minutes: float = 10.0
    #: Wall seconds per logical second: 0.02 runs a 60 s block interval
    #: in 1.2 s of wall time while keeping loopback RTTs negligible.
    time_scale: float = 0.02
    host: str = "127.0.0.1"
    #: 0 → ephemeral ports (in-process clusters); a fixed base is needed
    #: for multi-process clusters and for restarting a killed node on
    #: its old address.
    base_port: int = 0
    kill: Optional[KillSpec] = None
    peer_config: Optional[PeerConfig] = None
    #: Per-node EdgeNode subclass overrides (adversaries, instrumented
    #: nodes) — the live mirror of ``ExperimentSpec.node_classes``.
    node_classes: Optional[Dict[int, type]] = None

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError("a blockchain network needs at least 2 nodes")
        if self.duration_minutes <= 0:
            raise ValueError("duration must be positive")
        if self.time_scale <= 0:
            raise ValueError("time scale must be positive")
        if self.kill is not None and not (
            0 <= self.kill.node_id < self.node_count
        ):
            raise ValueError("kill target out of range")
        for node_id in self.node_classes or {}:
            if not 0 <= node_id < self.node_count:
                raise ValueError(f"node class override for unknown node {node_id}")

    @property
    def duration_seconds(self) -> float:
        return self.duration_minutes * 60.0


@dataclass
class LiveWorkload:
    """The deterministic world + workload shared by every live node.

    Derived purely from ``(node_count, config, seed, duration)``, so any
    process can rebuild it independently — which is what lets
    multi-process clusters agree on identities, topology, and schedule
    without any coordination traffic.
    """

    topology: Topology
    mobility_ranges: List[float]
    accounts: Dict[int, Account]
    address_of: Dict[int, str]
    genesis_digest: str
    events: List[ProductionEvent]
    plans: List[RequestPlan]


def build_workload(spec: LiveSpec) -> LiveWorkload:
    """Precompute the seeded world and workload for a live run.

    Consumes the RNG stream in exactly the simulator's order (positions →
    mobility ranges → production schedule → request plans per event) so a
    parity run sees identical draws.  Request plans can be precomputed
    because nothing else draws from the stream between production events
    in a parity-eligible run (PoS + greedy placement + zero loss).
    """
    config = spec.config
    rng = np.random.default_rng(spec.seed)
    positions = connected_random_positions(
        spec.node_count,
        rng,
        field_size=config.field_size,
        comm_range=config.comm_range,
    )
    topology = Topology(positions, comm_range=config.comm_range)
    mobility = RangeBoundedMobility.uniform(
        positions,
        rng,
        wander_range=config.mobility_range,
        field_size=config.field_size,
    )
    accounts = {
        node_id: Account.for_node(spec.seed, node_id)
        for node_id in range(spec.node_count)
    }
    address_of = {node_id: account.address for node_id, account in accounts.items()}
    genesis_digest = (
        Blockchain(list(range(spec.node_count)), config, address_of)
        .block_at(0)
        .current_hash
    )
    events = generate_production_schedule(
        node_count=spec.node_count,
        items_per_minute=config.data_items_per_minute,
        duration_seconds=spec.duration_seconds,
        rng=rng,
    )
    plans = [
        plan_requests(
            node_count=spec.node_count,
            producer=event.producer,
            production_time=event.time,
            requester_fraction=config.requester_fraction,
            rng=rng,
        )
        for event in events
    ]
    return LiveWorkload(
        topology=topology,
        mobility_ranges=[
            mobility.wander_range(node_id) for node_id in range(spec.node_count)
        ],
        accounts=accounts,
        address_of=address_of,
        genesis_digest=genesis_digest,
        events=events,
        plans=plans,
    )


class LiveNode:
    """One live protocol node: engine + peers + router + EdgeNode."""

    def __init__(
        self,
        spec: LiveSpec,
        workload: LiveWorkload,
        node_id: int,
        port: int = 0,
        start_logical: float = 0.0,
        trace: Optional[TransmissionTrace] = None,
    ):
        self.spec = spec
        self.workload = workload
        self.node_id = node_id
        self.engine = AsyncEngine(
            seed=spec.seed * 100003 + node_id,
            time_scale=spec.time_scale,
            start_logical=start_logical,
        )
        self.peers = PeerManager(
            node_id=node_id,
            genesis_digest=workload.genesis_digest,
            on_message=self._on_frame,
            config=spec.peer_config,
            host=spec.host,
            port=port,
            rng=self.engine.rng,
        )
        self.network = SocketNetwork(
            node_id,
            spec.node_count,
            self.peers,
            engine=self.engine,
            topology=workload.topology,
            channel=ChannelModel(
                hop_delay=spec.config.hop_delay, bandwidth=spec.config.bandwidth
            ),
            trace=trace,
        )
        allocator = AllocationEngine(spec.config, rng=self.engine.np_rng)
        node_cls = (spec.node_classes or {}).get(node_id, EdgeNode)
        self.node = node_cls(
            node_id=node_id,
            account=workload.accounts[node_id],
            config=spec.config,
            network=self.network,
            engine=self.engine,
            topology=workload.topology,
            allocator=allocator,
            address_of=workload.address_of,
            mobility_ranges=workload.mobility_ranges,
        )
        #: Productions whose data id diverged from the precomputed one —
        #: always zero unless determinism broke.
        self.workload_mismatches = 0

    def _on_frame(self, peer_id: int, frame: Dict[str, object]) -> None:
        self.network.deliver_frame(peer_id, frame)

    # -- workload -------------------------------------------------------------------

    def arm(self, duration: float, after: float = 0.0) -> None:
        """Start mining and schedule this node's share of the workload.

        ``after`` skips already-elapsed events when a restarted node
        rejoins mid-run; the halt timer mirrors the simulator's
        ``run_until(duration)`` so no block is mined past the window.
        """
        self.node.start()
        for event, plan in zip(self.workload.events, self.workload.plans):
            if event.producer == self.node_id and event.time >= after:
                self.engine.call_at(event.time, self._produce, event)
            for requester, when in zip(plan.requesters, plan.times):
                if requester == self.node_id and when >= after:
                    data_id = _planned_data_id(self.workload, event)
                    self.engine.call_at(when, self._request, data_id, 0)
        self.engine.call_at(duration, self.engine.stop)

    def _produce(self, event: ProductionEvent) -> None:
        metadata = self.node.produce_data(
            data_type=event.data_type,
            location=event.location,
            properties=event.properties,
        )
        if metadata.data_id != _planned_data_id(self.workload, event):
            self.workload_mismatches += 1

    def _request(self, data_id: str, attempt: int) -> None:
        # Mirror of repro.sim.runner._RequestDriver._fire.
        if self.node.chain.metadata_of(data_id) is None:
            if attempt < _REQUEST_MAX_RETRIES:
                self.engine.schedule(
                    _REQUEST_RETRY_SECONDS, self._request, data_id, attempt + 1
                )
            else:
                self.node.counters.data_requests_failed += 1
            return
        self.node.request_data(data_id)

    # -- lifecycle ------------------------------------------------------------------

    async def start_listening(self) -> int:
        return await self.peers.start()

    async def stop(self) -> None:
        self.engine.stop()
        await self.peers.close()


def _planned_data_id(workload: LiveWorkload, event: ProductionEvent) -> str:
    """The data id ``event`` will produce, computed without running it.

    ``data_id = H("data", address, sequence)`` — independent of the
    production timestamp — so it follows from the producer's account and
    how many earlier events the schedule assigns to the same producer.
    """
    cache = getattr(workload, "_data_id_cache", None)
    if cache is None:
        cache = {}
        sequences: Dict[int, int] = {}
        for item in workload.events:
            sequence = sequences.get(item.producer, 0)
            sequences[item.producer] = sequence + 1
            cache[id(item)] = data_id_for(
                workload.accounts[item.producer], sequence
            )
        object.__setattr__(workload, "_data_id_cache", cache)
    return cache[id(event)]


def _metric_block_timestamps(chain) -> List[float]:
    """Retained-suffix timestamps above the *policy* retention horizon.

    The policy horizon is a pure function of config and height, so every
    run mode of the same seed reports identical interval metrics even
    when a durability layer held the actual prune floor back.
    """
    from repro.lifecycle.spec import retention_horizon

    metric_floor = retention_horizon(chain.config, chain.height)
    return [b.timestamp for b in chain.blocks if b.index >= metric_floor]


@dataclass
class LiveRunResult:
    """What a finished live run established."""

    spec: LiveSpec
    chain_digest: str
    chain_height: int
    digests: Dict[int, str]
    heights: Dict[int, int]
    metrics: RunMetrics
    net: Dict[str, object]
    reconnects: int
    workload_mismatches: int
    #: Nodes that were killed and restarted during the run.
    restarted: Tuple[int, ...] = ()
    #: Set when a kill was injected: did the restarted node catch back up
    #: to within one block of the reference chain?
    resynced: Optional[bool] = None

    #: Every node's chain is a prefix of the reference chain (no forks
    #: survived the run; nodes may trail by in-flight tail blocks).
    prefix_consistent: bool = True
    #: Largest number of blocks any node trails the reference chain by.
    max_lag: int = 0

    @property
    def digests_agree(self) -> bool:
        """Every node ended on the identical chain."""
        return len(set(self.digests.values())) == 1

    @property
    def healthy(self) -> bool:
        """The run's pass criterion.

        Strict digest equality is the wrong bar at the end of a run
        window: a block mined just before the cutoff legally reaches
        only part of the network (the simulator's ``run_until`` drops
        those deliveries too).  What must hold is *agreement*: every
        chain is a prefix of the reference, nobody trails by more than
        one block, and the deterministic workload never diverged.
        """
        if not self.prefix_consistent or self.workload_mismatches:
            return False
        if self.max_lag > 1:
            return False
        return self.resynced is None or self.resynced

    def summary(self) -> Dict[str, object]:
        return {
            "nodes": self.spec.node_count,
            "seed": self.spec.seed,
            "duration_minutes": self.spec.duration_minutes,
            "chain_height": self.chain_height,
            "chain_digest": self.chain_digest,
            "digests_agree": self.digests_agree,
            "prefix_consistent": self.prefix_consistent,
            "max_lag": self.max_lag,
            "healthy": self.healthy,
            "reconnects": self.reconnects,
            "workload_mismatches": self.workload_mismatches,
            "restarted": list(self.restarted),
            "resynced": self.resynced,
            "net": self.net,
        }


class LiveClusterHarness:
    """Hosts every node of a live cluster as tasks on one event loop."""

    def __init__(self, spec: LiveSpec):
        self.spec = spec
        self.workload = build_workload(spec)
        self.trace = TransmissionTrace()
        self.nodes: Dict[int, LiveNode] = {}
        self._ports: Dict[int, int] = {}
        self._restarted: List[int] = []

    # -- obs facade (duck-typed like EdgeCluster for the timeline probe) -----------

    @property
    def config(self) -> SystemConfig:
        return self.spec.config

    def longest_chain_node(self) -> EdgeNode:
        return max(
            (live.node for live in self.nodes.values()),
            key=lambda n: n.chain.height,
        )

    @property
    def engine(self) -> "_EngineView":
        return _EngineView(self)

    def logical_now(self) -> float:
        return max(
            (live.engine.wall_elapsed_logical() for live in self.nodes.values()),
            default=0.0,
        )

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind all listeners, build the mesh, then release the workload."""
        spec = self.spec
        for node_id in range(spec.node_count):
            port = spec.base_port + node_id if spec.base_port else 0
            self.nodes[node_id] = LiveNode(
                spec, self.workload, node_id, port=port, trace=self.trace
            )
        for node_id, live in self.nodes.items():
            self._ports[node_id] = await live.start_listening()
        # Deterministic mesh: the lower node id dials the higher.
        for low in range(spec.node_count):
            for high in range(low + 1, spec.node_count):
                self.nodes[low].peers.dial(high, spec.host, self._ports[high])
        await asyncio.gather(
            *(
                live.peers.wait_connected(
                    [p for p in range(spec.node_count) if p != node_id]
                )
                for node_id, live in self.nodes.items()
            )
        )
        if _obs.is_enabled():
            _obs.set_sim_clock(self.logical_now)
            _obs.attach_runtime(self)
        # Logical t=0 is "mesh up": rebase every clock at (as close as the
        # loop allows to) the same instant, then arm mining + workload.
        for live in self.nodes.values():
            live.engine.rebase(0.0)
        for live in self.nodes.values():
            live.arm(spec.duration_seconds)

    async def shutdown(self) -> None:
        for live in self.nodes.values():
            await live.stop()

    # -- fault injection ------------------------------------------------------------

    async def kill(self, node_id: int) -> None:
        """Hard-stop one node: engine dead, sockets closed, port kept."""
        await self.nodes[node_id].stop()

    async def restart(self, node_id: int) -> LiveNode:
        """Bring a *fresh* node (empty chain, same identity/port) back.

        Equivalent to a process restart: the replacement re-derives the
        deterministic world, rebinds the old port, re-dials its higher
        peers (lower peers' dial loops are already retrying), and syncs
        the missed chain through gap recovery.
        """
        spec = self.spec
        replacement = LiveNode(
            spec,
            self.workload,
            node_id,
            port=self._ports[node_id],
            start_logical=self.logical_now(),
            trace=self.trace,
        )
        self.nodes[node_id] = replacement
        self._restarted.append(node_id)
        await replacement.start_listening()
        for high in range(node_id + 1, spec.node_count):
            replacement.peers.dial(high, spec.host, self._ports[high])
        peers = [p for p in range(spec.node_count) if p != node_id]
        await replacement.peers.wait_connected(peers, timeout=30.0)
        replacement.engine.rebase()
        # Future workload only; the chain itself arrives via sync.
        replacement.arm(spec.duration_seconds, after=replacement.engine.now)
        # Kick-start resync: ask every peer for its chain instead of
        # waiting to notice a gap from the next block announcement.
        request = ChainRequest(origin=node_id)
        replacement.network.broadcast(
            node_id, request, request.wire_size(), CATEGORY_CHAIN_SYNC
        )
        return replacement

    # -- run ------------------------------------------------------------------------

    async def run(self) -> LiveRunResult:
        """Start, drive the full workload (and any kill), collect, stop."""
        spec = self.spec
        await self.start()
        fault: Optional[asyncio.Task] = None
        if spec.kill is not None:
            fault = asyncio.ensure_future(self._inject_kill(spec.kill))
        try:
            wall_budget = spec.duration_seconds * spec.time_scale
            deadline = asyncio.get_running_loop().time() + wall_budget
            while self.logical_now() < spec.duration_seconds:
                remaining = deadline - asyncio.get_running_loop().time()
                await asyncio.sleep(max(0.01, min(0.1, remaining)))
            if fault is not None:
                await fault
                fault = None
            await asyncio.sleep(_DRAIN_SECONDS)
            return self.collect()
        finally:
            if fault is not None:
                fault.cancel()
            await self.shutdown()

    async def _inject_kill(self, kill: KillSpec) -> None:
        scale = self.spec.time_scale
        await asyncio.sleep(kill.at_minutes * 60.0 * scale)
        await self.kill(kill.node_id)
        await asyncio.sleep(kill.down_minutes * 60.0 * scale)
        await self.restart(kill.node_id)

    # -- collection -----------------------------------------------------------------

    def collect(self) -> LiveRunResult:
        """Figure-level metrics from the cluster, mirroring the sim path."""
        reference = self.longest_chain_node()
        delivery_times: List[float] = []
        recovery_durations: List[float] = []
        blocks_mined: Dict[int, int] = {}
        failed = produced = reconnects = mismatches = 0
        storage_used = []
        digests: Dict[int, str] = {}
        heights: Dict[int, int] = {}
        for node_id in sorted(self.nodes):
            live = self.nodes[node_id]
            node = live.node
            delivery_times.extend(node.delivery_times)
            recovery_durations.extend(node.sync.completed_durations)
            blocks_mined[node_id] = node.counters.blocks_mined
            failed += node.counters.data_requests_failed
            produced += node.counters.data_produced
            storage_used.append(node.storage.used_slots())
            reconnects += live.peers.reconnects
            mismatches += live.workload_mismatches
            digests[node_id] = node.chain.chain_digest()
            heights[node_id] = node.chain.height
        prefix_consistent = all(
            live.node.chain.tip.current_hash
            == reference.chain.block_at(live.node.chain.height).current_hash
            for live in self.nodes.values()
        )
        max_lag = reference.chain.height - min(heights.values())
        metrics = collect_run_metrics(
            node_count=self.spec.node_count,
            duration_seconds=self.spec.duration_seconds,
            trace=self.trace,
            storage_used=storage_used,
            delivery_times=delivery_times,
            failed_requests=failed,
            block_timestamps=_metric_block_timestamps(reference.chain),
            blocks_mined=blocks_mined,
            recovery_durations=recovery_durations,
            data_items_produced=produced,
            tip_height=reference.chain.height,
        )
        messages_sent = sum(
            live.network.messages_sent for live in self.nodes.values()
        )
        messages_dropped = sum(
            live.network.messages_dropped for live in self.nodes.values()
        )
        resynced: Optional[bool] = None
        if self._restarted:
            resynced = all(
                self.nodes[node_id].node.chain.height
                >= reference.chain.height - 1
                for node_id in self._restarted
            )
        return LiveRunResult(
            spec=self.spec,
            chain_digest=reference.chain.chain_digest(),
            chain_height=reference.chain.height,
            digests=digests,
            heights=heights,
            metrics=metrics,
            net={
                **self.trace.snapshot(),
                "messages_sent": messages_sent,
                "messages_dropped": messages_dropped,
            },
            reconnects=reconnects,
            workload_mismatches=mismatches,
            restarted=tuple(self._restarted),
            resynced=resynced,
            prefix_consistent=prefix_consistent,
            max_lag=max_lag,
        )


class _EngineView:
    """Engine facade for the timeline probe (aggregate queue depth)."""

    def __init__(self, harness: LiveClusterHarness):
        self._harness = harness

    @property
    def queue_depth(self) -> int:
        return sum(
            live.engine.queue_depth for live in self._harness.nodes.values()
        )

    @property
    def now(self) -> float:
        return self._harness.logical_now()


class SingleNodeView:
    """Obs facade over one hosted node (multi-process mode).

    Duck-types the cluster surface the timeline probe reads —
    ``config`` / ``longest_chain_node()`` / ``engine`` / ``nodes`` — so a
    child process in a ``--procs`` cluster can run the same timeline
    sampler and monitors as the in-process harness, scoped to its own
    node (its local chain view *is* its best chain knowledge).
    """

    def __init__(self, live: "LiveNode"):
        self._live = live
        self.nodes = {live.node_id: live}

    @property
    def config(self) -> SystemConfig:
        return self._live.spec.config

    def longest_chain_node(self) -> EdgeNode:
        return self._live.node

    @property
    def engine(self) -> Any:
        return self._live.engine


def run_live_experiment(spec: LiveSpec) -> LiveRunResult:
    """Synchronous front door: host the whole cluster and run it."""
    harness = LiveClusterHarness(spec)

    async def _main() -> LiveRunResult:
        with _obs.span(
            "live.run", "net", nodes=spec.node_count, seed=spec.seed
        ):
            return await harness.run()

    return asyncio.run(_main())


def parity_report(spec: LiveSpec) -> Dict[str, object]:
    """Run the same seeded workload on simnet and live; diff the chains.

    Parity preconditions (enforced here): PoS consensus, no mobility
    epochs, no churn, zero channel loss — under which neither runtime
    draws run-time randomness and both clocks observe identical logical
    event times.
    """
    from repro.sim.runner import ExperimentSpec, run_experiment

    if spec.kill is not None:
        raise ValueError("parity runs cannot inject faults")
    config = replace(spec.config, consensus="pos")
    sim_spec = ExperimentSpec(
        node_count=spec.node_count,
        config=config,
        seed=spec.seed,
        duration_minutes=spec.duration_minutes,
        mobility_epoch_minutes=0.0,
    )
    sim = run_experiment(sim_spec)
    sim_chain = sim.cluster.longest_chain_node().chain
    live = run_live_experiment(replace(spec, config=config))
    return {
        "seed": spec.seed,
        "nodes": spec.node_count,
        "duration_minutes": spec.duration_minutes,
        "sim_digest": sim_chain.chain_digest(),
        "live_digest": live.chain_digest,
        "sim_height": sim_chain.height,
        "live_height": live.chain_height,
        "match": sim_chain.chain_digest() == live.chain_digest
        and sim_chain.height == live.chain_height,
        "live_digests_agree": len(set(live.digests.values())) == 1,
        "workload_mismatches": live.workload_mismatches,
    }


# -- multi-process mode ---------------------------------------------------------


async def host_single_node(
    spec: LiveSpec, node_id: int, start_at: float
) -> Dict[str, object]:
    """Child-process entry: host exactly one node of a fixed-port cluster.

    Every process independently rebuilds the deterministic workload from
    the spec, binds ``base_port + node_id``, dials its higher peers, and
    anchors logical t=0 to the shared ``start_at`` epoch instant so the
    cluster's clocks agree across process boundaries.
    """
    if not spec.base_port:
        raise ValueError("multi-process clusters need a fixed --base-port")
    workload = build_workload(spec)
    live = LiveNode(spec, workload, node_id, port=spec.base_port + node_id)
    await live.start_listening()
    for high in range(node_id + 1, spec.node_count):
        live.peers.dial(high, spec.host, spec.base_port + high)
    await live.peers.wait_connected(
        [p for p in range(spec.node_count) if p != node_id], timeout=30.0
    )
    if _obs.is_enabled():
        _obs.set_sim_clock(live.engine.wall_elapsed_logical)
        _obs.attach_runtime(SingleNodeView(live))
    if time.time() > start_at:
        # Rebasing to a past instant would replay the whole schedule
        # instantly — refuse instead of producing a garbage run.
        raise SystemExit(
            f"node {node_id} became ready {time.time() - start_at:.1f}s after "
            "the start barrier; increase the start lead"
        )
    live.engine.rebase(0.0, wall_at=start_at)
    live.arm(spec.duration_seconds)
    wall_end = start_at + spec.duration_seconds * spec.time_scale
    while time.time() < wall_end:
        await asyncio.sleep(0.05)
    await asyncio.sleep(_DRAIN_SECONDS)
    node = live.node
    result = {
        "node": node_id,
        "chain_digest": node.chain.chain_digest(),
        "chain_height": node.chain.height,
        "blocks_mined": node.counters.blocks_mined,
        "data_produced": node.counters.data_produced,
        "requests_failed": node.counters.data_requests_failed,
        "reconnects": live.peers.reconnects,
        "frames_sent": live.peers.frames_sent,
        "frames_received": live.peers.frames_received,
        "workload_mismatches": live.workload_mismatches,
    }
    await live.stop()
    return result
