"""Seeded adversarial chaos suite: Byzantine fault injection + verdicts.

The paper's fault model is crash/churn (Section IV-C/D); this package
injects the *Byzantine* faults an open edge deployment must also survive
— equivocating miners, forged blocks, poisoned sync responses, tampered
metadata, request floods — and checks that the admission-hardened
protocol (see :mod:`repro.core.admission` and DESIGN.md §11) holds its
safety and liveness invariants under them.

* :mod:`repro.chaos.adversaries` — EdgeNode subclasses implementing each
  misbehavior, active inside a configured time window, runnable on both
  fabrics (simnet and live sockets);
* :mod:`repro.chaos.scenario` — the seeded :class:`ChaosSpec` describing
  one scenario (adversary mix, window, optional churn/partition overlay);
* :mod:`repro.chaos.runner` — drives a scenario through the simulator or
  the live harness;
* :mod:`repro.chaos.verdict` — the end-of-run safety/liveness verdict.
"""

from repro.chaos.adversaries import (
    ADVERSARY_TYPES,
    EquivocatorNode,
    FlooderNode,
    InvalidBlockSpammerNode,
    MetadataTampererNode,
    SyncPoisonerNode,
)
from repro.chaos.runner import ChaosRunResult, run_chaos
from repro.chaos.scenario import ChaosSpec, PartitionSpec, node_classes_for
from repro.chaos.verdict import CHAOS_VERDICT_SCHEMA, compute_verdict

__all__ = [
    "ADVERSARY_TYPES",
    "CHAOS_VERDICT_SCHEMA",
    "ChaosRunResult",
    "ChaosSpec",
    "EquivocatorNode",
    "FlooderNode",
    "InvalidBlockSpammerNode",
    "MetadataTampererNode",
    "PartitionSpec",
    "SyncPoisonerNode",
    "compute_verdict",
    "node_classes_for",
    "run_chaos",
]
