"""Chaos scenario runner: drive a ChaosSpec through either fabric.

The sim path composes the scenario's adversary mix with the existing
experiment runner (``node_classes`` plants the adversaries, ``churn``
reuses the churn injector, and a partition overlay is scheduled through
:meth:`~repro.simnet.faults.PartitionInjector.schedule`).  The live path
runs the same adversary classes over real sockets via the live cluster
harness, optionally with a kill/restart fault.

Either way the result carries the standard figure-level metrics plus the
chaos verdict (:mod:`repro.chaos.verdict`), and keeps the node map
around so tests can inspect admission state directly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.chaos.scenario import ChaosSpec, node_classes_for
from repro.chaos.verdict import compute_verdict
from repro.metrics.collector import RunMetrics
from repro.obs import runtime as _obs

PathLike = Union[str, Path]

CHAOS_VERDICT_NAME = "chaos_verdict.json"


@dataclass
class ChaosRunResult:
    """A finished chaos run: verdict + metrics + inspectable nodes."""

    spec: ChaosSpec
    verdict: Dict[str, Any]
    metrics: RunMetrics
    nodes: Dict[int, Any]

    @property
    def status(self) -> str:
        return self.verdict["status"]

    @property
    def honest_digest(self) -> str:
        return self.verdict["honest_digest"]

    def write_verdict(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(self.verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def run_chaos_sim(spec: ChaosSpec) -> ChaosRunResult:
    """Run a chaos scenario on the simulator fabric."""
    from repro.sim.runner import (
        ExperimentSpec,
        build_runtime,
        collect_metrics,
    )
    from repro.simnet.faults import PartitionInjector

    experiment = ExperimentSpec(
        node_count=spec.node_count,
        config=spec.config,
        seed=spec.seed,
        duration_minutes=spec.duration_minutes,
        churn=spec.churn,
        node_classes=node_classes_for(spec),
    )
    runtime = build_runtime(experiment)
    if spec.partition is not None:
        group_a, group_b = spec.partition.groups(spec.node_count)
        injector = PartitionInjector(runtime.cluster.network, runtime.engine)
        injector.schedule(
            list(group_a),
            list(group_b),
            at=spec.partition.at_minutes * 60.0,
            heal_at=spec.partition.heal_minutes * 60.0,
        )
    with _obs.span(
        "chaos.simulate", "chaos", seed=spec.seed, nodes=spec.node_count
    ):
        runtime.engine.run_until(spec.duration_seconds)
    metrics = collect_metrics(runtime)
    nodes = dict(runtime.cluster.nodes)
    verdict = compute_verdict(spec, nodes)
    return ChaosRunResult(spec=spec, verdict=verdict, metrics=metrics, nodes=nodes)


def run_chaos_live(spec: ChaosSpec) -> ChaosRunResult:
    """Run a chaos scenario over real sockets (live fabric)."""
    from repro.net.harness import KillSpec, LiveClusterHarness, LiveSpec

    kill: Optional[KillSpec] = None
    if spec.kill is not None:
        kill = KillSpec(
            node_id=spec.kill.node_id,
            at_minutes=spec.kill.at_minutes,
            down_minutes=spec.kill.down_minutes,
        )
    live_spec = LiveSpec(
        node_count=spec.node_count,
        config=spec.config,
        seed=spec.seed,
        duration_minutes=spec.duration_minutes,
        time_scale=spec.time_scale,
        kill=kill,
        node_classes=node_classes_for(spec),
    )
    harness = LiveClusterHarness(live_spec)

    async def _main():
        with _obs.span(
            "chaos.live", "chaos", seed=spec.seed, nodes=spec.node_count
        ):
            return await harness.run()

    live_result = asyncio.run(_main())
    nodes = {node_id: live.node for node_id, live in harness.nodes.items()}
    verdict = compute_verdict(spec, nodes)
    verdict["live"] = {
        "healthy": live_result.healthy,
        "restarted": list(live_result.restarted),
        "resynced": live_result.resynced,
        "reconnects": live_result.reconnects,
    }
    return ChaosRunResult(
        spec=spec, verdict=verdict, metrics=live_result.metrics, nodes=nodes
    )


def run_chaos(spec: ChaosSpec) -> ChaosRunResult:
    """Fabric-dispatching front door."""
    if spec.fabric == "live":
        return run_chaos_live(spec)
    return run_chaos_sim(spec)
