"""End-of-run chaos verdict: did safety and liveness hold under attack?

**Safety** — no honest node ever *kept* anything an admission check
should have stopped:

* every honest chain replays from genesis through a fresh
  :class:`~repro.core.blockchain.Blockchain`, re-verifying structure,
  linkage, and the PoS claims (Eq. 7–9) of every block — a forged block
  that slipped in would fail the replay;
* all honest chains share the genesis, and no honest chain diverges
  from the longest honest chain at or below a checkpoint.  Divergence
  *above* the checkpoint horizon is protocol-legal — strictly-longer
  fork resolution lets equal-length competing tips coexist until the
  next block, and a churned node may briefly hold a stale fork — so
  only checkpoint-depth divergence (a rewrite an honest node must
  refuse) counts against safety;
* no honest node quarantined another honest node — the misbehavior
  scoring must never false-positive on honest traffic.

**Liveness** — the honest network kept making progress despite the
adversaries: the honest common prefix grew past a floor, and gap/chain
recovery latencies stayed bounded.

The verdict is a pure function of end-of-run node state — no wall clock,
no randomness — so a seeded scenario reproduces it bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.core.admission import CHECKPOINT_REWRITE
from repro.core.blockchain import Blockchain
from repro.core.errors import ValidationError

CHAOS_VERDICT_SCHEMA = "repro.chaos.verdict/v1"

#: Liveness warning floor: the honest common prefix should reach at
#: least this fraction of the expected block count (duration / t0).
GROWTH_FLOOR_FRACTION = 0.2

#: Recovery latency bound, in block intervals.
RECOVERY_BOUND_INTERVALS = 10.0


def _hash_at(chain: Any, index: int) -> Any:
    """Block hash at ``index``: the body if retained, else a pinned
    checkpoint record; None when the height is not comparable at all."""
    if chain.has_block(index):
        return chain.block_at(index).current_hash
    record = chain.checkpoints.get(index)
    return record.block_hash if record is not None else None


def _divergence_height(chain: Any, reference: Any) -> Any:
    """First height where ``chain`` leaves ``reference``; None if a prefix.

    Valid chains hash-link, so equal hashes at the highest comparable
    height of the shared range imply the whole prefix matches; otherwise
    a linear scan finds the first differing block (chains are tens of
    blocks long).  Pruned bodies compare through their pinned checkpoint
    hashes; heights with neither a body nor a pin on one side are
    skipped — agreement at any later height covers them by linkage.
    """
    top = min(chain.height, reference.height)
    for index in range(top, 0, -1):
        ours = _hash_at(chain, index)
        theirs = _hash_at(reference, index)
        if ours is None or theirs is None:
            continue
        if ours == theirs:
            return None
        break
    else:
        return None  # no mutually comparable height in the shared range
    for index in range(1, top + 1):
        ours = _hash_at(chain, index)
        theirs = _hash_at(reference, index)
        if ours is None or theirs is None:
            continue
        if ours != theirs:
            return index
    return top


def _chain_replays(node: Any) -> bool:
    """Re-validate a node's whole chain (structure + PoS).

    Unpruned chains replay from genesis through a fresh
    :class:`Blockchain`.  A pruned chain replays from its anchor
    instead: the pinned checkpoint at the retained floor must match the
    anchor body and the anchor state's ledger digest (the record is what
    the pruned prefix collapsed into), then every retained body above it
    re-validates as usual.
    """
    chain = node.chain
    blocks = list(chain.blocks)
    first = chain.first_retained_index
    if first == 0:
        replica = Blockchain(
            list(chain.node_ids), node.config, chain.address_of, genesis=blocks[0]
        )
    else:
        anchor = getattr(chain, "_anchor_state", None)
        record = chain.checkpoints.get(first)
        if anchor is None or record is None:
            return False  # pruned without an anchor/pin: unverifiable
        if (
            record.block_hash != blocks[0].current_hash
            or record.ledger_digest != anchor.ledger_digest()
        ):
            return False
        replica = Blockchain._bare(
            list(chain.node_ids), node.config, chain.address_of
        )
        replica.state = anchor.clone()
        replica.blocks.append(blocks[0])
        replica._first_retained = first
    for block in blocks[1:]:
        try:
            replica.append_block(block)
        except ValidationError:
            return False
    return True


def compute_verdict(spec: Any, nodes: Mapping[int, Any]) -> Dict[str, Any]:
    """Safety/liveness verdict over a finished chaos run.

    ``spec`` is a :class:`~repro.chaos.scenario.ChaosSpec`; ``nodes``
    maps node id → :class:`~repro.core.node.EdgeNode` (adversaries
    included — they are skipped for invariants, aggregated for actions).
    """
    honest = {node_id: nodes[node_id] for node_id in spec.honest_ids}
    adversary_ids = set(spec.adversary_ids)
    t0 = spec.config.expected_block_interval

    # --- safety -----------------------------------------------------------------
    invalid_chains = sorted(
        node_id for node_id, node in honest.items() if not _chain_replays(node)
    )
    # A pruned genesis contributes no hash here; linkage through the
    # divergence scan still ties the pruned prefix to the reference.
    genesis_hashes = {
        node.chain.block_at(0).current_hash
        for node in honest.values()
        if node.chain.has_block(0)
    }
    genesis_consistent = len(genesis_hashes) <= 1
    reference = max(honest.values(), key=lambda n: (n.chain.height, -n.node_id))
    divergences: Dict[int, int] = {}
    if genesis_consistent:
        for node_id, node in honest.items():
            if node is reference:
                continue
            diverged_at = _divergence_height(node.chain, reference.chain)
            if diverged_at is not None:
                divergences[node_id] = diverged_at
    prefix_consistent = genesis_consistent and not divergences
    checkpoint_violations = sorted(
        node_id
        for node_id, diverged_at in divergences.items()
        if diverged_at
        <= max(
            honest[node_id].chain.last_checkpoint(),
            reference.chain.last_checkpoint(),
        )
    )
    honest_quarantined: List[Tuple[int, int]] = sorted(
        (observer_id, peer)
        for observer_id, node in honest.items()
        for peer in node.admission.quarantined
        if peer not in adversary_ids
    )
    checkpoint_rejections = sum(
        node.admission.rejections.get(CHECKPOINT_REWRITE, 0)
        for node in honest.values()
    )
    safety_ok = (
        not invalid_chains
        and genesis_consistent
        and not checkpoint_violations
        and not honest_quarantined
    )

    # --- liveness ---------------------------------------------------------------
    if genesis_consistent:
        common_prefix = min(
            (
                divergences[node_id] - 1
                if node_id in divergences
                else min(node.chain.height, reference.chain.height)
            )
            for node_id, node in honest.items()
        )
    else:
        common_prefix = 0
    expected_blocks = spec.duration_seconds / t0
    growth_floor = max(1, int(GROWTH_FLOOR_FRACTION * expected_blocks))
    recovery_bound = RECOVERY_BOUND_INTERVALS * t0
    recoveries = [
        duration
        for node in honest.values()
        for duration in node.sync.completed_durations
    ]
    max_recovery = max(recoveries) if recoveries else None
    recovering_at_end = sorted(
        node_id for node_id, node in honest.items() if node.sync.recovering
    )
    issues: List[str] = []
    if common_prefix == 0:
        issues.append("honest common prefix never grew")
    elif common_prefix < growth_floor:
        issues.append(
            f"honest common prefix {common_prefix} below floor {growth_floor}"
        )
    if max_recovery is not None and max_recovery > recovery_bound:
        issues.append(
            f"recovery took {max_recovery:.0f}s "
            f"(bound {recovery_bound:.0f}s)"
        )
    if recovering_at_end:
        issues.append(f"nodes still recovering at end: {recovering_at_end}")
    liveness_ok = not issues

    # --- aggregates -------------------------------------------------------------
    rejections: Dict[str, int] = {}
    quarantine_events = 0
    quarantined_peers: set = set()
    for node in honest.values():
        for reason, count in node.admission.rejections.items():
            rejections[reason] = rejections.get(reason, 0) + count
        quarantine_events += len(node.admission.quarantined)
        quarantined_peers.update(node.admission.quarantined)
    chaos_actions = {
        str(node_id): getattr(nodes[node_id], "chaos_actions", 0)
        for node_id in sorted(adversary_ids)
    }

    if not safety_ok or common_prefix == 0:
        status = "critical"
    elif not liveness_ok:
        status = "warning"
    else:
        status = "ok"

    from repro.version import package_version

    return {
        "schema": CHAOS_VERDICT_SCHEMA,
        "version": package_version(),
        "status": status,
        "fabric": spec.fabric,
        "seed": spec.seed,
        "nodes": spec.node_count,
        "adversaries": {
            behavior: sorted(node_ids)
            for behavior, node_ids in sorted(spec.adversaries.items())
        },
        "safety": {
            "ok": safety_ok,
            "invalid_chains": invalid_chains,
            "genesis_consistent": genesis_consistent,
            "prefix_consistent": prefix_consistent,
            "checkpoint_violations": checkpoint_violations,
            "forked_above_checkpoint": {
                str(node_id): diverged_at
                for node_id, diverged_at in sorted(divergences.items())
                if node_id not in checkpoint_violations
            },
            "honest_quarantined": [list(pair) for pair in honest_quarantined],
            "checkpoint_rewrites_rejected": checkpoint_rejections,
        },
        "liveness": {
            "ok": liveness_ok,
            "common_prefix_height": common_prefix,
            "expected_blocks": expected_blocks,
            "growth_floor": growth_floor,
            "max_recovery_seconds": max_recovery,
            "recovery_bound_seconds": recovery_bound,
            "recovering_at_end": recovering_at_end,
            "issues": issues,
        },
        "admission": {
            "rejections": dict(sorted(rejections.items())),
            "total_rejections": sum(rejections.values()),
            "quarantine_events": quarantine_events,
            "quarantined_peers": sorted(quarantined_peers),
        },
        "honest_height": reference.chain.height,
        "honest_digest": reference.chain.chain_digest(),
        "chaos_actions": chaos_actions,
    }
