"""Seeded chaos scenario specification.

A :class:`ChaosSpec` pins everything that defines one adversarial run —
node count, config, seed, the adversary mix and its activity window, and
an optional churn/partition overlay composed with the existing fault
injectors — so two runs of the same spec produce identical verdicts and
honest-chain digests on the simulator.

:func:`node_classes_for` turns the adversary mix into the ``node_classes``
mapping both fabrics accept: for each adversarial node it builds a
dynamic subclass of the behavior class with the scenario's window baked
in as class attributes (see :mod:`repro.chaos.adversaries`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.chaos.adversaries import ADVERSARY_TYPES
from repro.core.config import SystemConfig
from repro.sim.runner import ChurnSpec


@dataclass(frozen=True)
class PartitionSpec:
    """One scheduled partition window (sim fabric only).

    Empty groups mean "split the node ids in half" — the common case for
    CLI-driven scenarios.
    """

    at_minutes: float
    heal_minutes: float
    group_a: Tuple[int, ...] = ()
    group_b: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_minutes < 0:
            raise ValueError("partition start must be non-negative")
        if self.heal_minutes <= self.at_minutes:
            raise ValueError("partition heal must come after the split")

    def groups(self, node_count: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        if self.group_a and self.group_b:
            return self.group_a, self.group_b
        half = node_count // 2
        return tuple(range(half)), tuple(range(half, node_count))


@dataclass(frozen=True)
class KillPlan:
    """Kill + restart one node mid-run (live fabric only)."""

    node_id: int
    at_minutes: float
    down_minutes: float


@dataclass(frozen=True)
class ChaosSpec:
    """Everything that defines one chaos run."""

    node_count: int
    config: SystemConfig
    seed: int = 0
    duration_minutes: float = 10.0
    #: behavior name (see ADVERSARY_TYPES) → adversarial node ids.
    adversaries: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Minutes into the run the misbehavior switches on / off
    #: (None = active to the end of the run).
    start_minutes: float = 0.0
    stop_minutes: Optional[float] = None
    churn: Optional[ChurnSpec] = None
    partition: Optional[PartitionSpec] = None
    kill: Optional[KillPlan] = None
    #: "sim" or "live".
    fabric: str = "sim"
    #: Wall seconds per logical second for the live fabric.
    time_scale: float = 0.02

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError("a blockchain network needs at least 2 nodes")
        if self.duration_minutes <= 0:
            raise ValueError("duration must be positive")
        if self.fabric not in ("sim", "live"):
            raise ValueError(f"unknown fabric {self.fabric!r}")
        if self.start_minutes < 0:
            raise ValueError("adversary start must be non-negative")
        if self.stop_minutes is not None and self.stop_minutes <= self.start_minutes:
            raise ValueError("adversary stop must come after start")
        seen: Dict[int, str] = {}
        for behavior, node_ids in self.adversaries.items():
            if behavior not in ADVERSARY_TYPES:
                raise ValueError(
                    f"unknown adversary {behavior!r} "
                    f"(known: {sorted(ADVERSARY_TYPES)})"
                )
            for node_id in node_ids:
                if not 0 <= node_id < self.node_count:
                    raise ValueError(f"adversarial node {node_id} out of range")
                if node_id in seen:
                    raise ValueError(
                        f"node {node_id} assigned to both "
                        f"{seen[node_id]!r} and {behavior!r}"
                    )
                seen[node_id] = behavior
        if self.fabric == "live" and (self.churn or self.partition):
            raise ValueError(
                "churn/partition overlays are sim-fabric only; "
                "use kill for live-fabric faults"
            )
        if self.kill is not None and self.fabric != "live":
            raise ValueError("kill plans are live-fabric only")

    @property
    def duration_seconds(self) -> float:
        return self.duration_minutes * 60.0

    @property
    def adversary_ids(self) -> Tuple[int, ...]:
        return tuple(
            sorted(
                node_id
                for node_ids in self.adversaries.values()
                for node_id in node_ids
            )
        )

    @property
    def honest_ids(self) -> Tuple[int, ...]:
        bad = set(self.adversary_ids)
        return tuple(n for n in range(self.node_count) if n not in bad)


def node_classes_for(spec: ChaosSpec) -> Dict[int, type]:
    """Per-node adversary classes with the scenario window baked in."""
    start = spec.start_minutes * 60.0
    stop = (
        spec.stop_minutes * 60.0 if spec.stop_minutes is not None else math.inf
    )
    classes: Dict[int, type] = {}
    for behavior, node_ids in sorted(spec.adversaries.items()):
        base = ADVERSARY_TYPES[behavior]
        windowed = type(
            f"{base.__name__}Windowed",
            (base,),
            {"chaos_start": start, "chaos_stop": stop},
        )
        for node_id in node_ids:
            classes[node_id] = windowed
    return classes
