"""Byzantine adversary behaviors, as EdgeNode subclasses.

Each adversary is an otherwise-honest :class:`~repro.core.node.EdgeNode`
that misbehaves in exactly one way while its chaos window is open —
isolating which hardening path each scenario exercises.  The window is
carried as *class* attributes (``chaos_start`` / ``chaos_stop``, seconds)
so :func:`repro.chaos.scenario.node_classes_for` can bake a window into
a dynamic subclass and hand it to either fabric's ``node_classes`` hook
unchanged.

Determinism: adversaries draw no randomness of their own.  Every forged
payload is a pure function of the node's chain state and a local
counter, and every action is scheduled on the node's engine — so a
seeded scenario replays bit-identically, which is what lets the chaos
tests pin verdicts and honest-chain digests.

All of these behaviors use only surfaces present on both fabrics
(``network.send/broadcast``, ``engine.call_at/schedule``, chain state),
so the same adversary class runs under the simulator and over real
sockets.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.block import Block
from repro.core.messages import (
    CATEGORY_BLOCK,
    CATEGORY_BLOCK_RECOVERY,
    CATEGORY_CHAIN_SYNC,
    CATEGORY_METADATA,
    BlockAnnounce,
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    MetadataAnnounce,
)
from repro.core.metadata import MetadataItem
from repro.core.node import EdgeNode


class ChaosNode(EdgeNode):
    """Base adversary: honest protocol + an activity window."""

    #: Seconds into the run the misbehavior switches on / off.
    chaos_start: float = 0.0
    chaos_stop: float = math.inf
    #: Forged payloads sent (for tests and scenario summaries).
    chaos_actions: int = 0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.chaos_actions = 0

    def _chaos_active(self) -> bool:
        return (
            self.chaos_start <= self.engine.now < self.chaos_stop and self.online
        )

    def _chaos_targets(self) -> list:
        return [
            node
            for node in self.topology.neighbors(self.node_id)
            if self.network.is_online(node)
        ]


class EquivocatorNode(ChaosNode):
    """Mines honestly, then announces a *second* block at the same height.

    The twin differs only in timestamp (hash recomputed), so it is a
    well-formed competitor from the same miner at the same height — the
    nothing-at-stake equivocation the
    :class:`~repro.core.admission.EquivocationTracker` exists to catch.
    Receivers keep whichever twin arrived first and charge the miner the
    equivocation weight, which quarantines it immediately.
    """

    def _try_mine(self, expected_parent_hash: str) -> None:
        mined_before = self.counters.blocks_mined
        super()._try_mine(expected_parent_hash)
        if self.counters.blocks_mined == mined_before or not self._chaos_active():
            return
        original = self.chain.tip
        twin = dataclasses.replace(
            original, timestamp=original.timestamp + 0.25, current_hash=""
        )
        self.chaos_actions += 1
        announce = BlockAnnounce(twin)
        self.network.broadcast(
            self.node_id, announce, announce.wire_size(), CATEGORY_BLOCK
        )


class InvalidBlockSpammerNode(ChaosNode):
    """Periodically broadcasts forged blocks, cycling through variants.

    Variant cycle (one per block interval while active):

    0. **bad content hash** — ``current_hash`` does not commit to the
       block (structural ``bad_hash`` rejection);
    1. **forged PoS** — valid structure and linkage, but the ``pos_hash``
       chain is broken, so Eq. 7/9 re-verification fails
       (``bad_pos`` via :class:`~repro.core.errors.ConsensusError`);
    2. **forged miner address** — miner id claims another node's address
       (``bad_miner``);
    3. **foreign parent** — next-height block on an unknown parent hash,
       driving the fork-resolution path (the receiver's chain request is
       answered with the spammer's honest chain, which fails adoption).
    """

    def start(self) -> None:
        super().start()
        self.engine.call_at(
            max(self.chaos_start, self.engine.now), self._chaos_spam
        )

    def _forged_block(self, variant: int) -> Block:
        parent = self.chain.tip
        base = self._build_block(parent)
        if variant == 0:
            return dataclasses.replace(base, current_hash="00" * 32)
        if variant == 1:
            return dataclasses.replace(base, pos_hash="ab" * 32, current_hash="")
        if variant == 2:
            other = next(
                address
                for node, address in sorted(self.chain.address_of.items())
                if node != self.node_id
            )
            return dataclasses.replace(base, miner_address=other, current_hash="")
        return dataclasses.replace(base, previous_hash="ff" * 32, current_hash="")

    def _chaos_spam(self) -> None:
        if self.engine.now >= self.chaos_stop:
            return
        if self._chaos_active():
            block = self._forged_block(self.chaos_actions % 4)
            self.chaos_actions += 1
            announce = BlockAnnounce(block)
            self.network.broadcast(
                self.node_id, announce, announce.wire_size(), CATEGORY_BLOCK
            )
        self.engine.schedule(
            self.config.expected_block_interval, self._chaos_spam
        )


class SyncPoisonerNode(ChaosNode):
    """Answers recovery requests with tampered or truncated payloads.

    Gap-recovery responses alternate between a broken ``pos_hash`` (the
    block survives structural checks, enters the sync buffer, and fails
    consensus re-verification at drain time — exercising the
    delivered-by attribution) and a garbage content hash (dropped at the
    response boundary).  Whole-chain requests are served a chain with the
    genesis cut off, which can never be adopted.
    """

    def _on_block_request(self, source: int, request: BlockRequest) -> None:
        if not self._chaos_active():
            super()._on_block_request(source, request)
            return
        poisoned = []
        for index in request.indices:
            block = self.storage.get_block(index)
            if block is None:
                continue
            if self.chaos_actions % 2 == 0:
                block = dataclasses.replace(
                    block, pos_hash="ab" * 32, current_hash=""
                )
            else:
                block = dataclasses.replace(block, current_hash="00" * 32)
            self.chaos_actions += 1
            poisoned.append(block)
        if poisoned:
            response = BlockResponse(blocks=tuple(poisoned))
            self.network.send(
                self.node_id,
                request.origin,
                response,
                response.wire_size(),
                CATEGORY_BLOCK_RECOVERY,
            )

    def _on_chain_request(self, source: int, request: ChainRequest) -> None:
        if not self._chaos_active() or len(self.chain.blocks) < 2:
            super()._on_chain_request(source, request)
            return
        self.chaos_actions += 1
        truncated = ChainResponse(blocks=tuple(self.chain.blocks[1:]))
        self.network.send(
            self.node_id,
            request.origin,
            truncated,
            truncated.wire_size(),
            CATEGORY_CHAIN_SYNC,
        )


class MetadataTampererNode(ChaosNode):
    """Rebroadcasts received metadata with forged fields.

    Alternates between a forged producer address (caught by the roster
    check on every node) and a tampered ``data_type`` (breaks the
    producer's signature — caught when ``verify_metadata_signatures`` is
    enabled, which chaos scenarios turn on).  The original item is still
    processed honestly, so the tamperer stays subtle.
    """

    def _on_metadata(self, source: int, item: MetadataItem) -> None:
        super()._on_metadata(source, item)
        if not self._chaos_active() or item.producer == self.node_id:
            return
        if self.chaos_actions % 2 == 0:
            forged = dataclasses.replace(item, producer_address="f0" * 20)
        else:
            forged = dataclasses.replace(item, data_type="Forged/Tampered")
        self.chaos_actions += 1
        announce = MetadataAnnounce(forged)
        self.network.broadcast(
            self.node_id, announce, announce.wire_size(), CATEGORY_METADATA
        )


class FlooderNode(ChaosNode):
    """Hammers neighbors with oversized and repeated recovery requests.

    Every tick it sends each neighbor a block request far over the
    honest cardinality cap plus a whole-chain request — both land as
    ``flood`` rejections (weight 1), so a sustained storm quarantines
    the flooder while a single burst would not.
    """

    def start(self) -> None:
        super().start()
        self.engine.call_at(
            max(self.chaos_start, self.engine.now), self._chaos_flood
        )

    def _chaos_flood(self) -> None:
        if self.engine.now >= self.chaos_stop:
            return
        if self._chaos_active():
            indices = tuple(range(1, 66))  # one past the honest cardinality cap
            for target in self._chaos_targets():
                request = BlockRequest(indices=indices, origin=self.node_id)
                self.network.send(
                    self.node_id,
                    target,
                    request,
                    request.wire_size(),
                    CATEGORY_BLOCK_RECOVERY,
                )
                chain_request = ChainRequest(origin=self.node_id)
                self.network.send(
                    self.node_id,
                    target,
                    chain_request,
                    chain_request.wire_size(),
                    CATEGORY_CHAIN_SYNC,
                )
                self.chaos_actions += 2
        self.engine.schedule(
            self.config.expected_block_interval / 4.0, self._chaos_flood
        )


#: Registry used by scenarios and the CLI.
ADVERSARY_TYPES = {
    "equivocator": EquivocatorNode,
    "spammer": InvalidBlockSpammerNode,
    "poisoner": SyncPoisonerNode,
    "tamperer": MetadataTampererNode,
    "flooder": FlooderNode,
}
