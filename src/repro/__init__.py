"""repro — Edge blockchain with fair resource allocation and PoS consensus.

A complete, from-scratch reproduction of "Resource Allocation and Consensus
on Edge Blockchain in Pervasive Edge Computing Environments" (ICDCS 2019):

* :mod:`repro.core` — the edge blockchain: metadata-in-block design,
  UFL-based fair/efficient storage allocation (FDC + RDC), recent-block
  caching, the new Proof-of-Stake mechanism, and the full protocol node.
* :mod:`repro.facility` — the facility-location solver suite.
* :mod:`repro.simnet` — deterministic discrete-event network simulator.
* :mod:`repro.raft` — Raft, the general-information consensus substrate.
* :mod:`repro.energy` — calibrated battery/energy model (the Fig. 6 testbed).
* :mod:`repro.crypto` — SHA-256 / secp256k1 / Merkle substrate.
* :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.sim` — the
  evaluation harness reproducing every figure of Section VI.

Quickstart::

    from repro.sim import ExperimentSpec, run_experiment
    from repro.core import PAPER_CONFIG

    result = run_experiment(
        ExperimentSpec(node_count=20, config=PAPER_CONFIG, seed=1,
                       duration_minutes=30)
    )
    print(result.metrics.average_delivery_time())
"""

__version__ = "1.0.0"

from repro.core import PAPER_CONFIG, EdgeNode, SystemConfig
from repro.sim import ExperimentSpec, build_cluster, run_experiment

__all__ = [
    "__version__",
    "SystemConfig",
    "PAPER_CONFIG",
    "EdgeNode",
    "ExperimentSpec",
    "run_experiment",
    "build_cluster",
]
