"""Epidemic gossip with duplicate suppression.

The transport layer's ``broadcast`` models dissemination analytically (BFS
tree).  This module provides the *protocol-level* alternative: a real
store-and-forward gossip where each node, on first receipt of a message id,
re-forwards to its current neighbours.  It is used by tests to validate that
the analytic broadcast and the hop-by-hop protocol agree on coverage and
latency, and by the churn scenarios where the topology changes while a
message is in flight (the BFS snapshot model cannot capture that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Topology
from repro.simnet.trace import TransmissionTrace

#: Callback fired on each node's first receipt: (node, source, payload).
GossipHandler = Callable[[int, int, Any], None]


@dataclass(frozen=True)
class _GossipMessage:
    message_id: int
    origin: int
    payload: Any
    size_bytes: int
    category: str


class GossipFabric:
    """Hop-by-hop flooding with per-node duplicate suppression."""

    def __init__(
        self,
        engine: EventEngine,
        topology: Topology,
        channel: Optional[ChannelModel] = None,
        trace: Optional[TransmissionTrace] = None,
        batch_deliveries: bool = True,
    ):
        self.engine = engine
        self.topology = topology
        self.channel = channel if channel is not None else ChannelModel()
        self.trace = trace if trace is not None else TransmissionTrace()
        #: One queue pop per forwarding fan-out instead of one per neighbour
        #: (all of a hop's receptions share the same latency).  Loss draws
        #: stay per-neighbour in the same RNG order either way.
        self.batch_deliveries = batch_deliveries
        self._seen: Dict[int, Set[int]] = {}
        self._handler: Optional[GossipHandler] = None
        self._next_id = 0
        self._offline: Set[int] = set()

    def on_receive(self, handler: GossipHandler) -> None:
        """Set the single delivery callback shared by all nodes."""
        self._handler = handler

    def set_online(self, node: int, online: bool) -> None:
        if online:
            self._offline.discard(node)
        else:
            self._offline.add(node)

    def is_online(self, node: int) -> bool:
        return node not in self._offline

    def originate(self, origin: int, payload: Any, size_bytes: int, category: str) -> int:
        """Start a gossip from ``origin``; returns the message id."""
        if not self.is_online(origin):
            raise ValueError(f"origin node {origin} is offline")
        message = _GossipMessage(
            message_id=self._next_id,
            origin=origin,
            payload=payload,
            size_bytes=size_bytes,
            category=category,
        )
        self._next_id += 1
        self._seen.setdefault(message.message_id, set()).add(origin)
        self._forward(origin, message)
        return message.message_id

    def nodes_reached(self, message_id: int) -> Set[int]:
        """Nodes that have received (or originated) the message so far."""
        return set(self._seen.get(message_id, set()))

    def _forward(self, node: int, message: _GossipMessage) -> None:
        """Re-broadcast from ``node`` to its *current* neighbours."""
        latency = self.channel.hop_latency(message.size_bytes)
        pending = []
        for neighbor in self.topology.neighbors(node):
            if not self.is_online(neighbor):
                continue
            if not self.channel.survives(1, self.engine.np_rng):
                self.trace.record_hop(node, neighbor, message.size_bytes, message.category)
                continue
            self.trace.record_hop(node, neighbor, message.size_bytes, message.category)
            if self.batch_deliveries:
                pending.append((self._receive, (neighbor, node, message)))
            else:
                self.engine.schedule(latency, self._receive, neighbor, node, message)
        if pending:
            self.engine.call_at_batch(self.engine.now + latency, pending)

    def _receive(self, node: int, upstream: int, message: _GossipMessage) -> None:
        if not self.is_online(node):
            return
        seen = self._seen.setdefault(message.message_id, set())
        if node in seen:
            return  # duplicate suppressed
        seen.add(node)
        if self._handler is not None:
            self._handler(node, message.origin, message.payload)
        self._forward(node, message)
