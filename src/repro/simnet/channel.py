"""Wireless channel model: per-hop delay, bandwidth, and loss.

The paper simulates "a small delay (10 ms) as propagation delay over one
hop ... obtained from network simulators as the typical propagation delay
over the 802.11" (Section VI-A).  Processing/queueing/transmission delay in
their Docker setup came from real sockets; we model it explicitly as a
serialisation term ``size / bandwidth`` so large data items (1 MB) cost more
than small blocks (< 10 KB), which the delivery-time figures depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Paper's per-hop propagation delay in seconds.
DEFAULT_HOP_DELAY = 0.010

#: Effective 802.11n per-hop throughput in bytes/second.  Real-world single
#: stream 802.11n delivers tens of Mbit/s; 5 MB/s (40 Mbit/s) keeps a 1 MB
#: data item at ~0.2 s per hop, which reproduces the paper's "overall 4
#: seconds in maximum" delivery times at multi-hop distances.
DEFAULT_BANDWIDTH = 5_000_000.0


@dataclass(frozen=True)
class ChannelModel:
    """Immutable channel parameters shared by every link.

    Attributes
    ----------
    hop_delay:
        Propagation + MAC delay per hop, seconds.
    bandwidth:
        Bytes per second for the serialisation delay term; ``None`` disables
        the term (pure propagation model).
    loss_probability:
        Independent per-hop probability that a transmission is lost.  The
        default is 0 — the paper's socket transport is reliable — and the
        fault-injection tests raise it.
    """

    hop_delay: float = DEFAULT_HOP_DELAY
    bandwidth: Optional[float] = DEFAULT_BANDWIDTH
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.hop_delay < 0:
            raise ValueError("hop delay must be non-negative")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive when set")
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("loss probability must be in [0, 1)")

    def hop_latency(self, size_bytes: int) -> float:
        """Latency for one hop carrying ``size_bytes`` of payload."""
        if size_bytes < 0:
            raise ValueError("message size must be non-negative")
        latency = self.hop_delay
        if self.bandwidth is not None:
            latency += size_bytes / self.bandwidth
        return latency

    def path_latency(self, size_bytes: int, hops: int) -> float:
        """End-to-end latency over ``hops`` store-and-forward hops."""
        if hops < 0:
            raise ValueError("hop count must be non-negative")
        return hops * self.hop_latency(size_bytes)

    def survives(self, hops: int, rng: np.random.Generator) -> bool:
        """Sample whether a message survives ``hops`` independent loss trials."""
        if self.loss_probability == 0.0 or hops == 0:
            return True
        return bool(rng.uniform() >= 1.0 - (1.0 - self.loss_probability) ** hops)
