"""Fault injection: churn, disconnection windows, and partitions.

Mobility-induced disconnection is the motivating failure mode for the
paper's recent-block allocation (Section IV-C): nodes drop off, miss blocks,
and must recover them quickly on reconnect.  :class:`ChurnInjector`
schedules those disconnection windows on the event engine, and
:class:`PartitionInjector` splits the topology for network-partition tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.simnet.engine import EventEngine
from repro.simnet.transport import Network


@dataclass(frozen=True)
class ChurnEvent:
    """One planned disconnection window for a node."""

    node: int
    down_at: float
    up_at: float

    def __post_init__(self) -> None:
        if self.up_at <= self.down_at:
            raise ValueError("reconnect must come after disconnect")


class ChurnInjector:
    """Schedules node down/up windows and notifies the protocol layer.

    ``on_down`` / ``on_up`` callbacks let protocol nodes react (e.g. a node
    that comes back up starts the missing-block recovery protocol).
    """

    def __init__(
        self,
        engine: EventEngine,
        network: Network,
        on_down: Optional[Callable[[int], None]] = None,
        on_up: Optional[Callable[[int], None]] = None,
    ):
        self._engine = engine
        self._network = network
        self._on_down = on_down
        self._on_up = on_up
        self._events: List[ChurnEvent] = []

    @property
    def planned_events(self) -> List[ChurnEvent]:
        return list(self._events)

    def plan(self, event: ChurnEvent) -> None:
        """Schedule one disconnection window.

        Rejects windows starting in the past and windows overlapping an
        already-planned window for the same node — either would corrupt
        the up/down state machine (a node brought "up" inside another
        window's downtime, or a transition the engine refuses to fire).
        """
        if event.down_at < self._engine.now:
            raise ValueError(
                f"churn window for node {event.node} starts at {event.down_at:.3f}, "
                f"before the current time {self._engine.now:.3f}"
            )
        for planned in self._events:
            if planned.node != event.node:
                continue
            if event.down_at < planned.up_at and planned.down_at < event.up_at:
                raise ValueError(
                    f"churn window [{event.down_at:.3f}, {event.up_at:.3f}] for "
                    f"node {event.node} overlaps planned window "
                    f"[{planned.down_at:.3f}, {planned.up_at:.3f}]"
                )
        self._events.append(event)
        self._engine.call_at(event.down_at, self._take_down, event.node)
        self._engine.call_at(event.up_at, self._bring_up, event.node)

    def plan_random(
        self,
        node_ids: List[int],
        horizon: float,
        mean_downtime: float,
        events_per_node: float,
    ) -> List[ChurnEvent]:
        """Sample disconnection windows uniformly over ``[0, horizon]``.

        Each listed node suffers a Poisson-ish number of windows (rounded
        expectation) with exponential downtime of the given mean.  Windows
        for one node never overlap: they are sorted and clipped.
        """
        rng = self._engine.np_rng
        planned: List[ChurnEvent] = []
        for node in node_ids:
            count = max(0, int(round(events_per_node)))
            starts = sorted(float(rng.uniform(0, horizon)) for _ in range(count))
            last_up = 0.0
            for start in starts:
                down_at = max(start, last_up + 1e-6, self._engine.now)
                if down_at > horizon:
                    break  # the non-overlap shift pushed past the horizon
                duration = float(rng.exponential(mean_downtime))
                up_at = min(down_at + max(duration, 1e-3), horizon + mean_downtime)
                if up_at <= down_at:
                    continue
                event = ChurnEvent(node=node, down_at=down_at, up_at=up_at)
                self.plan(event)
                planned.append(event)
                last_up = up_at
        return planned

    def _take_down(self, node: int) -> None:
        self._network.set_online(node, False)
        if self._on_down is not None:
            self._on_down(node)

    def _bring_up(self, node: int) -> None:
        self._network.set_online(node, True)
        if self._on_up is not None:
            self._on_up(node)


class PartitionInjector:
    """Splits the network into groups by disabling cross-group delivery.

    Implemented by taking the smaller side's nodes offline is too blunt (it
    also stops intra-group traffic), so instead we interpose on the
    topology: edges crossing the partition are removed and restored on heal.
    """

    def __init__(self, network: Network, engine: Optional[EventEngine] = None):
        self._network = network
        self._engine = engine
        self._removed: List[Tuple[int, int]] = []
        self._active = False
        self._windows: List[Tuple[float, float]] = []

    @property
    def active(self) -> bool:
        return self._active

    def schedule(
        self,
        group_a: List[int],
        group_b: List[int],
        at: float,
        heal_at: float,
    ) -> None:
        """Plan a partition window ``[at, heal_at)`` on the event engine.

        Windows in the past, inverted windows, and windows overlapping an
        already-scheduled one are rejected up front — only one partition
        can be active at a time, and a mid-run :exc:`RuntimeError` from
        :meth:`partition` would be far harder to diagnose.
        """
        if self._engine is None:
            raise ValueError("scheduling requires an engine")
        if at < self._engine.now:
            raise ValueError(
                f"partition window starts at {at:.3f}, before the current "
                f"time {self._engine.now:.3f}"
            )
        if heal_at <= at:
            raise ValueError("partition heal must come after the split")
        for start, stop in self._windows:
            if at < stop and start < heal_at:
                raise ValueError(
                    f"partition window [{at:.3f}, {heal_at:.3f}] overlaps "
                    f"scheduled window [{start:.3f}, {stop:.3f}]"
                )
        self._windows.append((at, heal_at))
        self._engine.call_at(at, self.partition, list(group_a), list(group_b))
        self._engine.call_at(heal_at, self.heal)

    def partition(self, group_a: List[int], group_b: List[int]) -> int:
        """Cut all edges between the two groups; returns edges removed."""
        if self._active:
            raise RuntimeError("a partition is already active")
        set_a, set_b = set(group_a), set(group_b)
        if set_a & set_b:
            raise ValueError("partition groups must be disjoint")
        graph = self._network.topology.graph
        crossing = [
            (u, v)
            for u, v in list(graph.edges())
            if (u in set_a and v in set_b) or (u in set_b and v in set_a)
        ]
        for u, v in crossing:
            graph.remove_edge(u, v)
        # Invalidate topology caches the blunt way: removing edges directly
        # bypasses Topology's own mutators.
        self._network.topology._hops = None  # noqa: SLF001 — deliberate cache bust
        self._network.topology._paths.clear()  # noqa: SLF001
        self._removed = crossing
        self._active = True
        return len(crossing)

    def heal(self) -> None:
        """Restore every edge removed by :meth:`partition`."""
        if not self._active:
            return
        graph = self._network.topology.graph
        for u, v in self._removed:
            graph.add_edge(u, v)
        self._network.topology._hops = None  # noqa: SLF001
        self._network.topology._paths.clear()  # noqa: SLF001
        self._removed = []
        self._active = False
