"""Deterministic discrete-event simulation engine.

The paper evaluated its blockchain over Docker containers communicating via
sockets; we reproduce the same protocol behaviour on a single deterministic
event loop.  Determinism is load-bearing: every distributed-protocol test in
this repository relies on identical seeds producing identical executions.

The engine is a classic heap-ordered event queue:

* :meth:`EventEngine.schedule` / :meth:`EventEngine.call_at` enqueue callbacks.
* Events at equal timestamps fire in insertion order (a monotonically
  increasing sequence number breaks ties), so "simultaneous" events are
  still deterministic.
* Cancellation is O(1) by marking the event dead and skipping it on pop.

Time is a float number of **seconds** of simulated time.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.obs import runtime as _obs


def _callback_label(callback: Callable[..., None]) -> str:
    return getattr(callback, "__qualname__", None) or repr(callback)


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Additional ``(callback, args)`` pairs run (in order) after the main
    #: callback — one queue pop executing a whole same-time batch.
    batch: Optional[tuple] = field(compare=False, default=None)


class EventHandle:
    """Opaque handle returned by :meth:`EventEngine.schedule`; supports cancel."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventEngine:
    """A deterministic event loop with an owned random source.

    Parameters
    ----------
    seed:
        Seed for both the :mod:`random` and :mod:`numpy` generators owned by
        the engine.  All simulation randomness must flow through
        :attr:`rng` / :attr:`np_rng` to keep runs reproducible.
    """

    def __init__(self, seed: int = 0):
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self.seed = seed
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed)
        #: Count of events executed; useful for bounding tests.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Number of queued events (live and cancelled-but-unpopped)."""
        return len(self._queue)

    def clock_reader(self) -> Callable[[], float]:
        """A zero-argument callable reading this engine's clock.

        Handed to the process-global tracer (never pickled) so spans can
        carry simulated time alongside wall time.
        """
        return lambda: self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        event = _Event(time=when, sequence=next(self._sequence), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_at_batch(
        self, when: float, calls: Any
    ) -> EventHandle:
        """Run several ``(callback, args)`` pairs at ``when`` off one pop.

        The pairs execute in order, each counted, traced, and
        timeline-ticked exactly as if it had been scheduled individually
        with consecutive sequence numbers — one heap entry replaces N.
        Because consecutive same-time events can never interleave with
        other events (the heap orders by ``(time, sequence)``), the
        execution sequence is identical to N :meth:`call_at` calls; only
        the queue-depth gauge sees the shallower queue.  Cancelling the
        returned handle cancels the whole batch.
        """
        calls = tuple(calls)
        if not calls:
            raise ValueError("batch must contain at least one call")
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        first_callback, first_args = calls[0]
        event = _Event(
            time=when,
            sequence=next(self._sequence),
            callback=first_callback,
            args=tuple(first_args),
            batch=calls[1:] or None,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def _pop_live(self) -> Optional[_Event]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next event (or batch).  False when the queue is empty.

        A batched event's sub-calls each get their own span, counter
        increment, and timeline tick, keeping the observable execution
        sequence identical to the unbatched schedule.
        """
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        if event.batch is None:
            calls = ((event.callback, event.args),)
        else:
            calls = ((event.callback, event.args),) + event.batch
        for callback, args in calls:
            self.events_processed += 1
            if _obs.is_enabled():
                # Observability reads state only (clock, queue depth) — it
                # can never perturb the deterministic execution it watches.
                with _obs.span(
                    "engine.event", "engine", callback=_callback_label(callback)
                ):
                    callback(*args)
                _obs.add("engine.events")
                _obs.gauge_set("engine.queue_depth", len(self._queue))
                _obs.timeline_tick(self._now)
            else:
                callback(*args)
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally stopping after ``max_events`` events."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                return

    def run_until(self, deadline: float) -> None:
        """Execute events with timestamps ≤ ``deadline``; advance clock to it.

        The clock always lands exactly on ``deadline`` so periodic processes
        can be chained across successive ``run_until`` calls.
        """
        if deadline < self._now:
            raise ValueError("deadline is in the past")
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self._now = deadline

    def clear(self) -> None:
        """Drop all pending events (used when tearing a scenario down)."""
        self._queue.clear()


class PeriodicTask:
    """Re-schedules a callback at a fixed period until cancelled.

    Drives processes like Raft heartbeats, mobility epochs, and the PoS
    per-second polling loop variant.
    """

    def __init__(
        self,
        engine: EventEngine,
        period: float,
        callback: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._stopped = False
        self._handle = engine.schedule(
            period if start_delay is None else start_delay, self._fire
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._engine.schedule(self._period, self._fire)

    def stop(self) -> None:
        self._stopped = True
        self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
