"""Message transport over the simulated multi-hop network.

Bridges the pieces: the :class:`~repro.simnet.engine.EventEngine` provides
time, the :class:`~repro.simnet.topology.Topology` provides hop paths, the
:class:`~repro.simnet.channel.ChannelModel` provides latency/loss, and the
:class:`~repro.simnet.trace.TransmissionTrace` bills every link crossing.

Protocol nodes register a handler and exchange opaque payloads:

* :meth:`Network.send` — unicast along the shortest hop path.
* :meth:`Network.broadcast` — network-wide dissemination, either over a BFS
  spanning tree (the efficient model used for blocks/metadata) or by
  controlled flooding (each node forwards once — the naive model, used to
  quantify flooding overhead).

Messages to/from offline nodes are dropped, as are messages whose path no
longer exists (mobility or churn can disconnect the graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.obs import runtime as _obs
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Topology
from repro.simnet.trace import TransmissionTrace

#: Handler invoked on delivery: (source_node, payload, category).
MessageHandler = Callable[[int, Any, str], None]


@dataclass
class SendReceipt:
    """Outcome of a unicast: whether it was dispatched, and its ETA."""

    delivered: bool
    hops: int
    latency: float


class Network:
    """Unicast + broadcast message fabric over a unit-disk topology."""

    def __init__(
        self,
        engine: EventEngine,
        topology: Topology,
        channel: Optional[ChannelModel] = None,
        trace: Optional[TransmissionTrace] = None,
        batch_deliveries: bool = True,
    ):
        self.engine = engine
        self.topology = topology
        self.channel = channel if channel is not None else ChannelModel()
        self.trace = trace if trace is not None else TransmissionTrace()
        #: Coalesce same-instant broadcast deliveries into one queue pop.
        #: Execution order is provably unchanged (see ``call_at_batch``);
        #: the flag exists so the differential harness can run both paths.
        self.batch_deliveries = batch_deliveries
        self._handlers: Dict[int, MessageHandler] = {}
        self._offline: Set[int] = set()
        #: Monotone counter of dispatched messages (unicast + broadcast).
        self.messages_sent = 0
        #: Messages that never reached delivery: offline endpoint, no
        #: path, channel loss, or a broadcast from an offline source.
        #: Mirrored by the live transport so sim and live loss accounting
        #: compare field for field.
        self.messages_dropped = 0

    # -- membership -------------------------------------------------------------

    def register(self, node: int, handler: MessageHandler) -> None:
        """Attach the protocol handler for ``node``."""
        self._handlers[node] = handler

    def is_online(self, node: int) -> bool:
        return node not in self._offline

    def set_online(self, node: int, online: bool) -> None:
        """Toggle a node's radio; offline nodes lose all topology edges."""
        if online and node in self._offline:
            self._offline.discard(node)
            self.topology.restore_node(node)
        elif not online and node not in self._offline:
            self._offline.add(node)
            self.topology.remove_node(node)

    def online_nodes(self) -> List[int]:
        return [n for n in range(self.topology.node_count) if n not in self._offline]

    def reapply_offline(self) -> None:
        """Strip offline nodes' edges again after a topology rebuild.

        Mobility epochs rebuild the unit-disk graph from scratch, which
        would silently re-link nodes whose radios are off; call this after
        every ``Topology.update_positions``.
        """
        for node in self._offline:
            self.topology.remove_node(node)

    # -- unicast ------------------------------------------------------------------

    def send(
        self,
        source: int,
        target: int,
        payload: Any,
        size_bytes: int,
        category: str,
    ) -> SendReceipt:
        """Route ``payload`` from ``source`` to ``target`` over the shortest path.

        Returns a receipt; ``delivered=False`` means the message was dropped
        (offline endpoint, no path, or channel loss) and no handler will fire.
        Billing covers exactly the hops the message actually traversed.
        """
        if source == target:
            raise ValueError("loopback sends are not routed")
        if not self.is_online(source) or not self.is_online(target):
            self.messages_dropped += 1
            _obs.add("net.messages_dropped")
            return SendReceipt(delivered=False, hops=0, latency=0.0)
        path = self.topology.shortest_path(source, target)
        if path is None:
            self.messages_dropped += 1
            _obs.add("net.messages_dropped")
            return SendReceipt(delivered=False, hops=0, latency=0.0)
        hops = len(path) - 1
        traversed = 0
        for upstream, downstream in zip(path, path[1:]):
            if not self.channel.survives(1, self.engine.np_rng):
                # Lost on this hop: bill what was actually sent, then drop.
                self.trace.record_hop(upstream, downstream, size_bytes, category)
                self.messages_dropped += 1
                _obs.add("net.messages_dropped")
                return SendReceipt(delivered=False, hops=traversed + 1, latency=0.0)
            self.trace.record_hop(upstream, downstream, size_bytes, category)
            traversed += 1
        latency = self.channel.path_latency(size_bytes, hops)
        self.messages_sent += 1
        _obs.add("net.messages_sent")
        self.engine.schedule(latency, self._deliver, target, source, payload, category)
        return SendReceipt(delivered=True, hops=hops, latency=latency)

    # -- broadcast ---------------------------------------------------------------

    def broadcast(
        self,
        source: int,
        payload: Any,
        size_bytes: int,
        category: str,
        mode: str = "tree",
    ) -> int:
        """Disseminate ``payload`` from ``source`` to every reachable node.

        ``mode="tree"`` bills one transmission per BFS-tree edge (each node
        receives the message exactly once — an idealised gossip with
        duplicate suppression).  ``mode="flood"`` bills the naive protocol
        where every node forwards to all neighbours except the link it heard
        the message on.  Both deliver at BFS-depth latency.

        Returns the number of nodes the broadcast reached (excluding source).
        """
        if not self.is_online(source):
            self.messages_dropped += 1
            _obs.add("net.messages_dropped")
            return 0
        if mode not in ("tree", "flood"):
            raise ValueError(f"unknown broadcast mode: {mode}")
        parents = self.topology.bfs_tree(source)
        depth: Dict[int, int] = {source: 0}
        # BFS order from the parent map: iterate by increasing depth.
        ordered = [source]
        index = 0
        children: Dict[int, List[int]] = {}
        for node, parent in parents.items():
            if node != source:
                children.setdefault(parent, []).append(node)
        while index < len(ordered):
            node = ordered[index]
            index += 1
            for child in sorted(children.get(node, [])):
                depth[child] = depth[node] + 1
                ordered.append(child)

        reached = 0
        # Deliveries arrive in BFS order; depths (and with them latencies)
        # are non-decreasing, so nodes sharing an arrival instant form
        # contiguous runs.  Batching coalesces each run into one queue pop
        # without reordering anything (see ``EventEngine.call_at_batch``).
        pending: List[tuple] = []
        pending_latency = 0.0
        for node in ordered[1:]:
            parent = parents[node]
            self.trace.record_hop(parent, node, size_bytes, category)
            latency = self.channel.path_latency(size_bytes, depth[node])
            if self.batch_deliveries:
                if pending and latency != pending_latency:
                    self.engine.call_at_batch(self.engine.now + pending_latency, pending)
                    pending = []
                pending.append((self._deliver, (node, source, payload, category)))
                pending_latency = latency
            else:
                self.engine.schedule(latency, self._deliver, node, source, payload, category)
            reached += 1
        if pending:
            self.engine.call_at_batch(self.engine.now + pending_latency, pending)
        if mode == "flood":
            # Extra redundant transmissions: every node that received the
            # message re-broadcasts once to each neighbour other than its
            # tree parent; those copies are suppressed on arrival but still
            # billed on the air.
            for node in ordered:
                parent = parents[node]
                for neighbor in self.topology.neighbors(node):
                    if node == source or neighbor != parent:
                        if neighbor not in parents:
                            continue
                        if parents.get(neighbor) == node:
                            continue  # already billed as the tree edge
                        self.trace.record_hop(node, neighbor, size_bytes, category)
        self.messages_sent += 1
        _obs.add("net.messages_sent")
        return reached

    # -- accounting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Traffic summary: trace totals plus sent/dropped counters.

        Same shape as :meth:`repro.net.router.SocketNetwork.snapshot`, so
        a simulated and a live run of the same workload diff directly.
        """
        return {
            **self.trace.snapshot(),
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
        }

    # -- delivery ----------------------------------------------------------------

    def _deliver(self, target: int, source: int, payload: Any, category: str) -> None:
        if not self.is_online(target):
            return  # went offline while the message was in flight
        handler = self._handlers.get(target)
        if handler is not None:
            handler(source, payload, category)
