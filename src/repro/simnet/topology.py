"""Geometric network topology for pervasive edge environments.

The paper's simulation places nodes uniformly in a 300 m × 300 m field with a
70 m 802.11n communication range (Section VI).  Two nodes are neighbours when
their Euclidean distance is within the radio range (a unit-disk graph), and
multi-hop paths are shortest hop-count paths — the paper's chosen "distance"
for the Range-Distance Cost (Eq. 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.obs import runtime as _obs

#: Field side length in metres (paper Section VI).
DEFAULT_FIELD_SIZE = 300.0

#: Radio communication range in metres (typical 802.11n, paper Section VI).
DEFAULT_COMM_RANGE = 70.0

#: Hop count reported for unreachable pairs.
UNREACHABLE = -1


@dataclass(frozen=True)
class Position:
    """A point in the 2-D field."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


def random_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float = DEFAULT_FIELD_SIZE,
) -> List[Position]:
    """Sample ``count`` uniform positions in a ``field_size`` square."""
    if count < 0:
        raise ValueError("count must be non-negative")
    coords = rng.uniform(0.0, field_size, size=(count, 2))
    return [Position(float(x), float(y)) for x, y in coords]


def connected_random_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float = DEFAULT_FIELD_SIZE,
    comm_range: float = DEFAULT_COMM_RANGE,
    max_attempts: int = 30,
) -> List[Position]:
    """Sample positions for a *connected* unit-disk graph.

    The paper's scenarios implicitly assume a connected network (every node
    eventually receives every block).  For dense settings a plain uniform
    sample is usually connected, so we rejection-sample first; for sparse
    settings (e.g. 10 nodes in 300×300 m with 70 m range the uniform graph
    is almost never connected) we fall back to sequential attachment: each
    node is sampled uniformly but resampled until it lands within radio
    range of an already-placed node.  That guarantees connectivity while
    keeping placements spread over the field.
    """
    for _ in range(max_attempts):
        positions = random_positions(count, rng, field_size)
        topology = Topology(positions, comm_range=comm_range)
        if topology.is_connected():
            return positions
    return _sequential_connected_positions(count, rng, field_size, comm_range)


def _sequential_connected_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float,
    comm_range: float,
    max_resamples: int = 10_000,
) -> List[Position]:
    """Attachment sampling: every new node lands in range of a placed one."""
    if count == 0:
        return []
    positions = [Position(*map(float, rng.uniform(0.0, field_size, size=2)))]
    while len(positions) < count:
        for attempt in range(max_resamples):
            candidate = Position(*map(float, rng.uniform(0.0, field_size, size=2)))
            if any(candidate.distance_to(p) <= comm_range for p in positions):
                positions.append(candidate)
                break
        else:
            raise RuntimeError(
                "sequential placement failed; field too large for the radio range"
            )
    return positions


class Topology:
    """Unit-disk connectivity graph with cached hop-count distances.

    Node identifiers are the integer indices of the ``positions`` sequence.
    Rebuild (or call :meth:`update_positions`) whenever mobility moves nodes;
    hop-count tables are recomputed lazily.

    Edge membership is defined by ``Position.distance_to(other) <=
    comm_range`` — the scalar ``math.hypot`` comparison.  The vectorised
    construction path reproduces that definition bit-for-bit: squared
    distances classify every pair whose squared distance is outside a
    ±1e-9 relative band around ``comm_range²`` (float64 squaring and
    ``math.hypot`` both carry ≲1 ulp ≈ 1e-15 relative error, six orders
    of magnitude inside the band), and the rare boundary pairs fall back
    to the scalar ``math.hypot`` check itself.
    """

    def __init__(
        self,
        positions: Sequence[Position],
        comm_range: float = DEFAULT_COMM_RANGE,
    ):
        if comm_range <= 0:
            raise ValueError("communication range must be positive")
        self.comm_range = comm_range
        self._positions: List[Position] = list(positions)
        self._graph = nx.Graph()
        self._hop_cache: Optional[np.ndarray] = None
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        #: Identity of the current position-derived (full) edge set; lets a
        #: mobility epoch that didn't change connectivity keep every cache.
        self._edge_key: Optional[bytes] = None
        #: Nodes whose edges were stripped (offline): while non-empty the
        #: graph differs from the full unit-disk graph, so mobility epochs
        #: must rebuild even when the full edge set is unchanged.
        self._stripped: set = set()
        self._rebuild_graph()

    # -- construction --------------------------------------------------------

    def _full_edges(self, coords: np.ndarray) -> np.ndarray:
        """All unit-disk edges for ``coords``, as an (m, 2) int array in
        row-major ``i < j`` order — the insertion order of the original
        nested-loop construction (preserved so networkx adjacency order,
        and with it every BFS tie-break, stays identical)."""
        n = coords.shape[0]
        if n < 2:
            return np.empty((0, 2), dtype=np.int64)
        rows, cols = np.triu_indices(n, k=1)
        dx = coords[rows, 0] - coords[cols, 0]
        dy = coords[rows, 1] - coords[cols, 1]
        d2 = dx * dx + dy * dy
        r2 = self.comm_range * self.comm_range
        band = r2 * 1e-9
        within = d2 <= r2 + band
        boundary = within & (d2 > r2 - band)
        if boundary.any():
            # Within a whisker of the range: defer to the scalar definition.
            for k in np.nonzero(boundary)[0]:
                i, j = int(rows[k]), int(cols[k])
                within[k] = (
                    self._positions[i].distance_to(self._positions[j])
                    <= self.comm_range
                )
        return np.column_stack((rows[within], cols[within]))

    def _coords(self) -> np.ndarray:
        return np.array([(p.x, p.y) for p in self._positions], dtype=np.float64)

    def _rebuild_graph(self) -> None:
        edges = self._full_edges(self._coords())
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self._positions)))
        graph.add_edges_from(edges.tolist())
        self._graph = graph
        self._edge_key = edges.tobytes()
        self._stripped.clear()
        self._invalidate()

    def _invalidate(self) -> None:
        self._hop_cache = None
        self._paths.clear()

    def update_positions(self, positions: Sequence[Position]) -> None:
        """Replace all node positions (mobility epoch).

        Caches (hop matrix, shortest paths, the graph itself) are kept when
        the move didn't change the unit-disk edge set — the common case for
        the paper's 30 m wander inside a 70 m radio range — and invalidated
        otherwise.  Offline nodes force a rebuild because the historical
        contract is that a rebuild restores their edges (the simulation
        re-strips them via ``Network.reapply_offline``).
        """
        if len(positions) != len(self._positions):
            raise ValueError("node count cannot change via update_positions")
        self._positions = list(positions)
        if not self._stripped:
            edges = self._full_edges(self._coords())
            if edges.tobytes() == self._edge_key:
                _obs.add("routing.cache_hit")
                return
            graph = nx.Graph()
            graph.add_nodes_from(range(len(self._positions)))
            graph.add_edges_from(edges.tolist())
            self._graph = graph
            self._edge_key = edges.tobytes()
            self._invalidate()
            _obs.add("routing.recompute")
            return
        _obs.add("routing.recompute")
        self._rebuild_graph()

    def remove_node(self, node: int) -> None:
        """Take a node offline (it keeps its index but loses all edges)."""
        if node not in self._graph:
            raise KeyError(f"unknown node {node}")
        edges = list(self._graph.edges(node))
        if not edges:
            # Nothing to strip — the graph (and every cache) is unchanged.
            _obs.add("routing.cache_hit")
            return
        self._graph.remove_edges_from(edges)
        self._stripped.add(node)
        self._invalidate()

    def restore_node(self, node: int) -> None:
        """Bring a node back online, reconnecting edges from its position."""
        if not (0 <= node < len(self._positions)):
            raise KeyError(f"unknown node {node}")
        added = False
        for other in range(len(self._positions)):
            if other == node:
                continue
            if self._positions[node].distance_to(self._positions[other]) <= self.comm_range:
                if self._graph.degree(other) is not None:
                    self._graph.add_edge(node, other)
                    added = True
        self._stripped.discard(node)
        if added:
            self._invalidate()

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._positions)

    def position(self, node: int) -> Position:
        return self._positions[node]

    @property
    def positions(self) -> List[Position]:
        return list(self._positions)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def neighbors(self, node: int) -> List[int]:
        """Direct radio neighbours of ``node``, sorted for determinism."""
        return sorted(self._graph.neighbors(node))

    def is_connected(self) -> bool:
        if self.node_count == 0:
            return True
        return nx.is_connected(self._graph)

    def is_connected_subset(self, nodes: Sequence[int]) -> bool:
        """True when the induced subgraph over ``nodes`` is connected."""
        node_list = list(nodes)
        if len(node_list) <= 1:
            return True
        subgraph = self._graph.subgraph(node_list)
        return nx.is_connected(subgraph)

    def _compute_hop_matrix(self) -> np.ndarray:
        """All-pairs BFS hop counts via frontier/adjacency products.

        Hop counts are small integers, so the float32 matrix products are
        exact (frontier sums never approach 2²⁴) and the result is the
        same shortest-path-length matrix networkx's per-source BFS yields,
        at a fraction of the Python-loop cost.
        """
        n = self.node_count
        matrix = np.full((n, n), UNREACHABLE, dtype=np.int64)
        if n == 0:
            return matrix
        np.fill_diagonal(matrix, 0)
        if n == 1:
            return matrix
        adjacency = np.zeros((n, n), dtype=np.float32)
        for i, j in self._graph.edges:
            adjacency[i, j] = 1.0
            adjacency[j, i] = 1.0
        reached = np.eye(n, dtype=bool)
        frontier = reached.copy()
        level = 0
        while True:
            level += 1
            spread = (frontier.astype(np.float32) @ adjacency) > 0.0
            frontier = spread & ~reached
            if not frontier.any():
                break
            matrix[frontier] = level
            reached |= frontier
        return matrix

    def _hop_matrix_cached(self) -> np.ndarray:
        if self._hop_cache is None:
            matrix = self._compute_hop_matrix()
            matrix.flags.writeable = False
            self._hop_cache = matrix
            _obs.add("routing.recompute")
        else:
            _obs.add("routing.cache_hit")
        return self._hop_cache

    def hop_count(self, source: int, target: int) -> int:
        """Shortest hop-count between two nodes, or ``UNREACHABLE``."""
        if source == target:
            return 0
        return int(self._hop_matrix_cached()[source, target])

    def hop_matrix(self) -> np.ndarray:
        """Dense matrix of hop counts (``UNREACHABLE`` where disconnected).

        Cached per topology epoch and returned read-only; callers treat it
        as a value (the allocation layer converts to float anyway).
        """
        return self._hop_matrix_cached()

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """One shortest path (node list incl. endpoints), or None.

        Paths are cached per topology epoch; ties are broken deterministically
        by networkx's BFS order over sorted adjacency.
        """
        key = (source, target)
        if key in self._paths:
            return list(self._paths[key])
        try:
            path = nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        self._paths[key] = list(path)
        return list(path)

    def bfs_tree(self, source: int) -> Dict[int, int]:
        """Parent map of a BFS spanning tree rooted at ``source``.

        Used by the broadcast model: each reachable node receives a broadcast
        once, over its tree edge.  The root maps to itself.
        """
        parents = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return parents

    def euclidean_distance(self, source: int, target: int) -> float:
        return self._positions[source].distance_to(self._positions[target])

    def reachable_from(self, source: int) -> List[int]:
        """All nodes reachable from ``source`` (including itself), sorted."""
        return sorted(nx.node_connected_component(self._graph, source))

    def components(self) -> List[List[int]]:
        """Connected components, each sorted, largest first."""
        comps = [sorted(c) for c in nx.connected_components(self._graph)]
        return sorted(comps, key=lambda c: (-len(c), c))
