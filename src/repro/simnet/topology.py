"""Geometric network topology for pervasive edge environments.

The paper's simulation places nodes uniformly in a 300 m × 300 m field with a
70 m 802.11n communication range (Section VI).  Two nodes are neighbours when
their Euclidean distance is within the radio range (a unit-disk graph), and
multi-hop paths are shortest hop-count paths — the paper's chosen "distance"
for the Range-Distance Cost (Eq. 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

#: Field side length in metres (paper Section VI).
DEFAULT_FIELD_SIZE = 300.0

#: Radio communication range in metres (typical 802.11n, paper Section VI).
DEFAULT_COMM_RANGE = 70.0

#: Hop count reported for unreachable pairs.
UNREACHABLE = -1


@dataclass(frozen=True)
class Position:
    """A point in the 2-D field."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


def random_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float = DEFAULT_FIELD_SIZE,
) -> List[Position]:
    """Sample ``count`` uniform positions in a ``field_size`` square."""
    if count < 0:
        raise ValueError("count must be non-negative")
    coords = rng.uniform(0.0, field_size, size=(count, 2))
    return [Position(float(x), float(y)) for x, y in coords]


def connected_random_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float = DEFAULT_FIELD_SIZE,
    comm_range: float = DEFAULT_COMM_RANGE,
    max_attempts: int = 30,
) -> List[Position]:
    """Sample positions for a *connected* unit-disk graph.

    The paper's scenarios implicitly assume a connected network (every node
    eventually receives every block).  For dense settings a plain uniform
    sample is usually connected, so we rejection-sample first; for sparse
    settings (e.g. 10 nodes in 300×300 m with 70 m range the uniform graph
    is almost never connected) we fall back to sequential attachment: each
    node is sampled uniformly but resampled until it lands within radio
    range of an already-placed node.  That guarantees connectivity while
    keeping placements spread over the field.
    """
    for _ in range(max_attempts):
        positions = random_positions(count, rng, field_size)
        topology = Topology(positions, comm_range=comm_range)
        if topology.is_connected():
            return positions
    return _sequential_connected_positions(count, rng, field_size, comm_range)


def _sequential_connected_positions(
    count: int,
    rng: np.random.Generator,
    field_size: float,
    comm_range: float,
    max_resamples: int = 10_000,
) -> List[Position]:
    """Attachment sampling: every new node lands in range of a placed one."""
    if count == 0:
        return []
    positions = [Position(*map(float, rng.uniform(0.0, field_size, size=2)))]
    while len(positions) < count:
        for attempt in range(max_resamples):
            candidate = Position(*map(float, rng.uniform(0.0, field_size, size=2)))
            if any(candidate.distance_to(p) <= comm_range for p in positions):
                positions.append(candidate)
                break
        else:
            raise RuntimeError(
                "sequential placement failed; field too large for the radio range"
            )
    return positions


class Topology:
    """Unit-disk connectivity graph with cached hop-count distances.

    Node identifiers are the integer indices of the ``positions`` sequence.
    Rebuild (or call :meth:`update_positions`) whenever mobility moves nodes;
    hop-count tables are recomputed lazily.
    """

    def __init__(
        self,
        positions: Sequence[Position],
        comm_range: float = DEFAULT_COMM_RANGE,
    ):
        if comm_range <= 0:
            raise ValueError("communication range must be positive")
        self.comm_range = comm_range
        self._positions: List[Position] = list(positions)
        self._graph = nx.Graph()
        self._hops: Optional[Dict[int, Dict[int, int]]] = None
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        self._rebuild_graph()

    # -- construction --------------------------------------------------------

    def _rebuild_graph(self) -> None:
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self._positions)))
        for i in range(len(self._positions)):
            for j in range(i + 1, len(self._positions)):
                if self._positions[i].distance_to(self._positions[j]) <= self.comm_range:
                    graph.add_edge(i, j)
        self._graph = graph
        self._hops = None
        self._paths.clear()

    def update_positions(self, positions: Sequence[Position]) -> None:
        """Replace all node positions (mobility epoch) and invalidate caches."""
        if len(positions) != len(self._positions):
            raise ValueError("node count cannot change via update_positions")
        self._positions = list(positions)
        self._rebuild_graph()

    def remove_node(self, node: int) -> None:
        """Take a node offline (it keeps its index but loses all edges)."""
        if node not in self._graph:
            raise KeyError(f"unknown node {node}")
        self._graph.remove_edges_from(list(self._graph.edges(node)))
        self._hops = None
        self._paths.clear()

    def restore_node(self, node: int) -> None:
        """Bring a node back online, reconnecting edges from its position."""
        if not (0 <= node < len(self._positions)):
            raise KeyError(f"unknown node {node}")
        for other in range(len(self._positions)):
            if other == node:
                continue
            if self._positions[node].distance_to(self._positions[other]) <= self.comm_range:
                if self._graph.degree(other) is not None:
                    self._graph.add_edge(node, other)
        self._hops = None
        self._paths.clear()

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._positions)

    def position(self, node: int) -> Position:
        return self._positions[node]

    @property
    def positions(self) -> List[Position]:
        return list(self._positions)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def neighbors(self, node: int) -> List[int]:
        """Direct radio neighbours of ``node``, sorted for determinism."""
        return sorted(self._graph.neighbors(node))

    def is_connected(self) -> bool:
        if self.node_count == 0:
            return True
        return nx.is_connected(self._graph)

    def is_connected_subset(self, nodes: Sequence[int]) -> bool:
        """True when the induced subgraph over ``nodes`` is connected."""
        node_list = list(nodes)
        if len(node_list) <= 1:
            return True
        subgraph = self._graph.subgraph(node_list)
        return nx.is_connected(subgraph)

    def _hop_table(self) -> Dict[int, Dict[int, int]]:
        if self._hops is None:
            self._hops = {
                source: dict(lengths)
                for source, lengths in nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._hops

    def hop_count(self, source: int, target: int) -> int:
        """Shortest hop-count between two nodes, or ``UNREACHABLE``."""
        if source == target:
            return 0
        table = self._hop_table()
        return table.get(source, {}).get(target, UNREACHABLE)

    def hop_matrix(self) -> np.ndarray:
        """Dense matrix of hop counts (``UNREACHABLE`` where disconnected)."""
        n = self.node_count
        matrix = np.full((n, n), UNREACHABLE, dtype=np.int64)
        for source, lengths in self._hop_table().items():
            for target, hops in lengths.items():
                matrix[source, target] = hops
        return matrix

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """One shortest path (node list incl. endpoints), or None.

        Paths are cached per topology epoch; ties are broken deterministically
        by networkx's BFS order over sorted adjacency.
        """
        key = (source, target)
        if key in self._paths:
            return list(self._paths[key])
        try:
            path = nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        self._paths[key] = list(path)
        return list(path)

    def bfs_tree(self, source: int) -> Dict[int, int]:
        """Parent map of a BFS spanning tree rooted at ``source``.

        Used by the broadcast model: each reachable node receives a broadcast
        once, over its tree edge.  The root maps to itself.
        """
        parents = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return parents

    def euclidean_distance(self, source: int, target: int) -> float:
        return self._positions[source].distance_to(self._positions[target])

    def reachable_from(self, source: int) -> List[int]:
        """All nodes reachable from ``source`` (including itself), sorted."""
        return sorted(nx.node_connected_component(self._graph, source))

    def components(self) -> List[List[int]]:
        """Connected components, each sorted, largest first."""
        comps = [sorted(c) for c in nx.connected_components(self._graph)]
        return sorted(comps, key=lambda c: (-len(c), c))
