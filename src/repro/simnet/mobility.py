"""Range-bounded node mobility.

The paper sets "the mobility of the nodes is within 30 meters ranges"
(Section VI): each node has a home position and wanders within a disk of
radius ``range(i)`` around it.  The RDC (Eq. 2) adds both endpoints' ranges
to the hop distance precisely because a node may be anywhere in its disk.

:class:`RangeBoundedMobility` implements that model as a random-waypoint
process clipped to each node's disk (and to the field).  The simulation
advances mobility in epochs; each epoch resamples positions and the topology
is rebuilt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.simnet.topology import DEFAULT_FIELD_SIZE, Position, Topology

#: Paper's mobility range in metres (Section VI).
DEFAULT_MOBILITY_RANGE = 30.0


@dataclass(frozen=True)
class MobilityProfile:
    """Per-node mobility description: home position and wander radius."""

    home: Position
    wander_range: float

    def __post_init__(self) -> None:
        if self.wander_range < 0:
            raise ValueError("wander range must be non-negative")


def _clip(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


class RangeBoundedMobility:
    """Random waypoints within each node's disk around its home position.

    Parameters
    ----------
    profiles:
        One :class:`MobilityProfile` per node (index = node id).
    rng:
        Numpy generator owned by the simulation engine.
    field_size:
        Positions are clipped to ``[0, field_size]²`` after sampling.
    """

    def __init__(
        self,
        profiles: Sequence[MobilityProfile],
        rng: np.random.Generator,
        field_size: float = DEFAULT_FIELD_SIZE,
    ):
        self._profiles = list(profiles)
        self._rng = rng
        self._field_size = field_size
        self._current: List[Position] = [p.home for p in self._profiles]

    @classmethod
    def uniform(
        cls,
        homes: Sequence[Position],
        rng: np.random.Generator,
        wander_range: float = DEFAULT_MOBILITY_RANGE,
        field_size: float = DEFAULT_FIELD_SIZE,
    ) -> "RangeBoundedMobility":
        """All nodes share the same wander range (the paper's setting)."""
        profiles = [MobilityProfile(home=h, wander_range=wander_range) for h in homes]
        return cls(profiles, rng, field_size=field_size)

    @property
    def node_count(self) -> int:
        return len(self._profiles)

    def profile(self, node: int) -> MobilityProfile:
        return self._profiles[node]

    def wander_range(self, node: int) -> float:
        """The node's mobility range — the ``range(i)`` term of the RDC."""
        return self._profiles[node].wander_range

    def current_positions(self) -> List[Position]:
        return list(self._current)

    def _sample_in_disk(self, profile: MobilityProfile) -> Position:
        """Uniform sample in the wander disk, clipped to the field."""
        radius = profile.wander_range * math.sqrt(self._rng.uniform(0.0, 1.0))
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        x = _clip(profile.home.x + radius * math.cos(angle), 0.0, self._field_size)
        y = _clip(profile.home.y + radius * math.sin(angle), 0.0, self._field_size)
        return Position(x, y)

    def advance_epoch(self, topology: Optional[Topology] = None) -> List[Position]:
        """Resample every node's position; optionally refresh a topology.

        Returns the new position list.  If ``topology`` is given, it is
        updated in place (its hop-count caches are invalidated).
        """
        self._current = [self._sample_in_disk(p) for p in self._profiles]
        if topology is not None:
            topology.update_positions(self._current)
        return list(self._current)

    def reset_to_homes(self, topology: Optional[Topology] = None) -> List[Position]:
        """Snap every node back to its home position (always connected when
        homes were sampled connected)."""
        self._current = [p.home for p in self._profiles]
        if topology is not None:
            topology.update_positions(self._current)
        return list(self._current)

    def relocate_home(self, node: int, new_home: Position, new_range: Optional[float] = None) -> None:
        """Move a node's home (the paper: nodes broadcast new moving ranges).

        The node's current position snaps to the new home; callers should
        rebuild the topology and re-announce the range.
        """
        old = self._profiles[node]
        self._profiles[node] = MobilityProfile(
            home=new_home,
            wander_range=old.wander_range if new_range is None else new_range,
        )
        self._current[node] = new_home
