"""Discrete-event network simulation substrate.

Replaces the paper's Docker-container testbed with a deterministic
single-process simulator: an event engine, a geometric unit-disk topology
with hop-count routing, an 802.11-style channel model (10 ms/hop), mobility,
gossip, byte-level transmission accounting, and fault injection.
"""

from repro.simnet.channel import DEFAULT_BANDWIDTH, DEFAULT_HOP_DELAY, ChannelModel
from repro.simnet.engine import EventEngine, EventHandle, PeriodicTask
from repro.simnet.faults import ChurnEvent, ChurnInjector, PartitionInjector
from repro.simnet.gossip import GossipFabric
from repro.simnet.mobility import (
    DEFAULT_MOBILITY_RANGE,
    MobilityProfile,
    RangeBoundedMobility,
)
from repro.simnet.topology import (
    DEFAULT_COMM_RANGE,
    DEFAULT_FIELD_SIZE,
    UNREACHABLE,
    Position,
    Topology,
    connected_random_positions,
    random_positions,
)
from repro.simnet.trace import NodeTraffic, TransmissionTrace
from repro.simnet.transport import Network, SendReceipt

__all__ = [
    "EventEngine",
    "EventHandle",
    "PeriodicTask",
    "Position",
    "Topology",
    "random_positions",
    "connected_random_positions",
    "DEFAULT_FIELD_SIZE",
    "DEFAULT_COMM_RANGE",
    "UNREACHABLE",
    "MobilityProfile",
    "RangeBoundedMobility",
    "DEFAULT_MOBILITY_RANGE",
    "ChannelModel",
    "DEFAULT_HOP_DELAY",
    "DEFAULT_BANDWIDTH",
    "Network",
    "SendReceipt",
    "GossipFabric",
    "TransmissionTrace",
    "NodeTraffic",
    "ChurnInjector",
    "ChurnEvent",
    "PartitionInjector",
]
