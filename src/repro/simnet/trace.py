"""Transmission accounting.

Fig. 4(a) and Fig. 5(b) of the paper report *transmission overhead*: bytes
sent/received per node, broken down into data request/response traffic, data
dissemination (storing nodes proactively fetching from the producer), and
blockchain broadcast traffic.  :class:`TransmissionTrace` is the single sink
for all byte accounting in the simulator; every hop a message traverses adds
its size to the forwarding node's TX counter and the receiving node's RX
counter, exactly as a real radio would bill both ends of each link.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class NodeTraffic:
    """Per-node byte counters."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_messages: int = 0
    rx_messages: int = 0

    @property
    def total_bytes(self) -> int:
        return self.tx_bytes + self.rx_bytes


class TransmissionTrace:
    """Accumulates per-node and per-category traffic for one simulation run."""

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeTraffic] = defaultdict(NodeTraffic)
        self._categories: Dict[str, int] = defaultdict(int)
        self._category_messages: Dict[str, int] = defaultdict(int)
        self._hops_total = 0

    def record_hop(self, sender: int, receiver: int, size_bytes: int, category: str) -> None:
        """Bill one link-level transmission of ``size_bytes``.

        ``category`` labels the traffic class (e.g. ``"block_broadcast"``,
        ``"data_response"``) for the overhead breakdown.
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        tx = self._nodes[sender]
        rx = self._nodes[receiver]
        tx.tx_bytes += size_bytes
        tx.tx_messages += 1
        rx.rx_bytes += size_bytes
        rx.rx_messages += 1
        self._categories[category] += size_bytes
        self._category_messages[category] += 1
        self._hops_total += 1

    # -- queries ---------------------------------------------------------------

    def node(self, node: int) -> NodeTraffic:
        return self._nodes[node]

    def total_bytes(self) -> int:
        """Total link-level bytes (each hop counted once)."""
        return sum(self._categories.values())

    def total_messages(self) -> int:
        return self._hops_total

    def category_bytes(self, category: str) -> int:
        return self._categories[category]

    def categories(self) -> Dict[str, int]:
        return dict(self._categories)

    def category_messages(self) -> Dict[str, int]:
        return dict(self._category_messages)

    def per_node_bytes(self, node_ids: Iterable[int]) -> List[int]:
        """Total (tx+rx) bytes for each node id, in the given order."""
        return [self._nodes[n].total_bytes for n in node_ids]

    def average_node_bytes(self, node_count: int) -> float:
        """Average per-node traffic over the first ``node_count`` node ids.

        This is the paper's Fig. 4(a) metric ("the average transmission of
        each node").  Nodes that never transmitted still count in the mean.
        """
        if node_count <= 0:
            raise ValueError("node count must be positive")
        return sum(self._nodes[n].total_bytes for n in range(node_count)) / node_count

    def snapshot(self) -> Dict[str, object]:
        """A serialisable summary for experiment reports."""
        return {
            "total_bytes": self.total_bytes(),
            "total_messages": self.total_messages(),
            "categories": self.categories(),
        }

    def reset(self) -> None:
        self._nodes.clear()
        self._categories.clear()
        self._category_messages.clear()
        self._hops_total = 0
