"""Energy substrate: battery model and per-operation energy accounting.

Substitutes the paper's Samsung Galaxy S8 battery experiment (Fig. 6) with
an explicit, calibrated model — see EXPERIMENTS.md for the calibration.
"""

from repro.energy.battery import Battery
from repro.energy.meter import EnergyMeter
from repro.energy.profile import (
    DEFAULT_POS_TICK_ENERGY,
    DEFAULT_POW_HASH_ENERGY,
    GALAXY_S8_BATTERY_JOULES,
    GALAXY_S8_PROFILE,
    EnergyProfile,
)

__all__ = [
    "Battery",
    "EnergyMeter",
    "EnergyProfile",
    "GALAXY_S8_PROFILE",
    "GALAXY_S8_BATTERY_JOULES",
    "DEFAULT_POW_HASH_ENERGY",
    "DEFAULT_POS_TICK_ENERGY",
]
