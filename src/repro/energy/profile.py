"""Per-operation energy costs for edge devices.

Fig. 6 of the paper measures battery drain of PoW vs PoS mining on a
Samsung Galaxy S8.  We replace the handset with an explicit energy model:
every operation a miner performs (hash attempts, signatures, radio traffic,
idle bookkeeping) is billed to a battery.

Calibration (documented in EXPERIMENTS.md): the paper reports that at a
25-second average block time, PoW mines ≈4 blocks per 1 % of battery while
PoS mines ≈11 blocks per 1 %.  A Galaxy S8 battery holds 3000 mAh at a
nominal 3.85 V ≈ 41.6 kJ.  PoW at difficulty 4 (hex zeros) needs 16⁴ = 65536
expected hashes per block; to burn 1 % ≈ 416 J over 4 blocks the device must
spend ≈104 J per block → ≈1.6 mJ per hash attempt, which matches a phone
CPU running flat-out (~5 W) hashing ~3 kH/s in a JS runtime (the paper's
react-native implementation).  PoS performs one hash plus bookkeeping per
second; burning 1 % over 11 blocks × 25 s = 275 s → ≈1.5 J/s ≈ the ~1.4 W
draw of an active-screen idle phone.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Galaxy S8 battery: 3000 mAh × 3.85 V × 3.6 = 41 580 J.
GALAXY_S8_BATTERY_JOULES = 41_580.0

#: Energy per PoW hash attempt in joules (react-native JS hashing; see above).
DEFAULT_POW_HASH_ENERGY = 1.6e-3

#: PoS per-second bookkeeping power in watts (hash + compare + timers on an
#: otherwise-idle device).
DEFAULT_POS_TICK_ENERGY = 1.5

#: Energy per ECDSA sign/verify (negligible next to mining, but non-zero).
DEFAULT_SIGNATURE_ENERGY = 5e-3

#: Radio energy per byte, transmit and receive (802.11n, ~0.1 µJ/byte order).
DEFAULT_TX_ENERGY_PER_BYTE = 1.2e-7
DEFAULT_RX_ENERGY_PER_BYTE = 1.0e-7

#: Baseline idle power in watts when the device does nothing at all.
DEFAULT_IDLE_POWER = 0.0


@dataclass(frozen=True)
class EnergyProfile:
    """Immutable per-operation energy costs (joules unless noted)."""

    battery_capacity_joules: float = GALAXY_S8_BATTERY_JOULES
    pow_hash_energy: float = DEFAULT_POW_HASH_ENERGY
    pos_tick_energy: float = DEFAULT_POS_TICK_ENERGY
    signature_energy: float = DEFAULT_SIGNATURE_ENERGY
    tx_energy_per_byte: float = DEFAULT_TX_ENERGY_PER_BYTE
    rx_energy_per_byte: float = DEFAULT_RX_ENERGY_PER_BYTE
    idle_power: float = DEFAULT_IDLE_POWER

    def __post_init__(self) -> None:
        for name in (
            "battery_capacity_joules",
            "pow_hash_energy",
            "pos_tick_energy",
            "signature_energy",
            "tx_energy_per_byte",
            "rx_energy_per_byte",
            "idle_power",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.battery_capacity_joules <= 0:
            raise ValueError("battery capacity must be positive")

    def pow_mining_energy(self, hash_attempts: int) -> float:
        """Energy for a PoW mining run of ``hash_attempts`` attempts."""
        if hash_attempts < 0:
            raise ValueError("hash attempts must be non-negative")
        return hash_attempts * self.pow_hash_energy

    def pos_mining_energy(self, seconds: float) -> float:
        """Energy for ``seconds`` of PoS target polling (one tick/second)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return seconds * self.pos_tick_energy

    def radio_energy(self, tx_bytes: int, rx_bytes: int) -> float:
        if tx_bytes < 0 or rx_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        return tx_bytes * self.tx_energy_per_byte + rx_bytes * self.rx_energy_per_byte


#: The profile calibrated against the paper's Fig. 6 slopes.
GALAXY_S8_PROFILE = EnergyProfile()
