"""Energy metering: bills protocol operations to a device battery.

:class:`EnergyMeter` is the bridge between the protocol layer and the
energy model.  Nodes call the ``charge_*`` methods as they hash, sign, and
transmit; the meter keeps a per-category ledger (mirroring the paper's
breakdown of where PoW's energy goes) and drains the battery.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.energy.battery import Battery
from repro.energy.profile import EnergyProfile, GALAXY_S8_PROFILE


class EnergyMeter:
    """Per-device energy ledger backed by a battery."""

    def __init__(
        self,
        profile: Optional[EnergyProfile] = None,
        battery: Optional[Battery] = None,
    ):
        self.profile = profile if profile is not None else GALAXY_S8_PROFILE
        self.battery = battery if battery is not None else Battery(
            capacity_joules=self.profile.battery_capacity_joules
        )
        self._ledger: Dict[str, float] = defaultdict(float)

    # -- charging operations -----------------------------------------------------

    def charge_pow_hashes(self, attempts: int) -> float:
        """Bill a PoW brute-force run of ``attempts`` hash attempts."""
        return self._charge("pow_mining", self.profile.pow_mining_energy(attempts))

    def charge_pos_ticks(self, seconds: float) -> float:
        """Bill ``seconds`` of PoS per-second target polling."""
        return self._charge("pos_mining", self.profile.pos_mining_energy(seconds))

    def charge_signature(self, count: int = 1) -> float:
        """Bill ``count`` ECDSA sign/verify operations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._charge("crypto", count * self.profile.signature_energy)

    def charge_radio(self, tx_bytes: int = 0, rx_bytes: int = 0) -> float:
        """Bill radio transmit/receive traffic."""
        return self._charge("radio", self.profile.radio_energy(tx_bytes, rx_bytes))

    def charge_idle(self, seconds: float) -> float:
        """Bill baseline idle draw for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self._charge("idle", seconds * self.profile.idle_power)

    def _charge(self, category: str, joules: float) -> float:
        drained = self.battery.drain(joules)
        self._ledger[category] += drained
        return drained

    # -- reporting -----------------------------------------------------------------

    @property
    def remaining_percent(self) -> float:
        return self.battery.remaining_percent

    @property
    def depleted(self) -> bool:
        return self.battery.depleted

    def consumed_by(self, category: str) -> float:
        return self._ledger[category]

    def ledger(self) -> Dict[str, float]:
        return dict(self._ledger)

    def total_consumed(self) -> float:
        return sum(self._ledger.values())
