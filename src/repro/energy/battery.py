"""Battery model: a joule budget with percent-level reporting.

The Fig. 6 experiment reports *remaining battery percent* after each mined
block; :class:`Battery` tracks exactly that.  Draining past empty clamps at
zero and flips :attr:`Battery.depleted` — miners stop when their battery
dies, which the endurance benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.profile import GALAXY_S8_BATTERY_JOULES


@dataclass
class Battery:
    """A device battery measured in joules."""

    capacity_joules: float = GALAXY_S8_BATTERY_JOULES
    remaining_joules: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_joules <= 0:
            raise ValueError("capacity must be positive")
        if self.remaining_joules < 0:
            self.remaining_joules = self.capacity_joules
        if self.remaining_joules > self.capacity_joules:
            raise ValueError("remaining charge cannot exceed capacity")

    @property
    def remaining_percent(self) -> float:
        """Remaining charge as a percentage of capacity (0–100)."""
        return 100.0 * self.remaining_joules / self.capacity_joules

    @property
    def consumed_joules(self) -> float:
        return self.capacity_joules - self.remaining_joules

    @property
    def depleted(self) -> bool:
        return self.remaining_joules <= 0.0

    def drain(self, joules: float) -> float:
        """Consume energy; returns the amount actually drained (clamped)."""
        if joules < 0:
            raise ValueError("cannot drain negative energy")
        drained = min(joules, self.remaining_joules)
        self.remaining_joules -= drained
        return drained

    def recharge_full(self) -> None:
        """Back to 100 % (the paper fully charges the phone before each test)."""
        self.remaining_joules = self.capacity_joules
