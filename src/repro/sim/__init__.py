"""Experiment harness: cluster builder, runner, and per-figure scenarios."""

from repro.sim.cluster import EdgeCluster, build_cluster
from repro.sim.runner import ChurnSpec, ExperimentResult, ExperimentSpec, run_experiment
from repro.sim.scenarios import (
    BENCH_DURATION_MINUTES,
    PAPER_DATA_RATES,
    PAPER_NODE_COUNTS,
    churn_scenario,
    data_amount_scenario,
    fdc_weight_scenario,
    mining_only_scenario,
    placement_scenario,
)

__all__ = [
    "EdgeCluster",
    "build_cluster",
    "ExperimentSpec",
    "ExperimentResult",
    "ChurnSpec",
    "run_experiment",
    "data_amount_scenario",
    "placement_scenario",
    "churn_scenario",
    "mining_only_scenario",
    "fdc_weight_scenario",
    "PAPER_NODE_COUNTS",
    "PAPER_DATA_RATES",
    "BENCH_DURATION_MINUTES",
]
