"""Named scenario builders for the paper's figures (see DESIGN.md §4).

Each function returns the :class:`~repro.sim.runner.ExperimentSpec`(s) for
one figure panel.  The benchmarks call these so the exact parameters of
each reproduced experiment live in one place.

The default sweep durations are shorter than the paper's 500 minutes so a
full benchmark suite completes in CI time; pass ``full_scale=True`` to use
the paper's durations.  Shape conclusions (who wins, by what factor) are
duration-stable — the scale tests in ``tests/integration`` check that.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.core.config import PAPER_CONFIG, SystemConfig
from repro.sim.runner import ChurnSpec, ExperimentSpec

#: Node counts of the Fig. 4 / Fig. 5 sweeps.
PAPER_NODE_COUNTS: Tuple[int, ...] = (10, 20, 30, 40, 50)

#: Data generation rates (items/minute) of the Fig. 4 sweep.
PAPER_DATA_RATES: Tuple[float, ...] = (1.0, 2.0, 3.0)

#: Bench-scale run length in minutes (paper: 500).
BENCH_DURATION_MINUTES = 60.0


def data_amount_scenario(
    node_count: int,
    items_per_minute: float,
    seed: int = 0,
    full_scale: bool = False,
    base_config: SystemConfig = PAPER_CONFIG,
) -> ExperimentSpec:
    """One cell of the Fig. 4 sweep (node count × data rate)."""
    config = replace(base_config, data_items_per_minute=items_per_minute)
    return ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=None if full_scale else BENCH_DURATION_MINUTES,
    )


def placement_scenario(
    node_count: int,
    solver: str,
    seed: int = 0,
    full_scale: bool = False,
    base_config: SystemConfig = PAPER_CONFIG,
) -> ExperimentSpec:
    """One arm of the Fig. 5 comparison (optimal vs random store).

    Fig. 5 fixes the data rate at 1 item/minute and varies the node count;
    ``solver`` is ``"greedy"`` for the paper's optimal placement and
    ``"random"`` for the replica-matched naive baseline.
    """
    config = replace(
        base_config, data_items_per_minute=1.0, placement_solver=solver
    )
    return ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=None if full_scale else BENCH_DURATION_MINUTES,
    )


def churn_scenario(
    node_count: int = 30,
    seed: int = 0,
    recent_cache_enabled: bool = True,
    duration_minutes: float = BENCH_DURATION_MINUTES,
    base_config: SystemConfig = PAPER_CONFIG,
) -> ExperimentSpec:
    """Churn-heavy scenario for the recent-block-allocation ablation.

    With the cache disabled (capacity 0 and no extra assignments), missing
    blocks are only recoverable from their permanent storing nodes, so
    recovery takes more hops and more recovery traffic.
    """
    config = replace(
        base_config,
        data_items_per_minute=1.0,
        recent_cache_capacity=base_config.recent_cache_capacity
        if recent_cache_enabled
        else 0,
    )
    return ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=duration_minutes,
        churn=ChurnSpec(node_fraction=0.3, events_per_node=2.0, mean_downtime_seconds=150.0),
    )


def mining_only_scenario(
    node_count: int,
    expected_interval: float = 60.0,
    duration_minutes: float = BENCH_DURATION_MINUTES,
    seed: int = 0,
    base_config: SystemConfig = PAPER_CONFIG,
) -> ExperimentSpec:
    """No data workload: isolates the PoS block-interval behaviour."""
    config = replace(
        base_config,
        data_items_per_minute=0.0,
        expected_block_interval=expected_interval,
    )
    return ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=duration_minutes,
        mobility_epoch_minutes=0.0,
    )


def fdc_weight_scenario(
    fdc_weight: float,
    node_count: int = 30,
    seed: int = 0,
    duration_minutes: float = BENCH_DURATION_MINUTES,
    base_config: SystemConfig = PAPER_CONFIG,
) -> ExperimentSpec:
    """Ablation over the FDC:RDC scaling factor A (paper fixes A = 1000)."""
    config = replace(
        base_config, fdc_weight=fdc_weight, data_items_per_minute=1.0
    )
    return ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=duration_minutes,
    )
