"""Experiment runner: drives a cluster through a full workload.

Reproduces the paper's Section VI methodology end to end: Poisson data
production, 10 %-of-nodes request patterns, periodic mobility epochs,
optional churn windows, then collects the figure-level metrics.

The runner is split into three phases so the persistence subsystem
(:mod:`repro.persist`) can checkpoint and resume a run mid-flight:

* :func:`build_runtime` wires the cluster, schedules the whole workload,
  and returns a :class:`SimRuntime` — a fully *picklable* object graph
  (no closures or lambdas end up on the event queue, only bound methods
  of module-level classes), so a snapshot can capture the pending event
  queue along with all protocol state;
* ``runtime.engine.run_until(...)`` advances the simulation — in one go,
  or in resumable segments;
* :func:`collect_metrics` derives the figure-level :class:`RunMetrics`
  from a finished runtime.

:func:`run_experiment` composes the three for the common one-shot case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.metrics.collector import RunMetrics, collect_run_metrics
from repro.obs import runtime as _obs
from repro.sim.cluster import EdgeCluster, build_cluster
from repro.simnet.faults import ChurnInjector
from repro.workloads.generator import ProductionEvent, generate_production_schedule
from repro.workloads.requests import plan_requests

#: A request that beats its metadata onto the chain retries this often.
_REQUEST_RETRY_SECONDS = 60.0

#: ... at most this many times before counting as failed.
_REQUEST_MAX_RETRIES = 5


@dataclass(frozen=True)
class ChurnSpec:
    """Random disconnection windows for a fraction of nodes."""

    node_fraction: float = 0.2
    events_per_node: float = 2.0
    mean_downtime_seconds: float = 120.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.node_fraction <= 1.0):
            raise ValueError("node fraction must be in [0, 1]")


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one run."""

    node_count: int
    config: SystemConfig
    seed: int = 0
    duration_minutes: Optional[float] = None  # default: config.simulation_minutes
    mobility_epoch_minutes: float = 10.0  # 0 disables mobility resampling
    churn: Optional[ChurnSpec] = None
    #: node id → EdgeNode subclass, for planting adversaries
    #: (e.g. repro.core.adversary.DenyingNode) among honest nodes.
    node_classes: Optional[Dict[int, type]] = None

    @property
    def duration_seconds(self) -> float:
        minutes = (
            self.duration_minutes
            if self.duration_minutes is not None
            else self.config.simulation_minutes
        )
        return minutes * 60.0


@dataclass
class ExperimentResult:
    """The run's metrics plus the cluster for deeper inspection."""

    spec: ExperimentSpec
    metrics: RunMetrics
    cluster: EdgeCluster


class _RequestDriver:
    """Schedules a single data request, retrying until metadata lands on-chain."""

    def __init__(self, cluster: EdgeCluster):
        self.cluster = cluster

    def schedule(self, requester: int, data_id: str, when: float) -> None:
        self.cluster.engine.call_at(when, self._fire, requester, data_id, 0)

    def _fire(self, requester: int, data_id: str, attempt: int) -> None:
        node = self.cluster.nodes[requester]
        if not node.online:
            return  # disconnected requesters skip (they have no radio)
        if node.chain.metadata_of(data_id) is None:
            if attempt < _REQUEST_MAX_RETRIES:
                self.cluster.engine.schedule(
                    _REQUEST_RETRY_SECONDS, self._fire, requester, data_id, attempt + 1
                )
            else:
                node.counters.data_requests_failed += 1
            return
        node.request_data(data_id)


class _ProductionDriver:
    """Fires scheduled data productions and fans out the request pattern.

    A module-level class (not a closure) so pending production events on
    the engine queue pickle cleanly into snapshots.
    """

    def __init__(
        self,
        cluster: EdgeCluster,
        spec: ExperimentSpec,
        requests: _RequestDriver,
        rng: Optional[np.random.Generator] = None,
    ):
        self.cluster = cluster
        self.spec = spec
        self.requests = requests
        #: Requester-sampling randomness; ``None`` keeps the historical
        #: behaviour of drawing from the engine's shared stream, federated
        #: runs pass each cluster its own generator.
        self.rng = rng

    def produce(self, event: ProductionEvent) -> None:
        node = self.cluster.nodes[event.producer]
        if not node.online:
            return
        metadata = node.produce_data(
            data_type=event.data_type,
            location=event.location,
            properties=event.properties,
        )
        plan = plan_requests(
            node_count=self.spec.node_count,
            producer=event.producer,
            production_time=self.cluster.engine.now,
            requester_fraction=self.spec.config.requester_fraction,
            rng=self.rng if self.rng is not None else self.cluster.engine.np_rng,
        )
        for requester, when in zip(plan.requesters, plan.times):
            self.requests.schedule(requester, metadata.data_id, when)


class _MobilityDriver:
    """Periodic mobility epochs, self-rescheduling until the run ends."""

    def __init__(self, cluster: EdgeCluster, period: float, duration: float):
        self.cluster = cluster
        self.period = period
        self.duration = duration

    def start(self) -> None:
        self.cluster.engine.schedule(self.period, self.tick)

    def tick(self) -> None:
        self.cluster.advance_mobility_epoch()
        if self.cluster.engine.now + self.period < self.duration:
            self.cluster.engine.schedule(self.period, self.tick)


class _ReconnectHook:
    """Picklable churn ``on_up`` callback: restart the node's protocol."""

    def __init__(self, cluster: EdgeCluster):
        self.cluster = cluster

    def __call__(self, node: int) -> None:
        self.cluster.nodes[node].on_reconnect()


@dataclass
class SimRuntime:
    """A fully wired, ready-to-run (and picklable) simulation.

    Everything a run needs — cluster, drivers, and the engine's pending
    event queue they populate — hangs off this one object, which is what
    :mod:`repro.persist.snapshot` serialises for crash recovery.
    """

    spec: ExperimentSpec
    cluster: EdgeCluster
    production: _ProductionDriver
    requests: _RequestDriver
    mobility: Optional[_MobilityDriver] = None
    churn: Optional[ChurnInjector] = None
    #: Attached by repro.persist when the run is durable; pickled with the
    #: runtime so a restored run keeps journaling from where it left off.
    persist_task: Optional[object] = None

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def finished(self) -> bool:
        return self.engine.now >= self.spec.duration_seconds


def build_runtime(spec: ExperimentSpec) -> SimRuntime:
    """Build the cluster, schedule the full workload, and arm mining."""
    with _obs.span(
        "run.build", "run", nodes=spec.node_count, seed=spec.seed
    ):
        runtime = _build_runtime(spec)
    # The tracer (process-global, never pickled) follows the newest
    # engine's clock so spans carry simulated time too; the timeline
    # probe, if armed, follows the newest cluster.
    _obs.set_sim_clock(runtime.engine.clock_reader())
    _obs.attach_runtime(runtime)
    return runtime


def attach_workload(
    cluster: EdgeCluster,
    spec: ExperimentSpec,
    rng: Optional[np.random.Generator] = None,
    start_at: float = 0.0,
) -> Tuple[_ProductionDriver, _RequestDriver]:
    """Generate and schedule the Poisson production + request workload.

    ``rng`` (default: the cluster engine's stream) sources both the
    production schedule and the per-item requester sampling; ``start_at``
    offsets every production so federated runs can hold the workload back
    until membership formation has converged.  Returns the two drivers so
    callers can hang them off their runtime for snapshotting.
    """
    engine = cluster.engine
    workload_rng = rng if rng is not None else engine.np_rng
    schedule = generate_production_schedule(
        node_count=spec.node_count,
        items_per_minute=spec.config.data_items_per_minute,
        duration_seconds=spec.duration_seconds - start_at,
        rng=workload_rng,
    )
    request_driver = _RequestDriver(cluster)
    production = _ProductionDriver(cluster, spec, request_driver, rng=rng)
    # Retained so the federation layer can precompute the deterministic
    # data ids this workload will mint (data_id_for needs only producer
    # account + sequence) when planning cross-cluster lookups.
    production.schedule = tuple(schedule)
    for event in schedule:
        engine.call_at(start_at + event.time, production.produce, event)
    return production, request_driver


def _build_runtime(spec: ExperimentSpec) -> SimRuntime:
    cluster = build_cluster(
        spec.node_count, spec.config, seed=spec.seed, node_classes=spec.node_classes
    )
    engine = cluster.engine
    duration = spec.duration_seconds

    # --- workload: production + requests -------------------------------------
    production, request_driver = attach_workload(cluster, spec)

    # --- mobility epochs -------------------------------------------------------
    mobility: Optional[_MobilityDriver] = None
    if spec.mobility_epoch_minutes > 0:
        mobility = _MobilityDriver(
            cluster, spec.mobility_epoch_minutes * 60.0, duration
        )
        mobility.start()

    # --- churn -------------------------------------------------------------------
    injector: Optional[ChurnInjector] = None
    if spec.churn is not None:
        churned_count = int(round(spec.churn.node_fraction * spec.node_count))
        churned_nodes = list(
            engine.np_rng.choice(spec.node_count, size=churned_count, replace=False)
        )
        injector = ChurnInjector(engine, cluster.network, on_up=_ReconnectHook(cluster))
        injector.plan_random(
            node_ids=[int(n) for n in churned_nodes],
            horizon=duration * 0.9,
            mean_downtime=spec.churn.mean_downtime_seconds,
            events_per_node=spec.churn.events_per_node,
        )

    cluster.start()
    return SimRuntime(
        spec=spec,
        cluster=cluster,
        production=production,
        requests=request_driver,
        mobility=mobility,
        churn=injector,
    )


def collect_metrics(runtime: SimRuntime) -> RunMetrics:
    """Derive the figure-level metrics from a finished runtime."""
    with _obs.span("run.collect", "run"):
        return _collect_metrics(runtime)


def _collect_metrics(runtime: SimRuntime) -> RunMetrics:
    cluster = runtime.cluster
    duration = runtime.spec.duration_seconds
    reference = cluster.longest_chain_node()
    # Interval metrics walk the retained suffix above the *policy* horizon
    # — a pure function of config and height — not the node's actual prune
    # floor, which a durability layer may hold back.  Every run mode of
    # the same seed therefore reports identical intervals.
    from repro.lifecycle.spec import retention_horizon

    metric_floor = retention_horizon(reference.chain.config, reference.chain.height)
    block_timestamps = [
        block.timestamp
        for block in reference.chain.blocks
        if block.index >= metric_floor
    ]
    delivery_times: List[float] = []
    recovery_durations: List[float] = []
    blocks_mined: Dict[int, int] = {}
    failed = 0
    produced = 0
    storage_used = []
    for node_id in cluster.node_ids:
        node = cluster.nodes[node_id]
        delivery_times.extend(node.delivery_times)
        recovery_durations.extend(node.sync.completed_durations)
        blocks_mined[node_id] = node.counters.blocks_mined
        failed += node.counters.data_requests_failed
        produced += node.counters.data_produced
        storage_used.append(node.storage.used_slots())

    return collect_run_metrics(
        node_count=runtime.spec.node_count,
        duration_seconds=duration,
        trace=cluster.network.trace,
        storage_used=storage_used,
        delivery_times=delivery_times,
        failed_requests=failed,
        block_timestamps=block_timestamps,
        blocks_mined=blocks_mined,
        recovery_durations=recovery_durations,
        data_items_produced=produced,
        tip_height=reference.chain.height,
    )


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Build, load, run, and measure one experiment."""
    runtime = build_runtime(spec)
    with _obs.span(
        "run.simulate", "run", duration_seconds=spec.duration_seconds
    ):
        runtime.engine.run_until(spec.duration_seconds)
    metrics = collect_metrics(runtime)
    return ExperimentResult(spec=spec, metrics=metrics, cluster=runtime.cluster)
