"""Experiment runner: drives a cluster through a full workload.

Reproduces the paper's Section VI methodology end to end: Poisson data
production, 10 %-of-nodes request patterns, periodic mobility epochs,
optional churn windows, then collects the figure-level metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.metrics.collector import RunMetrics, collect_run_metrics
from repro.sim.cluster import EdgeCluster, build_cluster
from repro.simnet.faults import ChurnInjector
from repro.workloads.generator import ProductionEvent, generate_production_schedule
from repro.workloads.requests import plan_requests

#: A request that beats its metadata onto the chain retries this often.
_REQUEST_RETRY_SECONDS = 60.0

#: ... at most this many times before counting as failed.
_REQUEST_MAX_RETRIES = 5


@dataclass(frozen=True)
class ChurnSpec:
    """Random disconnection windows for a fraction of nodes."""

    node_fraction: float = 0.2
    events_per_node: float = 2.0
    mean_downtime_seconds: float = 120.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.node_fraction <= 1.0):
            raise ValueError("node fraction must be in [0, 1]")


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one run."""

    node_count: int
    config: SystemConfig
    seed: int = 0
    duration_minutes: Optional[float] = None  # default: config.simulation_minutes
    mobility_epoch_minutes: float = 10.0  # 0 disables mobility resampling
    churn: Optional[ChurnSpec] = None
    #: node id → EdgeNode subclass, for planting adversaries
    #: (e.g. repro.core.adversary.DenyingNode) among honest nodes.
    node_classes: Optional[Dict[int, type]] = None

    @property
    def duration_seconds(self) -> float:
        minutes = (
            self.duration_minutes
            if self.duration_minutes is not None
            else self.config.simulation_minutes
        )
        return minutes * 60.0


@dataclass
class ExperimentResult:
    """The run's metrics plus the cluster for deeper inspection."""

    spec: ExperimentSpec
    metrics: RunMetrics
    cluster: EdgeCluster


class _RequestDriver:
    """Schedules a single data request, retrying until metadata lands on-chain."""

    def __init__(self, cluster: EdgeCluster):
        self.cluster = cluster

    def schedule(self, requester: int, data_id: str, when: float) -> None:
        self.cluster.engine.call_at(when, self._fire, requester, data_id, 0)

    def _fire(self, requester: int, data_id: str, attempt: int) -> None:
        node = self.cluster.nodes[requester]
        if not node.online:
            return  # disconnected requesters skip (they have no radio)
        if node.chain.metadata_of(data_id) is None:
            if attempt < _REQUEST_MAX_RETRIES:
                self.cluster.engine.schedule(
                    _REQUEST_RETRY_SECONDS, self._fire, requester, data_id, attempt + 1
                )
            else:
                node.counters.data_requests_failed += 1
            return
        node.request_data(data_id)


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Build, load, run, and measure one experiment."""
    cluster = build_cluster(
        spec.node_count, spec.config, seed=spec.seed, node_classes=spec.node_classes
    )
    engine = cluster.engine
    duration = spec.duration_seconds

    # --- workload: production + requests -------------------------------------
    schedule = generate_production_schedule(
        node_count=spec.node_count,
        items_per_minute=spec.config.data_items_per_minute,
        duration_seconds=duration,
        rng=engine.np_rng,
    )
    request_driver = _RequestDriver(cluster)

    def produce(event: ProductionEvent) -> None:
        node = cluster.nodes[event.producer]
        if not node.online:
            return
        metadata = node.produce_data(
            data_type=event.data_type,
            location=event.location,
            properties=event.properties,
        )
        plan = plan_requests(
            node_count=spec.node_count,
            producer=event.producer,
            production_time=engine.now,
            requester_fraction=spec.config.requester_fraction,
            rng=engine.np_rng,
        )
        for requester, when in zip(plan.requesters, plan.times):
            request_driver.schedule(requester, metadata.data_id, when)

    for event in schedule:
        engine.call_at(event.time, produce, event)

    # --- mobility epochs -------------------------------------------------------
    if spec.mobility_epoch_minutes > 0:
        period = spec.mobility_epoch_minutes * 60.0

        def mobility_tick() -> None:
            cluster.advance_mobility_epoch()
            if engine.now + period < duration:
                engine.schedule(period, mobility_tick)

        engine.schedule(period, mobility_tick)

    # --- churn -------------------------------------------------------------------
    if spec.churn is not None:
        churned_count = int(round(spec.churn.node_fraction * spec.node_count))
        churned_nodes = list(
            engine.np_rng.choice(spec.node_count, size=churned_count, replace=False)
        )
        injector = ChurnInjector(
            engine,
            cluster.network,
            on_up=lambda node: cluster.nodes[node].on_reconnect(),
        )
        injector.plan_random(
            node_ids=[int(n) for n in churned_nodes],
            horizon=duration * 0.9,
            mean_downtime=spec.churn.mean_downtime_seconds,
            events_per_node=spec.churn.events_per_node,
        )

    # --- run -------------------------------------------------------------------------
    cluster.start()
    engine.run_until(duration)

    # --- measure ----------------------------------------------------------------------
    reference = cluster.longest_chain_node()
    block_timestamps = [block.timestamp for block in reference.chain.blocks]
    delivery_times: List[float] = []
    recovery_durations: List[float] = []
    blocks_mined: Dict[int, int] = {}
    failed = 0
    produced = 0
    storage_used = []
    for node_id in cluster.node_ids:
        node = cluster.nodes[node_id]
        delivery_times.extend(node.delivery_times)
        recovery_durations.extend(node.sync.completed_durations)
        blocks_mined[node_id] = node.counters.blocks_mined
        failed += node.counters.data_requests_failed
        produced += node.counters.data_produced
        storage_used.append(node.storage.used_slots())

    metrics = collect_run_metrics(
        node_count=spec.node_count,
        duration_seconds=duration,
        trace=cluster.network.trace,
        storage_used=storage_used,
        delivery_times=delivery_times,
        failed_requests=failed,
        block_timestamps=block_timestamps,
        blocks_mined=blocks_mined,
        recovery_durations=recovery_durations,
        data_items_produced=produced,
    )
    return ExperimentResult(spec=spec, metrics=metrics, cluster=cluster)
