"""Cluster builder: a complete edge blockchain deployment in one object.

Wires together everything a run needs — event engine, connected geometric
topology, mobility, transport with byte accounting, allocation engine,
deterministic accounts, and one :class:`~repro.core.node.EdgeNode` per
device — using the paper's parameters from a
:class:`~repro.core.config.SystemConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.account import Account
from repro.core.allocation import AllocationEngine
from repro.core.config import SystemConfig
from repro.core.node import EdgeNode
from repro.energy.meter import EnergyMeter
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.mobility import RangeBoundedMobility
from repro.simnet.topology import Topology, connected_random_positions
from repro.simnet.transport import Network


@dataclass
class EdgeCluster:
    """A fully wired simulation cluster."""

    config: SystemConfig
    engine: EventEngine
    topology: Topology
    mobility: RangeBoundedMobility
    network: Network
    allocator: AllocationEngine
    accounts: Dict[int, Account]
    nodes: Dict[int, EdgeNode]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.nodes.keys())

    def start(self) -> None:
        """Arm every node's first mining schedule."""
        for node in self.nodes.values():
            node.start()

    def advance_mobility_epoch(self, max_resamples: int = 20) -> None:
        """Resample node positions and refresh the topology.

        Connectivity-preserving: positions are resampled (bounded tries)
        until the *online* nodes still form one component, falling back to
        the last sample otherwise.  Mobility thereby changes hop distances
        — exercising the RDC's range terms — without hard partitions, which
        the paper's testbed (Docker sockets) never exhibited; real
        disconnections are injected explicitly by the churn scenarios.
        """
        online = self.network.online_nodes()
        for _ in range(max_resamples):
            self.mobility.advance_epoch(self.topology)
            self.network.reapply_offline()
            if self.topology.is_connected_subset(online):
                return
        # No connected sample found (fragile bridge in the home layout):
        # snap back to the home positions, which are connected by
        # construction.  Nodes simply spent this epoch near home.
        self.mobility.reset_to_homes(self.topology)
        self.network.reapply_offline()

    def longest_chain_node(self) -> EdgeNode:
        """The node holding the longest chain (metric reference chain)."""
        return max(self.nodes.values(), key=lambda n: n.chain.height)


def build_cluster(
    node_count: int,
    config: SystemConfig,
    seed: int = 0,
    with_energy_meters: bool = False,
    node_classes: Optional[Dict[int, type]] = None,
    engine: Optional[EventEngine] = None,
    rng: Optional[np.random.Generator] = None,
) -> EdgeCluster:
    """Build a connected cluster of ``node_count`` edge devices.

    Accounts are derived deterministically from ``seed`` so repeated runs
    produce identical identities, hits, and therefore identical chains.

    ``node_classes`` maps node ids to :class:`EdgeNode` subclasses —
    used by the Byzantine tests to plant adversaries (e.g.
    :class:`~repro.core.adversary.DenyingNode`) among honest nodes.

    ``engine`` injects a shared :class:`EventEngine` instead of creating
    one from ``seed``, and ``rng`` a cluster-private numpy generator for
    layout/mobility/allocation draws (default: the engine's stream) — the
    federation layer uses both to place K clusters on one simulated clock
    while keeping each cluster's randomness an independent function of
    its derived seed.
    """
    if node_count < 2:
        raise ValueError("a blockchain network needs at least 2 nodes")
    if engine is None:
        engine = EventEngine(seed=seed)
    if rng is None:
        rng = engine.np_rng
    positions = connected_random_positions(
        node_count,
        rng,
        field_size=config.field_size,
        comm_range=config.comm_range,
    )
    topology = Topology(positions, comm_range=config.comm_range)
    mobility = RangeBoundedMobility.uniform(
        positions,
        rng,
        wander_range=config.mobility_range,
        field_size=config.field_size,
    )
    channel = ChannelModel(hop_delay=config.hop_delay, bandwidth=config.bandwidth)
    network = Network(
        engine, topology, channel, batch_deliveries=config.batch_deliveries
    )
    allocator = AllocationEngine(config, rng=rng)

    accounts = {
        node_id: Account.for_node(seed, node_id) for node_id in range(node_count)
    }
    address_of = {node_id: account.address for node_id, account in accounts.items()}
    ranges = [mobility.wander_range(node_id) for node_id in range(node_count)]

    nodes: Dict[int, EdgeNode] = {}
    classes = node_classes or {}
    for node_id in range(node_count):
        meter: Optional[EnergyMeter] = EnergyMeter() if with_energy_meters else None
        node_class = classes.get(node_id, EdgeNode)
        nodes[node_id] = node_class(
            node_id=node_id,
            account=accounts[node_id],
            config=config,
            network=network,
            engine=engine,
            topology=topology,
            allocator=allocator,
            address_of=address_of,
            mobility_ranges=ranges,
            meter=meter,
        )
    return EdgeCluster(
        config=config,
        engine=engine,
        topology=topology,
        mobility=mobility,
        network=network,
        allocator=allocator,
        accounts=accounts,
        nodes=nodes,
    )
