"""Data-request workloads.

Section VI-A: "The data are requested randomly by 10 percent of nodes."
For each produced item we sample ⌈10 % of nodes⌉ distinct requesters
(excluding the producer) and schedule their requests a little after the
item has had time to be packed into a block and disseminated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class RequestPlan:
    """The requesters and request times for one data item."""

    requesters: Tuple[int, ...]
    times: Tuple[float, ...]  # absolute seconds, aligned with requesters


def plan_requests(
    node_count: int,
    producer: int,
    production_time: float,
    requester_fraction: float,
    rng: np.random.Generator,
    min_delay: float = 90.0,
    max_delay: float = 300.0,
) -> RequestPlan:
    """Sample the requester set and times for one item.

    ``min_delay`` defaults to 1.5 block intervals so the metadata is
    normally on-chain and disseminated before the first request arrives
    (requests that still race ahead are retried by the harness).
    """
    if not (0.0 <= requester_fraction <= 1.0):
        raise ValueError("requester fraction must be in [0, 1]")
    if max_delay < min_delay:
        raise ValueError("max_delay must be ≥ min_delay")
    candidates = [node for node in range(node_count) if node != producer]
    count = min(len(candidates), max(1, math.ceil(requester_fraction * node_count)))
    if count == 0 or not candidates:
        return RequestPlan(requesters=(), times=())
    chosen = rng.choice(len(candidates), size=count, replace=False)
    requesters = tuple(candidates[int(i)] for i in chosen)
    times = tuple(
        production_time + float(rng.uniform(min_delay, max_delay))
        for _ in requesters
    )
    return RequestPlan(requesters=requesters, times=times)
