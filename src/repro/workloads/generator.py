"""Data-generation workloads.

Section VI-A: "on average 1 to 3 data items are generated throughout the
network per minute".  We model production as a Poisson process at the
configured rate, with each item produced by a uniformly random node and
typed from a catalogue mirroring the paper's metadata examples (air
quality, traffic pictures, key exchanges, smart-home energy...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: (data_type, location template, properties) drawn from the paper's
#: Section III-B examples and its motivating scenarios.
DATA_CATALOGUE: Tuple[Tuple[str, str, str], ...] = (
    ("AirQuality/PM2.5", "NewYork,NY/40.72,-74.00", ""),
    ("Picture/Traffic", "Nassau,NY/40.78,-73.58", "Camera"),
    ("KeyExchange/PublicKey", "-", "Key"),
    ("Video/WeMedia", "StonyBrook,NY/40.91,-73.12", "ShortClip"),
    ("Energy/SmartHome", "Suffolk,NY/40.85,-73.11", "kWh"),
    ("Road/Hazard", "I-495/40.80,-73.40", "VehicleSensor"),
)


@dataclass(frozen=True)
class ProductionEvent:
    """One scheduled data production."""

    time: float  # seconds into the run
    producer: int  # node id
    data_type: str
    location: str
    properties: str


def generate_production_schedule(
    node_count: int,
    items_per_minute: float,
    duration_seconds: float,
    rng: np.random.Generator,
) -> List[ProductionEvent]:
    """Poisson arrivals at ``items_per_minute`` over ``duration_seconds``.

    Producers are uniform over nodes; items arriving in the last expected
    block interval would never be packed, so the schedule runs over the
    whole duration and the harness simply measures what completes.
    """
    if node_count < 1:
        raise ValueError("need at least one node")
    if items_per_minute < 0:
        raise ValueError("rate cannot be negative")
    if duration_seconds < 0:
        raise ValueError("duration cannot be negative")
    events: List[ProductionEvent] = []
    rate_per_second = items_per_minute / 60.0
    if rate_per_second == 0:
        return events
    time = 0.0
    while True:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= duration_seconds:
            break
        producer = int(rng.integers(0, node_count))
        data_type, location, properties = DATA_CATALOGUE[
            int(rng.integers(0, len(DATA_CATALOGUE)))
        ]
        events.append(
            ProductionEvent(
                time=time,
                producer=producer,
                data_type=data_type,
                location=location,
                properties=properties,
            )
        )
    return events
