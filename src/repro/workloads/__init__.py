"""Workload models: Poisson data production and 10 %-of-nodes requests."""

from repro.workloads.generator import (
    DATA_CATALOGUE,
    ProductionEvent,
    generate_production_schedule,
)
from repro.workloads.requests import RequestPlan, plan_requests

__all__ = [
    "ProductionEvent",
    "generate_production_schedule",
    "DATA_CATALOGUE",
    "RequestPlan",
    "plan_requests",
]
