"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``  — one experiment with explicit parameters; prints the summary
  and optionally archives it as JSON/CSV.  ``--persist DIR`` makes the
  run durable (journal + SQLite store + snapshots in DIR).
* ``resume`` — continue a durable run after a pause, kill, or crash.
* ``inspect`` — health-check a durable run directory; exits non-zero on
  unrecoverable corruption.  Reports hot- vs cold-tier byte footprints.
* ``prune`` — compact a durable run: move checkpointed history below the
  retention horizon into the cold archive, then VACUUM the hot store.
* ``archive inspect`` / ``archive fetch`` — verify and read the cold
  archive tier (``archive.jsonl``) a compaction leaves behind.
* ``fig4`` / ``fig5`` / ``fig6`` — regenerate a paper figure from the
  terminal (the benchmarks do the same under pytest).
* ``live run`` — the same protocol over real TCP sockets on localhost:
  N nodes as asyncio tasks (or ``--procs`` subprocesses), the seeded
  workload, and the same metrics/obs artefacts as ``run``.
* ``live parity`` — the sim/live parity oracle: one seeded workload on
  both runtimes must converge to the identical chain digest.
* ``chaos run`` — a seeded Byzantine fault-injection scenario (adversary
  mix + optional churn/partition/kill overlay) on either fabric, ending
  in a safety/liveness verdict (``chaos_verdict.json``).
* ``fed run`` / ``fed resume`` / ``fed chaos`` — hierarchical federation:
  K sharded clusters bridged by fog super-peers, with durable snapshots,
  per-cluster obs artefacts, and a blast-radius chaos verdict.
* ``trace summary`` / ``trace export`` / ``trace merge`` / ``trace
  flame`` — inspect and convert the observability artefacts a ``run
  --obs DIR`` leaves behind (``merge --trace-out`` stitches the
  per-process traces of a ``--procs`` run; ``flame`` renders the
  continuous profiler's folded stacks).
* ``top`` — terminal live view over a ``--telemetry`` stream or
  endpoint: chain height, interval EWMA, mempool depth, quarantines,
  msgs/sec, and the fleet rollup for federated runs.
* ``report`` — render one observed run's timeline, events, and verdict
  as a terminal report plus a self-contained HTML page.
* ``compare`` — diff two observed runs with threshold-based regression
  verdicts; exits non-zero when the candidate regressed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.config import PAPER_CONFIG, LifecycleSpec
from repro.core.errors import PersistError
from repro.metrics.export import metrics_to_record, write_csv, write_json
from repro.metrics.report import render_table
from repro.persist import (
    PersistConfig,
    PersistentRunResult,
    inspect_run,
    resume_run,
    run_persistent,
)
from repro.sim.runner import ExperimentSpec, run_experiment
from repro.sim.scenarios import data_amount_scenario, placement_scenario
from repro.version import package_version


def _print_run_summary(title: str, metrics) -> None:
    print()
    print(
        render_table(
            title,
            ["metric", "value"],
            [
                ["chain height", metrics.chain_height()],
                ["mean block interval (s)", round(metrics.mean_block_interval(), 2)],
                ["avg delivery time (s)", round(metrics.average_delivery_time(), 3)],
                ["deliveries / failed", f"{len(metrics.delivery_times)} / {metrics.failed_requests}"],
                ["storage Gini", round(metrics.storage_gini(), 4)],
                ["avg traffic per node (MB)", round(metrics.average_node_megabytes(), 2)],
                ["data items produced", metrics.data_items_produced],
            ],
        )
    )


def _export(records, json_path: Optional[str], csv_path: Optional[str]) -> None:
    if json_path:
        print(f"wrote {write_json(records, json_path)}")
    if csv_path:
        print(f"wrote {write_csv(records, csv_path)}")


def _apply_lifecycle(config, args: argparse.Namespace):
    """Fold the --retain / --checkpoint-every knobs into a config."""
    interval = getattr(args, "checkpoint_every", None)
    retain = getattr(args, "retain", None)
    if interval is not None:
        config = replace(config, checkpoint_interval=interval)
    if retain is not None:
        if config.checkpoint_interval <= 0:
            raise SystemExit(
                "error: --retain requires --checkpoint-every K "
                "(pruning is checkpoint-anchored)"
            )
        config = replace(config, lifecycle=LifecycleSpec(retain_blocks=retain))
    return config


def _persist_config(args: argparse.Namespace) -> PersistConfig:
    try:
        return PersistConfig(
            journal_every_seconds=args.journal_every,
            snapshot_every_seconds=args.snapshot_every,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def _finish_durable(outcome: PersistentRunResult, label: str) -> int:
    if not outcome.completed:
        print(
            f"paused at t={outcome.clock:g}s — resume with "
            f"`repro resume {outcome.directory}`"
        )
        return 0
    _print_run_summary(label, outcome.metrics)
    if outcome.resumed_from is not None:
        print(
            f"resumed from t={outcome.resumed_from:g}s; "
            f"{outcome.blocks_verified} re-mined block(s) verified "
            "against the pre-crash journal"
        )
    print(f"run directory: {outcome.directory}")
    return 0


def _obs_enable(
    args: argparse.Namespace,
    default_interval: float,
    origin: str = "n0",
    out=None,
):
    """Enable observability for a CLI command (None when --obs is absent).

    Also arms the live telemetry plane when asked: ``--telemetry [PORT]``
    starts the streaming JSONL ring plus the /metrics + /snapshot
    endpoint, and ``--profile`` starts the continuous stack sampler.
    ``out`` redirects the diagnostics (the live ``node`` command must
    keep stdout JSON-only).
    """
    telemetry = getattr(args, "telemetry", None)
    profile = getattr(args, "profile", False)
    if not args.obs:
        if telemetry is not None or profile:
            raise SystemExit("error: --telemetry/--profile require --obs DIR")
        return None
    stream = out if out is not None else sys.stdout
    interval = args.obs_sample if args.obs_sample is not None else default_interval
    session = obs.enable(timeline_interval=interval, origin=origin)
    if telemetry is not None:
        session.start_stream(args.obs)
        port = session.start_telemetry(port=telemetry)
        print(
            f"telemetry: http://127.0.0.1:{port}/metrics "
            f"(streaming to {Path(args.obs) / obs.STREAM_NAME})",
            file=stream,
        )
    if profile:
        session.start_profiler(hz=getattr(args, "profile_hz", None))
    return session


def _obs_export(session, args: argparse.Namespace, out=None) -> None:
    stream = out if out is not None else sys.stdout
    had_profiler = session.profiler is not None
    had_stream = session.stream is not None
    target = session.export(args.obs, timebase=args.obs_timebase)
    obs.disable()
    print(
        f"wrote {target / obs.TRACE_NAME} (open in https://ui.perfetto.dev)",
        file=stream,
    )
    print(f"wrote {target / obs.METRICS_NAME}", file=stream)
    if session.timeline is not None:
        print(
            f"wrote {target / obs.TIMELINE_NAME} "
            f"({len(session.timeline.samples)} samples)",
            file=stream,
        )
    if session.monitors is not None:
        verdict = session.monitors.verdict()
        print(
            f"wrote {target / obs.VERDICT_NAME} "
            f"(verdict: {verdict['status']}, {verdict['alerts']} alert(s))",
            file=stream,
        )
    if had_profiler:
        print(
            f"wrote {target / obs.PROFILE_NAME} "
            f"(render with `repro trace flame {target} --out flame.svg`)",
            file=stream,
        )
    if had_stream:
        print(f"telemetry stream: {target / obs.STREAM_NAME}", file=stream)


def cmd_run(args: argparse.Namespace) -> int:
    # Default timeline cadence: one sample per expected block interval.
    session = _obs_enable(args, default_interval=args.block_interval)
    try:
        return _cmd_run_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_run_inner(args: argparse.Namespace) -> int:
    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=args.rate,
        placement_solver=args.solver,
        expected_block_interval=args.block_interval,
    )
    config = _apply_lifecycle(config, args)
    spec = ExperimentSpec(
        node_count=args.nodes,
        config=config,
        seed=args.seed,
        duration_minutes=args.minutes,
    )
    label = (
        f"Run: {args.nodes} nodes, {args.minutes:g} min, "
        f"{args.rate:g} items/min, solver={args.solver}, seed={args.seed}"
    )
    if args.persist:
        outcome = run_persistent(
            spec,
            args.persist,
            persist=_persist_config(args),
            stop_after_seconds=args.stop_after,
        )
        status = _finish_durable(outcome, label)
        if status or not outcome.completed:
            return status
        result = outcome.result
    else:
        if args.stop_after is not None:
            raise SystemExit("--stop-after requires --persist DIR")
        result = run_experiment(spec)
        _print_run_summary(label, result.metrics)
    record = metrics_to_record(
        result.metrics, seed=args.seed, rate=args.rate, solver=args.solver
    )
    _export([record], args.json, args.csv)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    # The paper-default block interval is the sampling fallback; a resumed
    # run's actual config is only known once the snapshot loads, so pass
    # --obs-sample to match a non-default --block-interval.
    session = _obs_enable(
        args, default_interval=PAPER_CONFIG.expected_block_interval
    )
    try:
        outcome = resume_run(args.directory, stop_after_seconds=args.stop_after)
        return _finish_durable(outcome, f"Resumed run: {args.directory}")
    finally:
        if session is not None:
            _obs_export(session, args)


def _format_bytes(count: int) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.1f} MiB"
    if count >= 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{count} B"


def cmd_inspect(args: argparse.Namespace) -> int:
    report = inspect_run(args.directory)
    hot = report.journal_bytes + report.store_bytes + report.snapshot_bytes
    rows = [
        ["status", report.status],
        ["journal records", report.journal_records],
        ["journal chain height", report.journal_height],
        ["store height / blocks", f"{report.store_height} / {report.store_blocks}"],
        ["store metadata items", report.store_metadata],
        ["store tip", (report.store_tip or "-")[:16]],
        ["store pruned below", report.store_pruned_below],
        ["hot bytes (journal/store/snapshots)",
         f"{_format_bytes(hot)} ({_format_bytes(report.journal_bytes)} / "
         f"{_format_bytes(report.store_bytes)} / "
         f"{_format_bytes(report.snapshot_bytes)})"],
        ["cold bytes (archive)",
         f"{_format_bytes(report.archive_bytes)} "
         f"({report.archive_blocks} block(s), "
         f"{report.archive_checkpoints} checkpoint(s))"],
        ["snapshots", len(report.snapshots)],
    ]
    for info in report.snapshots:
        rows.append(
            [
                f"  {info.path.name}",
                f"t={info.clock:g}s h={info.height} ({info.blob_bytes} B blob)",
            ]
        )
    print()
    print(render_table(f"Inspect: {report.directory}", ["field", "value"], rows))
    for note in report.notes:
        print(f"note: {note}")
    for problem in report.problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    if not report.ok:
        print(f"{len(report.problems)} problem(s) found", file=sys.stderr)
        return 1
    print("ok")
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    """Offline chainstore compaction: hot rows → cold archive + VACUUM."""
    from repro.core.blockchain import ChainState
    from repro.lifecycle import BlockArchive, CheckpointRecord, retention_horizon
    from repro.lifecycle.archive import ARCHIVE_NAME
    from repro.persist.chainstore import ChainStore
    from repro.persist.resume import (
        STORE_NAME,
        read_manifest,
        spec_from_dict,
    )

    directory = Path(args.directory)
    manifest = read_manifest(directory)
    spec = spec_from_dict(manifest["spec"])
    config = spec.config
    if args.checkpoint_every is not None:
        config = replace(config, checkpoint_interval=args.checkpoint_every)
    retain = args.retain
    if retain is None and config.lifecycle is not None:
        retain = config.lifecycle.retain_blocks
    if retain is None or config.checkpoint_interval <= 0:
        raise SystemExit(
            "error: no lifecycle policy — pass --retain N and "
            "--checkpoint-every K (or run with them)"
        )
    config = replace(config, lifecycle=LifecycleSpec(retain_blocks=retain))

    with ChainStore(directory / STORE_NAME) as store:
        height = store.height()
        floor = store.pruned_below()
        horizon = retention_horizon(config, height)
        if horizon <= floor:
            print(
                f"nothing to prune (height {height}, floor {floor}, "
                f"horizon {horizon})"
            )
            return 0
        archive = BlockArchive(directory / ARCHIVE_NAME)
        node_ids = sorted(store.accounts()) or list(range(spec.node_count))
        # Replay the ledger to the horizon (cold blocks from the archive,
        # the rest from the store) so the checkpoint record pins the
        # at-horizon digest, not the tip's.
        state = ChainState(node_ids, config)
        horizon_block = None
        for index in range(horizon + 1):
            if index < archive.archived_below:
                block = archive.fetch(index)
            else:
                block = store.block_by_index(index)
            if block is None:
                raise SystemExit(f"error: block {index} is missing from the store")
            state.apply_block(block)
            horizon_block = block
        record = CheckpointRecord.pin(horizon_block, state)
        before = store.footprint_bytes()
        moved = store.compact(archive, horizon, {horizon: record})
        after = store.footprint_bytes()
        print()
        print(
            render_table(
                f"Prune: {directory}",
                ["field", "value"],
                [
                    ["chain height", height],
                    ["pruned to checkpoint", horizon],
                    ["blocks moved to archive", moved],
                    ["checkpoint digest", record.digest()[:16]],
                    ["hot store bytes",
                     f"{_format_bytes(before)} -> {_format_bytes(after)}"],
                    ["archive bytes", _format_bytes(archive.size_bytes)],
                ],
            )
        )
    return 0


def _open_archive(argument: str):
    """Accept a run directory or a direct archive file path."""
    from repro.lifecycle import BlockArchive
    from repro.lifecycle.archive import ARCHIVE_NAME

    path = Path(argument)
    if path.is_dir():
        path = path / ARCHIVE_NAME
    if not path.exists():
        raise SystemExit(f"error: no archive at {path}")
    return BlockArchive(path)


def cmd_archive_inspect(args: argparse.Namespace) -> int:
    archive = _open_archive(args.source)
    stats = archive.stats()
    checkpoints = ", ".join(map(str, stats.checkpoints)) or "-"
    print()
    print(
        render_table(
            f"Archive: {stats.path}",
            ["field", "value"],
            [
                ["blocks (contiguous prefix)", f"[0, {stats.archived_below})"],
                ["bytes", _format_bytes(stats.bytes)],
                ["pinned checkpoints", checkpoints],
                ["torn tail dropped (bytes)", stats.torn_tail_bytes],
            ],
        )
    )
    problems = archive.verify_integrity()
    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print("ok")
    return 0


def cmd_archive_fetch(args: argparse.Namespace) -> int:
    from repro.core.serialization import block_to_dict

    archive = _open_archive(args.source)
    stop = args.stop if args.stop is not None else args.index + 1
    blocks = list(archive.fetch_range(args.index, stop))
    if not blocks:
        print(
            f"error: archive holds [0, {archive.archived_below}); "
            f"nothing in [{args.index}, {stop})",
            file=sys.stderr,
        )
        return 1
    for block in blocks:
        print(json.dumps(block_to_dict(block), sort_keys=True))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    records = []
    rows = []
    for nodes in args.node_counts:
        for rate in args.rates:
            metrics = run_experiment(
                data_amount_scenario(nodes, rate, seed=args.seed)
            ).metrics
            records.append(metrics_to_record(metrics, rate=rate, seed=args.seed))
            rows.append(
                [
                    nodes,
                    rate,
                    round(metrics.average_node_megabytes(), 1),
                    round(metrics.storage_gini(), 4),
                    round(metrics.average_delivery_time(), 3),
                ]
            )
    print()
    print(
        render_table(
            "Fig. 4 — transmission / Gini / delivery under data amounts",
            ["nodes", "items/min", "MB/node", "Gini", "delivery (s)"],
            rows,
        )
    )
    _export(records, args.json, args.csv)
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    records = []
    rows = []
    for nodes in args.node_counts:
        cells = {}
        for solver in ("greedy", "random"):
            metrics = run_experiment(
                placement_scenario(nodes, solver, seed=args.seed)
            ).metrics
            cells[solver] = metrics
            records.append(metrics_to_record(metrics, solver=solver, seed=args.seed))
        rows.append(
            [
                nodes,
                round(cells["greedy"].average_delivery_time(), 3),
                round(cells["random"].average_delivery_time(), 3),
                round(cells["greedy"].average_node_megabytes(), 1),
                round(cells["random"].average_node_megabytes(), 1),
            ]
        )
    print()
    print(
        render_table(
            "Fig. 5 — optimal vs random placement",
            ["nodes", "opt delivery", "rand delivery", "opt MB/node", "rand MB/node"],
            rows,
        )
    )
    _export(records, args.json, args.csv)
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.pos import compute_amendment, compute_hit, mining_delay
    from repro.core.pow import PowMiner
    from repro.energy.meter import EnergyMeter

    rng = np.random.default_rng(args.seed)
    pow_meter = EnergyMeter()
    pow_miner = PowMiner(pow_meter, difficulty=args.difficulty)
    pos_meter = EnergyMeter()
    amendment = compute_amendment(2**64, 1, 25.0, 1.0)

    rows = []
    pow_elapsed = pos_elapsed = 0.0
    pow_blocks = pos_blocks = 0
    pos_hash = f"cli-{args.seed}"
    for checkpoint in range(12, args.minutes + 1, 12):
        while pow_elapsed < checkpoint * 60 and not pow_meter.depleted:
            result = pow_miner.mine_block(rng)
            pow_elapsed += result.duration_seconds
            pow_blocks += 1
        while pos_elapsed < checkpoint * 60:
            hit = compute_hit(pos_hash, "cli-account", 2**64)
            pos_hash += "x"
            delay = mining_delay(hit, 1.0, 1.0, amendment)
            pos_meter.charge_pos_ticks(delay)
            pos_elapsed += delay
            pos_blocks += 1
        rows.append(
            [
                checkpoint,
                pow_blocks,
                round(pow_meter.remaining_percent, 1),
                pos_blocks,
                round(pos_meter.remaining_percent, 1),
            ]
        )
    print()
    print(
        render_table(
            f"Fig. 6 — battery vs mining time (PoW difficulty {args.difficulty})",
            ["minutes", "PoW blocks", "PoW battery %", "PoS blocks", "PoS battery %"],
            rows,
        )
    )
    return 0


def _live_spec(args: argparse.Namespace):
    """Build a LiveSpec from the shared ``live`` flag set."""
    from repro.net.harness import KillSpec, LiveSpec

    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=args.rate,
        placement_solver=args.solver,
        expected_block_interval=args.block_interval,
    )
    kill = None
    if getattr(args, "kill", None) is not None:
        kill = KillSpec(
            node_id=args.kill,
            at_minutes=args.kill_at,
            down_minutes=args.kill_down,
        )
    try:
        return LiveSpec(
            node_count=args.nodes,
            config=config,
            seed=args.seed,
            duration_minutes=args.minutes,
            time_scale=args.time_scale,
            base_port=args.base_port,
            kill=kill,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def cmd_live_run(args: argparse.Namespace) -> int:
    if args.procs:
        # The node processes own the obs plane (one origin each); the
        # parent only launches, scrapes, and merges their artefacts.
        return _live_run_procs(args)
    session = _obs_enable(args, default_interval=args.block_interval)
    try:
        return _cmd_live_run_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_live_run_inner(args: argparse.Namespace) -> int:
    from repro.net.harness import run_live_experiment

    spec = _live_spec(args)
    result = run_live_experiment(spec)
    label = (
        f"Live run: {args.nodes} nodes, {args.minutes:g} min at "
        f"{args.time_scale:g}x wall, seed={args.seed}"
    )
    _print_run_summary(label, result.metrics)
    summary = result.summary()
    print(
        f"chain digest {result.chain_digest[:16]}… on all nodes: "
        f"{summary['digests_agree']}; reconnects: {result.reconnects}"
    )
    if result.resynced is not None:
        print(f"killed node resynced: {result.resynced}")
    if args.json:
        record = metrics_to_record(
            result.metrics, seed=args.seed, rate=args.rate, solver=args.solver
        )
        record.update(summary)
        _export([record], args.json, None)
    return 0 if result.healthy else 1


def _live_run_procs(args: argparse.Namespace) -> int:
    """Host each node in its own subprocess on a fixed port range.

    With ``--obs DIR`` each node process writes its own artefacts into
    ``DIR/node{i}`` (origin ``n{i}``); after the run the parent stitches
    the per-process traces into ``DIR/trace_merged.json`` and merges the
    metrics snapshots.  ``--telemetry [BASE]`` gives node ``i`` the
    endpoint port ``BASE+i`` and the parent scrapes node 0 mid-run.
    """
    import subprocess
    import time as _time

    if args.kill is not None:
        raise SystemExit("error: --kill is not supported with --procs")
    telemetry = getattr(args, "telemetry", None)
    if (telemetry is not None or getattr(args, "profile", False)) and not args.obs:
        raise SystemExit("error: --telemetry/--profile require --obs DIR")
    base_port = args.base_port or 46200
    telemetry_base = (telemetry or 47300) if telemetry is not None else None
    start_at = _time.time() + args.start_lead
    command = [
        sys.executable, "-m", "repro", "live", "node",
        "--nodes", str(args.nodes),
        "--minutes", str(args.minutes),
        "--seed", str(args.seed),
        "--rate", str(args.rate),
        "--solver", args.solver,
        "--block-interval", str(args.block_interval),
        "--time-scale", str(args.time_scale),
        "--base-port", str(base_port),
        "--start-at", repr(start_at),
    ]

    def _node_args(node_id: int) -> List[str]:
        extra = ["--node-id", str(node_id)]
        if args.obs:
            extra += ["--obs", str(Path(args.obs) / f"node{node_id}")]
            extra += ["--obs-timebase", args.obs_timebase]
            if args.obs_sample is not None:
                extra += ["--obs-sample", str(args.obs_sample)]
            if telemetry_base is not None:
                extra += ["--telemetry", str(telemetry_base + node_id)]
            if getattr(args, "profile", False):
                extra.append("--profile")
                if getattr(args, "profile_hz", None) is not None:
                    extra += ["--profile-hz", str(args.profile_hz)]
        return extra

    procs = [
        subprocess.Popen(
            command + _node_args(node_id),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for node_id in range(args.nodes)
    ]
    if telemetry_base is not None:
        _scrape_node_zero(args, start_at, telemetry_base)
    budget = (start_at - _time.time()) + args.minutes * 60.0 * args.time_scale + 60.0
    results = []
    failed = False
    for node_id, proc in enumerate(procs):
        try:
            out, err = proc.communicate(timeout=max(10.0, budget))
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate()
            print(f"node {node_id}: timed out", file=sys.stderr)
            failed = True
            continue
        if proc.returncode != 0:
            print(f"node {node_id}: exit {proc.returncode}\n{err}", file=sys.stderr)
            failed = True
            continue
        try:
            results.append(json.loads(out.strip().splitlines()[-1]))
        except (json.JSONDecodeError, IndexError):
            print(f"node {node_id}: unparsable output: {out!r}", file=sys.stderr)
            failed = True
    if failed or not results:
        return 1
    digests = {record["chain_digest"] for record in results}
    rows = [
        [
            record["node"],
            record["chain_height"],
            record["chain_digest"][:16],
            record["blocks_mined"],
            record["reconnects"],
        ]
        for record in sorted(results, key=lambda r: r["node"])
    ]
    print()
    print(
        render_table(
            f"Live run ({args.nodes} processes, {args.minutes:g} min, "
            f"seed={args.seed})",
            ["node", "height", "digest", "mined", "reconnects"],
            rows,
        )
    )
    agree = len(digests) == 1
    print(f"chain digests agree across processes: {agree}")
    if args.obs:
        _merge_proc_artefacts(args)
    return 0 if agree else 1


def _scrape_node_zero(
    args: argparse.Namespace, start_at: float, telemetry_base: int
) -> None:
    """One mid-run /metrics scrape against node 0 (warn, never fail)."""
    import time as _time
    import urllib.request

    wake = start_at + min(10.0, args.minutes * 60.0 * args.time_scale / 2.0)
    delay = wake - _time.time()
    if delay > 0:
        _time.sleep(delay)
    url = f"http://127.0.0.1:{telemetry_base}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            text = response.read().decode("utf-8")
    except OSError as error:
        print(f"telemetry scrape: failed ({url}: {error})", file=sys.stderr)
        return
    series = [
        line for line in text.splitlines() if line and not line.startswith("#")
    ]
    print(f"telemetry scrape: ok ({len(series)} series from {url})")


def _merge_proc_artefacts(args: argparse.Namespace) -> None:
    """Stitch per-process obs output under ``--obs DIR`` into one view."""
    root = Path(args.obs)
    sources = [
        path
        for path in (root / f"node{i}" for i in range(args.nodes))
        if (path / obs.TRACE_NAME).exists()
    ]
    if not sources:
        print("no per-process obs artefacts to merge", file=sys.stderr)
        return
    stats = obs.merge_trace_files(sources, out=root / obs.MERGED_TRACE_NAME)
    print(
        f"wrote {stats['out']} ({stats['events']} events, "
        f"{stats['traces']} traces from {len(stats['origins'])} process(es))"
    )
    print(f"cross-process traces: {stats['cross_process_traces']}")
    snapshots = []
    for path in sources:
        metrics_file = path / obs.METRICS_NAME
        if metrics_file.exists():
            snapshots.append(json.loads(metrics_file.read_text(encoding="utf-8")))
    if snapshots:
        merged = obs.merge_snapshots(snapshots)
        out_path = root / "metrics_merged.json"
        with out_path.open("w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out_path} ({len(merged['instruments'])} instruments)")


def cmd_live_parity(args: argparse.Namespace) -> int:
    from repro.net.harness import parity_report

    report = parity_report(_live_spec(args))
    print()
    print(
        render_table(
            f"Parity: {args.nodes} nodes, {args.minutes:g} min, seed={args.seed}",
            ["side", "height", "chain digest"],
            [
                ["simnet", report["sim_height"], report["sim_digest"][:32]],
                ["live", report["live_height"], report["live_digest"][:32]],
            ],
        )
    )
    print(f"match: {report['match']}")
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}")
    return 0 if report["match"] else 1


def cmd_live_node(args: argparse.Namespace) -> int:
    """Internal: host one node of a multi-process cluster (see --procs)."""
    import asyncio

    from repro.net.harness import host_single_node

    # stdout is a protocol surface here — the parent parses the last line
    # as the result JSON — so every obs diagnostic goes to stderr.
    session = _obs_enable(
        args,
        default_interval=args.block_interval,
        origin=f"n{args.node_id}",
        out=sys.stderr,
    )
    spec = _live_spec(args)
    try:
        result = asyncio.run(host_single_node(spec, args.node_id, args.start_at))
    finally:
        if session is not None:
            _obs_export(session, args, out=sys.stderr)
    print(json.dumps(result, sort_keys=True))
    return 0


def _parse_adversaries(entries: List[str]) -> dict:
    """Parse repeated ``--adversary TYPE=ID[,ID...]`` flags."""
    from repro.chaos import ADVERSARY_TYPES

    adversaries: dict = {}
    for entry in entries or []:
        behavior, _, ids = entry.partition("=")
        behavior = behavior.strip()
        if behavior not in ADVERSARY_TYPES:
            raise SystemExit(
                f"error: unknown adversary {behavior!r} "
                f"(known: {', '.join(sorted(ADVERSARY_TYPES))})"
            )
        try:
            node_ids = tuple(int(part) for part in ids.split(",") if part.strip())
        except ValueError:
            raise SystemExit(f"error: bad node list in --adversary {entry!r}")
        if not node_ids:
            raise SystemExit(
                f"error: --adversary {entry!r} names no nodes "
                "(expected TYPE=ID[,ID...])"
            )
        adversaries[behavior] = adversaries.get(behavior, ()) + node_ids
    return adversaries


def _chaos_spec(args: argparse.Namespace):
    from repro.chaos import ChaosSpec, PartitionSpec
    from repro.chaos.scenario import KillPlan
    from repro.sim.runner import ChurnSpec

    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=args.rate,
        expected_block_interval=args.block_interval,
        verify_metadata_signatures=args.verify_signatures,
    )
    churn = ChurnSpec(node_fraction=args.churn) if args.churn is not None else None
    partition = None
    if args.partition:
        try:
            at_text, _, heal_text = args.partition.partition(":")
            partition = PartitionSpec(
                at_minutes=float(at_text), heal_minutes=float(heal_text)
            )
        except ValueError as error:
            raise SystemExit(
                f"error: --partition expects AT:HEAL minutes ({error})"
            )
    kill = None
    if args.kill is not None:
        kill = KillPlan(
            node_id=args.kill,
            at_minutes=args.kill_at,
            down_minutes=args.kill_down,
        )
    try:
        return ChaosSpec(
            node_count=args.nodes,
            config=config,
            seed=args.seed,
            duration_minutes=args.minutes,
            adversaries=_parse_adversaries(args.adversary),
            start_minutes=args.start,
            stop_minutes=args.stop,
            churn=churn,
            partition=partition,
            kill=kill,
            fabric=args.fabric,
            time_scale=args.time_scale,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def cmd_chaos_run(args: argparse.Namespace) -> int:
    session = _obs_enable(args, default_interval=args.block_interval)
    try:
        return _cmd_chaos_run_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_chaos_run_inner(args: argparse.Namespace) -> int:
    from repro.chaos import run_chaos
    from repro.chaos.runner import CHAOS_VERDICT_NAME

    spec = _chaos_spec(args)
    result = run_chaos(spec)
    verdict = result.verdict
    mix = (
        ", ".join(
            f"{behavior}={list(ids)}"
            for behavior, ids in sorted(verdict["adversaries"].items())
        )
        or "none"
    )
    safety = verdict["safety"]
    liveness = verdict["liveness"]
    admission = verdict["admission"]
    rejections = (
        ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(admission["rejections"].items())
        )
        or "-"
    )
    print()
    print(
        render_table(
            f"Chaos: {spec.node_count} nodes on {spec.fabric}, "
            f"{spec.duration_minutes:g} min, seed={spec.seed}",
            ["field", "value"],
            [
                ["verdict", verdict["status"]],
                ["adversaries", mix],
                ["safety ok", safety["ok"]],
                ["liveness ok", liveness["ok"]],
                ["honest common prefix", liveness["common_prefix_height"]],
                ["honest height", verdict["honest_height"]],
                ["honest digest", verdict["honest_digest"][:16]],
                ["rejections", rejections],
                ["quarantined peers", admission["quarantined_peers"] or "-"],
            ],
        )
    )
    for issue in liveness["issues"]:
        print(f"liveness: {issue}")
    if not safety["ok"]:
        for field_name in (
            "invalid_chains",
            "checkpoint_violations",
            "honest_quarantined",
        ):
            if safety[field_name]:
                print(f"SAFETY: {field_name}: {safety[field_name]}", file=sys.stderr)
        if not safety["genesis_consistent"]:
            print("SAFETY: honest genesis blocks differ", file=sys.stderr)
    targets = []
    if args.json:
        targets.append(Path(args.json))
    if args.obs:
        targets.append(Path(args.obs) / CHAOS_VERDICT_NAME)
    for target in targets:
        print(f"wrote {result.write_verdict(target)}")
    return 1 if verdict["status"] == "critical" else 0


def _fed_spec(args: argparse.Namespace):
    from repro.federation import FederationSpec

    config = replace(
        PAPER_CONFIG,
        data_items_per_minute=args.rate,
        expected_block_interval=args.block_interval,
    )
    config = _apply_lifecycle(config, args)
    try:
        return FederationSpec(
            cluster_count=args.clusters,
            nodes_per_cluster=args.nodes,
            config=config,
            seed=args.seed,
            duration_minutes=args.minutes,
            super_peer_count=args.super_peers,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def _print_fed_summary(title: str, aggregate: dict) -> None:
    print()
    print(
        render_table(
            title,
            ["metric", "value"],
            [
                ["clusters x nodes",
                 f"{aggregate['clusters']} x {aggregate['nodes_per_cluster']}"],
                ["aggregate items/min",
                 round(aggregate["aggregate_items_per_minute"], 2)],
                ["aggregate blocks/min",
                 round(aggregate["aggregate_blocks_per_minute"], 2)],
                ["max mempool depth", aggregate["max_mempool_depth"]],
                ["cross lookups ok/failed",
                 f"{aggregate['lookups_ok']} / {aggregate['lookups_failed']}"],
                ["migrations ok/rejected",
                 f"{aggregate['migrations']} / "
                 f"{aggregate['migrations_rejected']}"],
                ["gossip rounds", aggregate["gossip_rounds"]],
                ["bloom FP probes / verify rejected",
                 f"{aggregate['bloom_fp_probes']} / "
                 f"{aggregate['verify_rejected']}"],
                ["fog quarantined",
                 aggregate["fog_quarantined"] or "-"],
                ["directory staleness (s)",
                 round(aggregate["directory_staleness"], 1)],
                ["directory digest", aggregate["directory_digest"][:16]],
            ],
        )
    )
    print()
    print(
        render_table(
            "Per cluster",
            ["cluster", "height", "digest", "items", "mempool", "converged"],
            [
                [
                    entry["cluster_id"],
                    entry["height"],
                    entry["chain_digest"][:16],
                    entry["items_on_chain"],
                    entry["mempool_depth"],
                    entry["formation_converged"],
                ]
                for entry in aggregate["per_cluster"]
            ],
        )
    )


def _export_fed_json(aggregate: dict, json_path: Optional[str]) -> None:
    if not json_path:
        return
    out = Path(json_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        json.dump(aggregate, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")


def cmd_fed_run(args: argparse.Namespace) -> int:
    session = _obs_enable(args, default_interval=args.block_interval)
    try:
        return _cmd_fed_run_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_fed_run_inner(args: argparse.Namespace) -> int:
    from repro.federation import run_federation

    if args.stop_after is not None and not args.persist:
        raise SystemExit("--stop-after requires --persist DIR")
    spec = _fed_spec(args)
    result = run_federation(
        spec,
        persist_dir=args.persist,
        snapshot_every_seconds=args.snapshot_every,
        stop_after_seconds=args.stop_after,
    )
    aggregate = result.aggregate
    _print_fed_summary(
        f"Federated run: {spec.cluster_count} clusters x "
        f"{spec.nodes_per_cluster} nodes, {spec.duration_seconds / 60.0:g} min, "
        f"seed={spec.seed}",
        aggregate,
    )
    if not aggregate["finished"]:
        print(
            f"paused at t={result.runtime.engine.now:g}s — resume with "
            f"`repro fed resume {args.persist}`"
        )
    _export_fed_json(aggregate, args.json)
    return 0


def cmd_fed_resume(args: argparse.Namespace) -> int:
    session = _obs_enable(
        args, default_interval=PAPER_CONFIG.expected_block_interval
    )
    try:
        return _cmd_fed_resume_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_fed_resume_inner(args: argparse.Namespace) -> int:
    from repro.federation import resume_federation

    result = resume_federation(
        args.directory,
        snapshot_every_seconds=args.snapshot_every,
        stop_after_seconds=args.stop_after,
    )
    aggregate = result.aggregate
    _print_fed_summary(f"Resumed federated run: {args.directory}", aggregate)
    if not aggregate["finished"]:
        print(
            f"paused at t={result.runtime.engine.now:g}s — resume with "
            f"`repro fed resume {args.directory}`"
        )
    _export_fed_json(aggregate, args.json)
    return 0


def cmd_fed_chaos(args: argparse.Namespace) -> int:
    session = _obs_enable(args, default_interval=args.block_interval)
    try:
        return _cmd_fed_chaos_inner(args)
    finally:
        if session is not None:
            _obs_export(session, args)


def _cmd_fed_chaos_inner(args: argparse.Namespace) -> int:
    from repro.chaos.runner import CHAOS_VERDICT_NAME
    from repro.federation import FederatedChaosSpec, run_federated_chaos

    federation = _fed_spec(args)
    fog_adversaries = {}
    if args.fog_behavior:
        peers = (
            tuple(int(p) for p in args.fog_peers.split(","))
            if args.fog_peers
            else (0,)
        )
        fog_adversaries = {args.fog_behavior: peers}
    elif args.fog_peers:
        raise SystemExit("error: --fog-peers requires --fog-behavior")
    try:
        spec = FederatedChaosSpec(
            federation=federation,
            byzantine_clusters=tuple(args.byzantine_cluster or ()),
            behavior=args.behavior,
            start_minutes=args.start,
            stop_minutes=args.stop,
            fog_adversaries=fog_adversaries,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    result = run_federated_chaos(spec)
    verdict = result.verdict
    blast = verdict["blast_radius"]
    siblings = (
        ", ".join(
            f"c{key}={'ok' if ok else 'VIOLATED'}"
            for key, ok in sorted(blast["sibling_safety"].items())
        )
        or "-"
    )
    fog = verdict["fog"]
    fog_adversary_label = (
        ", ".join(
            f"{behavior}@{peers}"
            for behavior, peers in sorted(fog["adversaries"].items())
        )
        or "-"
    )
    rehomed = (
        ", ".join(
            f"c{cluster}→p{peer}"
            for cluster, peer in sorted(fog["rehomed_clusters"].items())
        )
        or "-"
    )
    behavior_label = spec.behavior if spec.byzantine_clusters else (
        "+".join(sorted(fog["adversaries"])) or spec.behavior
    )
    print()
    print(
        render_table(
            f"Federated chaos: {federation.cluster_count} clusters x "
            f"{federation.nodes_per_cluster} nodes, "
            f"behavior={behavior_label}, seed={federation.seed}",
            ["field", "value"],
            [
                ["verdict", verdict["status"]],
                ["blast radius ok", blast["ok"]],
                ["byzantine clusters", blast["byzantine_clusters"] or "-"],
                ["sibling safety", siblings],
                ["fog ok", fog["ok"]],
                ["fog adversaries", fog_adversary_label],
                ["fog quarantined", fog["quarantined_peers"] or "-"],
                ["clusters re-homed", rehomed],
                ["cross lookups ok/failed",
                 f"{fog['lookups_ok']} / {fog['lookups_failed']}"],
                ["attestation / verify rejected",
                 f"{fog['attestation_rejected']} / {fog['verify_rejected']}"],
            ],
        )
    )
    targets = []
    if args.json:
        targets.append(Path(args.json))
    if args.obs:
        targets.append(Path(args.obs) / CHAOS_VERDICT_NAME)
    for target in targets:
        print(f"wrote {result.write_verdict(target)}")
    return 1 if verdict["status"] == "critical" else 0


def _trace_path(argument: str) -> Path:
    """Accept either an obs directory or a trace file path."""
    path = Path(argument)
    if path.is_dir():
        return path / obs.TRACE_NAME
    return path


def cmd_trace_summary(args: argparse.Namespace) -> int:
    trace_file = _trace_path(args.source)
    if not trace_file.exists():
        raise SystemExit(f"error: no trace file at {trace_file}")
    events = obs.read_trace_events(trace_file)
    rows = [
        [
            row["category"],
            row["name"],
            row["count"],
            round(row["wall_ms"], 2),
            round(row["sim_s"], 1),
        ]
        for row in obs.summarize_events(events)[: args.top]
    ]
    print()
    print(
        render_table(
            f"Trace summary: {trace_file}",
            ["category", "span", "count", "wall ms", "sim s"],
            rows,
        )
    )
    metrics_file = trace_file.parent / obs.METRICS_NAME
    if metrics_file.exists():
        snapshot = json.loads(metrics_file.read_text(encoding="utf-8"))
        counter_rows = [
            [name, instrument["value"]]
            for name, instrument in sorted(snapshot.get("instruments", {}).items())
            if instrument.get("type") == "counter"
        ]
        if counter_rows:
            print()
            print(render_table("Counters", ["name", "value"], counter_rows))
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    trace_file = _trace_path(args.source)
    if not trace_file.exists():
        raise SystemExit(f"error: no trace file at {trace_file}")
    events = obs.read_trace_events(trace_file)
    print(f"wrote {obs.write_strict_json(events, args.out)} ({len(events)} events)")
    return 0


def cmd_trace_merge(args: argparse.Namespace) -> int:
    snapshots = []
    for source in args.sources:
        path = Path(source)
        if path.is_dir():
            path = path / obs.METRICS_NAME
        try:
            snapshots.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"error: cannot read metrics snapshot {path}: {error}")
    merged = obs.merge_snapshots(snapshots)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out} ({len(merged['instruments'])} instruments)")
    if args.trace_out:
        candidates = []
        for source in args.sources:
            path = Path(source)
            trace_file = path / obs.TRACE_NAME if path.is_dir() else path
            if trace_file.name != obs.METRICS_NAME and trace_file.exists():
                candidates.append(trace_file)
        if not candidates:
            raise SystemExit(
                "error: --trace-out found no trace.jsonl among the sources"
            )
        stats = obs.merge_trace_files(candidates, out=args.trace_out)
        print(
            f"wrote {stats['out']} ({stats['events']} events, "
            f"{stats['traces']} traces from {len(stats['origins'])} origin(s))"
        )
        print(f"cross-process traces: {stats['cross_process_traces']}")
    return 0


def cmd_trace_flame(args: argparse.Namespace) -> int:
    source = Path(args.source)
    if source.is_dir():
        source = source / obs.PROFILE_NAME
    if not source.exists():
        raise SystemExit(
            f"error: no folded-stacks profile at {source} "
            "(runs write one when --profile is on)"
        )
    folded = obs.read_folded(source)
    target = obs.write_flamegraph(folded, args.out, title=f"repro — {source}")
    print(
        f"wrote {target} ({sum(folded.values())} samples, "
        f"{len(folded)} distinct stacks)"
    )
    if args.top:
        rows = [
            [
                row["function"],
                row["self"],
                f"{row['self_pct']}%",
                row["total"],
                f"{row['total_pct']}%",
            ]
            for row in obs.top_functions(folded, args.top)
        ]
        print()
        print(
            render_table(
                "hottest functions (by self samples)",
                ["function", "self", "self%", "total", "total%"],
                rows,
            )
        )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    while True:
        try:
            view = obs.load_top_view(args.source)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            print()
            print(obs.render_top(view))
        except BrokenPipeError:
            # Piped into head/less and the reader closed; not an error.
            sys.stderr.close()  # suppress the interpreter's epipe warning
            return 0
        if args.watch is None:
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def cmd_report(args: argparse.Namespace) -> int:
    try:
        run = obs.load_run(args.directory)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(obs.render_terminal_report(run))
    if not args.no_html:
        target = obs.write_html_report(run, args.html)
        print(f"\nwrote {target}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        result = obs.compare_runs(args.baseline, args.candidate)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(obs.render_comparison(result))
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}")
    return 1 if result.regressed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Edge blockchain reproduction (ICDCS 2019) — experiment CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry", type=int, nargs="?", const=0, default=None,
            metavar="PORT",
            help="with --obs: stream telemetry.jsonl and serve /metrics + "
                 "/snapshot on this port (omit PORT for an ephemeral one)",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="with --obs: continuously sample the run thread's stacks "
                 "and export profile_folded.txt (see `repro trace flame`)",
        )
        p.add_argument(
            "--profile-hz", type=float, default=None, metavar="HZ",
            help="profiler sampling rate (default 97)",
        )

    def _lifecycle_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint-every", type=int, default=None, metavar="K",
            help="checkpoint every K blocks (reorgs at or below a "
                 "checkpoint are refused)",
        )
        p.add_argument(
            "--retain", type=int, default=None, metavar="N",
            help="lifecycle pruning: keep at least N block bodies hot and "
                 "drop checkpointed history below them "
                 "(requires --checkpoint-every)",
        )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--nodes", type=int, default=20)
    run.add_argument("--minutes", type=float, default=60.0)
    run.add_argument("--rate", type=float, default=1.0, help="data items per minute")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--solver", default="greedy",
                     choices=["greedy", "local_search", "lp_rounding", "random"])
    run.add_argument("--block-interval", type=float, default=60.0)
    _lifecycle_flags(run)
    run.add_argument("--json", help="write metrics record to this JSON file")
    run.add_argument("--csv", help="write metrics record to this CSV file")
    run.add_argument(
        "--persist", metavar="DIR",
        help="make the run durable: journal, chain store, and snapshots in DIR",
    )
    run.add_argument(
        "--stop-after", type=float, metavar="SECONDS",
        help="pause cleanly after this much simulated time (requires --persist)",
    )
    run.add_argument(
        "--journal-every", type=float, default=30.0, metavar="SECONDS",
        help="simulated seconds between journal flushes (default 30)",
    )
    run.add_argument(
        "--snapshot-every", type=float, default=600.0, metavar="SECONDS",
        help="simulated seconds between runtime snapshots (default 600)",
    )
    run.add_argument(
        "--obs", metavar="DIR",
        help="enable observability: write a Perfetto trace (trace.jsonl) "
             "and a metrics snapshot (metrics.json) into DIR",
    )
    run.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
        help="timeline for the exported trace: real (wall) or simulated time",
    )
    run.add_argument(
        "--obs-sample", type=float, metavar="SECONDS",
        help="simulated seconds between protocol-timeline samples "
             "(default: the expected block interval)",
    )
    _telemetry_flags(run)
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser("resume", help="continue a durable run after a stop/crash")
    resume.add_argument("directory", help="run directory created by `run --persist`")
    resume.add_argument(
        "--stop-after", type=float, metavar="SECONDS",
        help="pause again after this much additional simulated time",
    )
    resume.add_argument(
        "--obs", metavar="DIR",
        help="enable observability for the resumed segment: trace, metrics, "
             "protocol timeline, and monitor verdict into DIR",
    )
    resume.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
        help="timeline for the exported trace: real (wall) or simulated time",
    )
    resume.add_argument(
        "--obs-sample", type=float, metavar="SECONDS",
        help="simulated seconds between protocol-timeline samples "
             "(default: the paper's expected block interval)",
    )
    resume.set_defaults(func=cmd_resume)

    inspect = sub.add_parser(
        "inspect", help="health-check a durable run directory (non-zero on corruption)"
    )
    inspect.add_argument("directory", help="run directory created by `run --persist`")
    inspect.set_defaults(func=cmd_inspect)

    prune = sub.add_parser(
        "prune",
        help="compact a durable run: move checkpointed history below the "
             "retention horizon into the cold archive and VACUUM the store",
    )
    prune.add_argument("directory", help="run directory created by `run --persist`")
    _lifecycle_flags(prune)
    prune.set_defaults(func=cmd_prune)

    archive = sub.add_parser(
        "archive", help="inspect or read a run's cold-archive tier"
    )
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)
    archive_inspect = archive_sub.add_parser(
        "inspect",
        help="archive stats + full integrity walk (non-zero on corruption)",
    )
    archive_inspect.add_argument(
        "source", help="run directory or archive.jsonl path"
    )
    archive_inspect.set_defaults(func=cmd_archive_inspect)
    archive_fetch = archive_sub.add_parser(
        "fetch", help="print archived block(s) as canonical JSON, one per line"
    )
    archive_fetch.add_argument(
        "source", help="run directory or archive.jsonl path"
    )
    archive_fetch.add_argument("index", type=int, help="first block index to fetch")
    archive_fetch.add_argument(
        "--stop", type=int, default=None, metavar="INDEX",
        help="fetch the half-open range [index, STOP) instead of one block",
    )
    archive_fetch.set_defaults(func=cmd_archive_fetch)

    fig4 = sub.add_parser("fig4", help="regenerate Fig. 4 (data-amount sweep)")
    fig4.add_argument("--node-counts", type=int, nargs="+", default=[10, 30, 50])
    fig4.add_argument("--rates", type=float, nargs="+", default=[1.0, 3.0])
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--json")
    fig4.add_argument("--csv")
    fig4.set_defaults(func=cmd_fig4)

    fig5 = sub.add_parser("fig5", help="regenerate Fig. 5 (placement comparison)")
    fig5.add_argument("--node-counts", type=int, nargs="+", default=[10, 30, 50])
    fig5.add_argument("--seed", type=int, default=0)
    fig5.add_argument("--json")
    fig5.add_argument("--csv")
    fig5.set_defaults(func=cmd_fig5)

    live = sub.add_parser(
        "live", help="run the protocol over real TCP sockets on localhost"
    )
    live_sub = live.add_subparsers(dest="live_command", required=True)

    def _live_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=8)
        p.add_argument("--minutes", type=float, default=10.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--rate", type=float, default=1.0, help="data items per minute"
        )
        p.add_argument("--solver", default="greedy",
                       choices=["greedy", "local_search", "lp_rounding", "random"])
        p.add_argument("--block-interval", type=float, default=60.0)
        p.add_argument(
            "--time-scale", type=float, default=0.02,
            help="wall seconds per simulated second (default 0.02 = 50x)",
        )
        p.add_argument(
            "--base-port", type=int, default=0,
            help="first TCP port (node i listens on base+i); 0 = ephemeral",
        )

    live_run = live_sub.add_parser(
        "run", help="N live nodes on localhost driving the seeded workload"
    )
    _live_common(live_run)
    live_run.add_argument(
        "--procs", action="store_true",
        help="one OS process per node instead of asyncio tasks",
    )
    live_run.add_argument(
        "--start-lead", type=float, default=8.0, metavar="SECONDS",
        help="--procs only: wall seconds for all node processes to boot "
             "and mesh up before logical t=0 (default 8)",
    )
    live_run.add_argument(
        "--kill", type=int, metavar="NODE",
        help="kill this node mid-run and restart it (reconnect + resync drill)",
    )
    live_run.add_argument(
        "--kill-at", type=float, default=3.0, metavar="MINUTES",
        help="simulated minutes into the run to kill the node (default 3)",
    )
    live_run.add_argument(
        "--kill-down", type=float, default=2.0, metavar="MINUTES",
        help="simulated minutes the node stays down (default 2)",
    )
    live_run.add_argument("--json", help="write the run record to this JSON file")
    live_run.add_argument(
        "--obs", metavar="DIR",
        help="enable observability: trace, metrics, timeline, and verdict in DIR",
    )
    live_run.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
        help="timeline for the exported trace: real (wall) or simulated time",
    )
    live_run.add_argument(
        "--obs-sample", type=float, metavar="SECONDS",
        help="simulated seconds between protocol-timeline samples "
             "(default: the expected block interval)",
    )
    _telemetry_flags(live_run)
    live_run.set_defaults(func=cmd_live_run)

    live_parity = live_sub.add_parser(
        "parity",
        help="run the same seed on simnet and live; exit 1 unless the "
             "chain digests match",
    )
    _live_common(live_parity)
    live_parity.add_argument("--json", help="write the parity report to this file")
    live_parity.set_defaults(func=cmd_live_parity)

    live_node = live_sub.add_parser(
        "node", help="internal: host one node of a --procs cluster"
    )
    _live_common(live_node)
    live_node.add_argument("--node-id", type=int, required=True)
    live_node.add_argument(
        "--start-at", type=float, required=True,
        help="shared epoch instant at which logical t=0 begins",
    )
    live_node.add_argument(
        "--obs", metavar="DIR",
        help="per-process observability artefacts (origin n{node-id})",
    )
    live_node.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
    )
    live_node.add_argument("--obs-sample", type=float, metavar="SECONDS")
    _telemetry_flags(live_node)
    live_node.set_defaults(func=cmd_live_node)

    chaos = sub.add_parser(
        "chaos", help="seeded Byzantine fault-injection scenarios"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="run one adversarial scenario and emit a safety/liveness verdict",
    )
    chaos_run.add_argument("--nodes", type=int, default=8)
    chaos_run.add_argument("--minutes", type=float, default=10.0)
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument(
        "--fabric", choices=["sim", "live"], default="sim",
        help="simulator (deterministic) or real sockets on localhost",
    )
    chaos_run.add_argument(
        "--adversary", action="append", metavar="TYPE=ID[,ID...]",
        help="plant adversaries: equivocator, spammer, poisoner, tamperer, "
             "or flooder at the given node ids (repeatable)",
    )
    chaos_run.add_argument(
        "--start", type=float, default=0.0, metavar="MINUTES",
        help="minutes into the run the misbehavior switches on (default 0)",
    )
    chaos_run.add_argument(
        "--stop", type=float, default=None, metavar="MINUTES",
        help="minutes into the run the misbehavior switches off "
             "(default: active to the end)",
    )
    chaos_run.add_argument("--rate", type=float, default=1.0,
                           help="data items per minute")
    chaos_run.add_argument("--block-interval", type=float, default=60.0)
    chaos_run.add_argument(
        "--verify-signatures", action="store_true",
        help="enable metadata signature verification (catches the "
             "tamperer's signature-breaking variant)",
    )
    chaos_run.add_argument(
        "--churn", type=float, default=None, metavar="FRACTION",
        help="sim only: random churn over this fraction of nodes",
    )
    chaos_run.add_argument(
        "--partition", metavar="AT:HEAL",
        help="sim only: partition the network in half between these minutes",
    )
    chaos_run.add_argument(
        "--kill", type=int, default=None, metavar="NODE",
        help="live only: kill this node mid-run and restart it",
    )
    chaos_run.add_argument("--kill-at", type=float, default=3.0,
                           metavar="MINUTES")
    chaos_run.add_argument("--kill-down", type=float, default=2.0,
                           metavar="MINUTES")
    chaos_run.add_argument(
        "--time-scale", type=float, default=0.02,
        help="live only: wall seconds per simulated second (default 0.02)",
    )
    chaos_run.add_argument(
        "--json", metavar="PATH", help="also write the verdict to this file"
    )
    chaos_run.add_argument(
        "--obs", metavar="DIR",
        help="enable observability: trace, metrics, timeline, monitor "
             "verdict, and chaos_verdict.json in DIR",
    )
    chaos_run.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
        help="timeline for the exported trace: real (wall) or simulated time",
    )
    chaos_run.add_argument(
        "--obs-sample", type=float, metavar="SECONDS",
        help="simulated seconds between protocol-timeline samples "
             "(default: the expected block interval)",
    )
    chaos_run.set_defaults(func=cmd_chaos_run)

    fed = sub.add_parser(
        "fed", help="hierarchical federation: K sharded clusters under a fog tier"
    )
    fed_sub = fed.add_subparsers(dest="fed_command", required=True)

    def _fed_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--clusters", type=int, default=4)
        p.add_argument("--nodes", type=int, default=8,
                       help="nodes per cluster")
        p.add_argument("--minutes", type=float, default=10.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--super-peers", type=int, default=2,
                       help="fog super-peers replicating the directory")
        p.add_argument("--rate", type=float, default=1.0,
                       help="data items per minute per cluster")
        p.add_argument("--block-interval", type=float, default=60.0)
        p.add_argument(
            "--obs", metavar="DIR",
            help="enable observability: trace, metrics, per-cluster timeline, "
                 "and monitor verdict in DIR",
        )
        p.add_argument(
            "--obs-timebase", choices=["wall", "sim"], default="wall",
            help="timeline for the exported trace: real (wall) or simulated time",
        )
        p.add_argument(
            "--obs-sample", type=float, metavar="SECONDS",
            help="simulated seconds between protocol-timeline samples "
                 "(default: the expected block interval)",
        )

    fed_run = fed_sub.add_parser(
        "run", help="run one federated experiment (all clusters on one engine)"
    )
    _fed_common(fed_run)
    _lifecycle_flags(fed_run)
    fed_run.add_argument("--json", help="write the aggregate record to this file")
    fed_run.add_argument(
        "--persist", metavar="DIR",
        help="make the run durable: federated snapshots in DIR",
    )
    fed_run.add_argument(
        "--stop-after", type=float, metavar="SECONDS",
        help="pause cleanly after this much simulated time (requires --persist)",
    )
    fed_run.add_argument(
        "--snapshot-every", type=float, default=120.0, metavar="SECONDS",
        help="simulated seconds between snapshots (default 120)",
    )
    _telemetry_flags(fed_run)
    fed_run.set_defaults(func=cmd_fed_run)

    fed_resume = fed_sub.add_parser(
        "resume", help="continue a killed federated run from its last snapshot"
    )
    fed_resume.add_argument("directory", help="run directory from `fed run --persist`")
    fed_resume.add_argument(
        "--stop-after", type=float, metavar="SECONDS",
        help="pause again after this much additional simulated time",
    )
    fed_resume.add_argument(
        "--snapshot-every", type=float, default=120.0, metavar="SECONDS",
        help="simulated seconds between snapshots (default 120)",
    )
    fed_resume.add_argument("--json", help="write the aggregate record to this file")
    fed_resume.add_argument(
        "--obs", metavar="DIR",
        help="enable observability for the resumed segment",
    )
    fed_resume.add_argument(
        "--obs-timebase", choices=["wall", "sim"], default="wall",
        help="timeline for the exported trace: real (wall) or simulated time",
    )
    fed_resume.add_argument(
        "--obs-sample", type=float, metavar="SECONDS",
        help="simulated seconds between protocol-timeline samples",
    )
    fed_resume.set_defaults(func=cmd_fed_resume)

    fed_chaos = fed_sub.add_parser(
        "chaos",
        help="turn whole clusters Byzantine and check the blast radius",
    )
    _fed_common(fed_chaos)
    fed_chaos.add_argument(
        "--byzantine-cluster", type=int, action="append", metavar="ID",
        help="cluster whose every node runs the adversary (repeatable)",
    )
    fed_chaos.add_argument(
        "--behavior", default="equivocator",
        help="adversary behavior for Byzantine clusters (default equivocator)",
    )
    fed_chaos.add_argument(
        "--start", type=float, default=2.0, metavar="MINUTES",
        help="minutes into the run the misbehavior switches on (default 2)",
    )
    fed_chaos.add_argument(
        "--stop", type=float, default=None, metavar="MINUTES",
        help="minutes into the run the misbehavior switches off "
             "(default: active to the end)",
    )
    fed_chaos.add_argument(
        "--fog-behavior", default=None, metavar="NAME",
        help="fog-tier adversary behavior (summary_poisoner, "
             "gossip_suppressor, version_inflator, gateway_tamperer)",
    )
    fed_chaos.add_argument(
        "--fog-peers", default=None, metavar="IDS",
        help="comma-separated super-peer ids running --fog-behavior "
             "(default 0)",
    )
    fed_chaos.add_argument(
        "--json", metavar="PATH", help="also write the verdict to this file"
    )
    fed_chaos.set_defaults(func=cmd_fed_chaos)

    trace = sub.add_parser(
        "trace", help="inspect/convert observability artefacts from `run --obs`"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summary = trace_sub.add_parser(
        "summary", help="per-subsystem span totals and counters"
    )
    summary.add_argument("source", help="obs directory or trace.jsonl path")
    summary.add_argument("--top", type=int, default=20, help="rows to show")
    summary.set_defaults(func=cmd_trace_summary)

    export = trace_sub.add_parser(
        "export", help="convert a trace to a strict Chrome-trace JSON array"
    )
    export.add_argument("source", help="obs directory or trace.jsonl path")
    export.add_argument("--out", required=True, help="output .json path")
    export.set_defaults(func=cmd_trace_export)

    merge = trace_sub.add_parser(
        "merge", help="merge metrics snapshots from several runs/shards"
    )
    merge.add_argument("sources", nargs="+", help="obs dirs or metrics.json paths")
    merge.add_argument("--out", required=True, help="merged snapshot path")
    merge.add_argument(
        "--trace-out", metavar="PATH",
        help="also stitch the sources' trace files into one multi-process "
             "trace (cross-process traces linked by trace id)",
    )
    merge.set_defaults(func=cmd_trace_merge)

    flame = trace_sub.add_parser(
        "flame", help="render a folded-stacks profile as a flamegraph SVG"
    )
    flame.add_argument("source", help="obs directory or profile_folded.txt path")
    flame.add_argument("--out", required=True, help="output .svg path")
    flame.add_argument(
        "--top", type=int, default=10,
        help="also print the N hottest functions (0 = skip)",
    )
    flame.set_defaults(func=cmd_trace_flame)

    top = sub.add_parser(
        "top", help="terminal live view over a telemetry stream or endpoint"
    )
    top.add_argument(
        "source",
        help="obs directory holding telemetry.jsonl, or http://host:port",
    )
    top.add_argument(
        "--watch", type=float, nargs="?", const=2.0, default=None,
        metavar="SECONDS",
        help="refresh every SECONDS (default 2) until interrupted",
    )
    top.set_defaults(func=cmd_top)

    report = sub.add_parser(
        "report", help="render one observed run (terminal + self-contained HTML)"
    )
    report.add_argument("directory", help="obs directory from `run --obs`")
    report.add_argument(
        "--html", metavar="PATH",
        help="HTML output path (default: DIR/report.html)",
    )
    report.add_argument(
        "--no-html", action="store_true", help="terminal report only"
    )
    report.set_defaults(func=cmd_report)

    compare = sub.add_parser(
        "compare",
        help="diff two observed runs; exit 1 when the candidate regressed",
    )
    compare.add_argument("baseline", help="baseline obs directory")
    compare.add_argument("candidate", help="candidate obs directory")
    compare.add_argument(
        "--json", metavar="PATH", help="also write the comparison as JSON"
    )
    compare.set_defaults(func=cmd_compare)

    fig6 = sub.add_parser("fig6", help="regenerate Fig. 6 (PoW vs PoS battery)")
    fig6.add_argument("--minutes", type=int, default=84)
    fig6.add_argument("--difficulty", type=int, default=4)
    fig6.add_argument("--seed", type=int, default=0)
    fig6.set_defaults(func=cmd_fig6)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except PersistError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our failure.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
