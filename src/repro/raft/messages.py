"""Raft RPC message types.

Standard Raft (Ongaro & Ousterhout, USENIX ATC 2014) messages, carried over
the simulated network.  Each message knows its approximate wire size so the
transmission trace can quantify the heartbeat overhead the paper complains
about ("the approach transmits a large number of heartbeat messages",
Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

#: Traffic category used for all Raft RPCs in the transmission trace.
RAFT_CATEGORY = "raft"

#: Fixed per-RPC envelope size in bytes (term, ids, indices, checksums).
_ENVELOPE_BYTES = 64

#: Approximate serialised size of one log entry.
_ENTRY_BYTES = 128


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry: the leader's term and an opaque command."""

    term: int
    command: Any

    def wire_size(self) -> int:
        return _ENTRY_BYTES


@dataclass(frozen=True)
class RequestVote:
    """Candidate solicits a vote."""

    term: int
    candidate_id: int
    last_log_index: int
    last_log_term: int

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    vote_granted: bool
    voter_id: int

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES


@dataclass(frozen=True)
class AppendEntries:
    """Leader replicates entries; empty ``entries`` is a heartbeat."""

    term: int
    leader_id: int
    prev_log_index: int
    prev_log_term: int
    entries: Tuple[LogEntry, ...]
    leader_commit: int

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES + sum(e.wire_size() for e in self.entries)

    @property
    def is_heartbeat(self) -> bool:
        return not self.entries


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    success: bool
    follower_id: int
    #: Highest log index the follower now matches (valid when success).
    match_index: int

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES


@dataclass(frozen=True)
class InstallSnapshot:
    """Leader ships its state-machine snapshot to a lagging follower.

    ``state`` is the full applied-command list up to
    ``last_included_index`` (our state machines are small; a real system
    would chunk this).
    """

    term: int
    leader_id: int
    last_included_index: int
    last_included_term: int
    state: Tuple[Any, ...]

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES + _ENTRY_BYTES * len(self.state)


@dataclass(frozen=True)
class InstallSnapshotReply:
    term: int
    follower_id: int
    #: The snapshot index now installed (leader resumes from here + 1).
    last_included_index: int

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES
