"""The replicated log.

1-based indexing as in the Raft paper; index 0 is the empty-log sentinel
with term 0.  The log enforces the append-only discipline followers rely
on: truncation only happens through :meth:`RaftLog.overwrite_from` when a
conflicting leader entry arrives.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.raft.messages import LogEntry


class RaftLog:
    """An in-memory Raft log with snapshot-based compaction.

    After :meth:`compact_to`, entries up to ``snapshot_index`` are gone;
    their cumulative effect lives in the state-machine snapshot the node
    keeps alongside.  All public indices remain the original 1-based log
    indices.
    """

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.snapshot_index = 0
        self.snapshot_term = 0

    def __len__(self) -> int:
        """Number of entries physically retained (post-compaction)."""
        return len(self._entries)

    @property
    def last_index(self) -> int:
        return self.snapshot_index + len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self.snapshot_term

    def _position(self, index: int) -> int:
        """Physical list position of a 1-based log index."""
        return index - self.snapshot_index - 1

    def term_at(self, index: int) -> int:
        """Term of the entry at 1-based ``index``.

        Index 0 is the empty-log sentinel (term 0); the snapshot boundary
        answers with the snapshot term; compacted indices raise.
        """
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        if index < self.snapshot_index or index > self.last_index:
            raise IndexError(
                f"log index {index} unavailable "
                f"(snapshot at {self.snapshot_index}, last {self.last_index})"
            )
        return self._entries[self._position(index)].term

    def entry_at(self, index: int) -> LogEntry:
        if not (self.snapshot_index < index <= self.last_index):
            raise IndexError(f"log index {index} out of range or compacted")
        return self._entries[self._position(index)]

    def append(self, entry: LogEntry) -> int:
        """Append one entry; returns its index."""
        self._entries.append(entry)
        return self.last_index

    def entries_from(self, start_index: int) -> Tuple[LogEntry, ...]:
        """Entries at indices ≥ ``start_index`` (may be empty).

        Raises ``IndexError`` when the range starts inside the compacted
        prefix — the caller must fall back to InstallSnapshot.
        """
        if start_index < 1:
            raise IndexError("start index must be ≥ 1")
        if start_index <= self.snapshot_index:
            raise IndexError(
                f"entries before {self.snapshot_index + 1} were compacted away"
            )
        return tuple(self._entries[self._position(start_index) :])

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """AppendEntries consistency check: do we hold (prev_index, prev_term)?"""
        if prev_index == 0:
            return True
        if prev_index < self.snapshot_index or prev_index > self.last_index:
            return False
        return self.term_at(prev_index) == prev_term

    def overwrite_from(self, start_index: int, entries: Iterable[LogEntry]) -> None:
        """Install leader entries starting at ``start_index``.

        Entries that agree (same index, same term) are kept; at the first
        conflict the suffix is truncated and replaced — the Raft paper's
        step 3/4 of AppendEntries receiver behaviour.  Entries covered by
        the snapshot are skipped (they are already committed state).
        """
        index = start_index
        for entry in entries:
            if index <= self.snapshot_index:
                index += 1
                continue
            position = self._position(index)
            if position < len(self._entries):
                if self._entries[position].term != entry.term:
                    del self._entries[position:]
                    self._entries.append(entry)
            else:
                self._entries.append(entry)
            index += 1

    def compact_to(self, index: int) -> None:
        """Drop entries up to and including ``index`` (must be ≤ last)."""
        if index <= self.snapshot_index:
            return
        if index > self.last_index:
            raise IndexError("cannot compact beyond the last entry")
        term = self.term_at(index)
        del self._entries[: self._position(index) + 1]
        self.snapshot_index = index
        self.snapshot_term = term

    def install_snapshot(self, index: int, term: int) -> None:
        """Reset the log to a received snapshot point (follower side)."""
        if index <= self.snapshot_index:
            return
        if self.snapshot_index < index <= self.last_index and self.term_at(index) == term:
            # We already hold the suffix; keep it (Raft §7 receiver rule 6).
            self.compact_to(index)
            return
        self._entries = []
        self.snapshot_index = index
        self.snapshot_term = term

    def commands(self, up_to_index: Optional[int] = None) -> List[Any]:
        """Commands of retained entries up to ``up_to_index``.

        Only post-snapshot entries are available; compacted commands live
        in the state-machine snapshot.
        """
        end = self.last_index if up_to_index is None else up_to_index
        count = max(0, end - self.snapshot_index)
        return [entry.command for entry in self._entries[:count]]

    def is_at_least_as_up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Raft §5.4.1 election restriction, from the *candidate's* view.

        Returns True when a log with (other_last_index, other_last_term) is
        at least as up to date as this one — i.e. this node may grant its
        vote.
        """
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index
