"""The Raft replicated state machine node.

A faithful single-process Raft (Ongaro & Ousterhout 2014, Figure 2) running
on the simulated network: leader election with randomised timeouts, log
replication with the consistency check, commitment under the current-term
rule (§5.4.2), and state-machine application in log order.

The paper's system uses Raft for "general information consensus" — spreading
membership and mobility-range announcements — while the blockchain itself
reaches consensus via PoS.  The node is protocol-complete regardless, and
its heartbeat traffic is visible in the transmission trace, quantifying the
overhead the paper's future-work section calls out.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.raft.log import RaftLog
from repro.raft.messages import (
    RAFT_CATEGORY,
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.obs import runtime as _obs
from repro.simnet.engine import EventEngine, EventHandle
from repro.simnet.transport import Network

#: Election timeout window in seconds (randomised per Raft §5.2).  Scaled up
#: from the canonical 150–300 ms to clear multi-hop delivery latencies.
DEFAULT_ELECTION_TIMEOUT = (0.30, 0.60)

#: Leader heartbeat interval in seconds.
DEFAULT_HEARTBEAT_INTERVAL = 0.10


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class RaftNode:
    """One Raft participant.

    Parameters
    ----------
    node_id, peers:
        This node's network id and the ids of all *other* cluster members.
    network, engine:
        The shared transport and event loop.
    apply_callback:
        Called as ``apply_callback(node_id, index, command)`` for each
        committed entry, in index order — the state machine.
    """

    def __init__(
        self,
        node_id: int,
        peers: List[int],
        network: Network,
        engine: EventEngine,
        apply_callback: Optional[Callable[[int, int, Any], None]] = None,
        election_timeout: tuple = DEFAULT_ELECTION_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        compaction_threshold: Optional[int] = None,
    ):
        if node_id in peers:
            raise ValueError("peers must not include the node itself")
        self.node_id = node_id
        self.peers = list(peers)
        self.network = network
        self.engine = engine
        self.apply_callback = apply_callback
        self._election_timeout = election_timeout
        self._heartbeat_interval = heartbeat_interval
        #: Compact the log once it retains more than this many entries
        #: (None disables automatic snapshotting).
        self.compaction_threshold = compaction_threshold

        # Persistent state (would be stable storage on a real device).
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.log = RaftLog()

        # Volatile state.
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_id: Optional[int] = None
        #: Applied commands in order — the state machine.  Survives log
        #: compaction (it *is* the snapshot content).
        self._applied_commands: List[Any] = []

        # Leader state.
        self.next_index: Dict[int, int] = {}
        self.match_index: Dict[int, int] = {}

        self._votes_received: set = set()
        self._election_timer: Optional[EventHandle] = None
        self._heartbeat_timer: Optional[EventHandle] = None
        self._stopped = False

        network.register(node_id, self._on_message)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Arm the first election timeout."""
        self._reset_election_timer()

    def stop(self) -> None:
        """Halt all timers and demote (node crash / shutdown)."""
        self._stopped = True
        self.role = Role.FOLLOWER
        if self._election_timer is not None:
            self._election_timer.cancel()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    def committed_commands(self) -> List[Any]:
        return list(self._applied_commands)

    def take_snapshot(self) -> None:
        """Compact the log up to the last applied entry (Raft §7)."""
        if self.last_applied > self.log.snapshot_index:
            self.log.compact_to(self.last_applied)

    # -- timers ----------------------------------------------------------------------

    def _random_election_timeout(self) -> float:
        low, high = self._election_timeout
        return self.engine.rng.uniform(low, high)

    def _reset_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        if self._stopped:
            return
        self._election_timer = self.engine.schedule(
            self._random_election_timeout(), self._on_election_timeout
        )

    def _schedule_heartbeat(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        if self._stopped:
            return
        self._heartbeat_timer = self.engine.schedule(
            self._heartbeat_interval, self._on_heartbeat_due
        )

    # -- elections ---------------------------------------------------------------------

    def _on_election_timeout(self) -> None:
        if self._stopped or self.role is Role.LEADER:
            return
        with _obs.span(
            "raft.election", "raft", node=self.node_id, term=self.current_term + 1
        ):
            _obs.add("raft.elections_started")
            self.role = Role.CANDIDATE
            self.current_term += 1
            self.voted_for = self.node_id
            self.leader_id = None
            self._votes_received = {self.node_id}
            request = RequestVote(
                term=self.current_term,
                candidate_id=self.node_id,
                last_log_index=self.log.last_index,
                last_log_term=self.log.last_term,
            )
            for peer in self.peers:
                self._send(peer, request)
            self._reset_election_timer()
            self._maybe_win_election()  # single-node cluster wins immediately

    def _maybe_win_election(self) -> None:
        majority = (len(self.peers) + 1) // 2 + 1
        if self.role is Role.CANDIDATE and len(self._votes_received) >= majority:
            self._become_leader()

    def _become_leader(self) -> None:
        _obs.add("raft.leaders_elected")
        if self.leader_id != self.node_id:
            # Leadership actually moved (vs. the same node re-winning after
            # a term bump) — the signal the leader-flap monitor watches.
            _obs.add("raft.leader_changes")
        _obs.gauge_set("raft.term", self.current_term)
        self.role = Role.LEADER
        self.leader_id = self.node_id
        self.next_index = {peer: self.log.last_index + 1 for peer in self.peers}
        self.match_index = {peer: 0 for peer in self.peers}
        if self._election_timer is not None:
            self._election_timer.cancel()
        self._broadcast_append_entries()
        self._schedule_heartbeat()

    def _on_heartbeat_due(self) -> None:
        if self._stopped or self.role is not Role.LEADER:
            return
        self._broadcast_append_entries()
        self._schedule_heartbeat()

    # -- replication ------------------------------------------------------------------

    def submit(self, command: Any) -> Optional[int]:
        """Append a client command (leader only).

        Returns the entry's log index, or None if this node is not leader
        (the caller should redirect to :attr:`leader_id`).
        """
        if self.role is not Role.LEADER:
            return None
        index = self.log.append(LogEntry(term=self.current_term, command=command))
        self._advance_commit_index()  # single-node clusters commit at once
        self._broadcast_append_entries()
        return index

    def _broadcast_append_entries(self) -> None:
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: int) -> None:
        next_idx = self.next_index.get(peer, self.log.last_index + 1)
        if next_idx <= self.log.snapshot_index:
            # The entries the peer needs were compacted: ship the snapshot.
            self._send(
                peer,
                InstallSnapshot(
                    term=self.current_term,
                    leader_id=self.node_id,
                    last_included_index=self.log.snapshot_index,
                    last_included_term=self.log.snapshot_term,
                    state=tuple(self._applied_commands[: self.log.snapshot_index]),
                ),
            )
            return
        prev_index = next_idx - 1
        prev_term = self.log.term_at(prev_index) if prev_index <= self.log.last_index else 0
        entries = self.log.entries_from(next_idx) if next_idx <= self.log.last_index else ()
        message = AppendEntries(
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        )
        if _obs.is_enabled():
            _obs.add("raft.append_entries_sent")
            if entries:
                with _obs.span(
                    "raft.replicate",
                    "raft",
                    leader=self.node_id,
                    peer=peer,
                    entries=len(entries),
                ):
                    self._send(peer, message)
                _obs.observe("raft.entries_per_append", len(entries))
                return
        self._send(peer, message)

    # -- message handling ----------------------------------------------------------------

    def _send(self, peer: int, message: Any) -> None:
        self.network.send(
            self.node_id, peer, message, message.wire_size(), RAFT_CATEGORY
        )

    def _observe_term(self, term: int) -> None:
        """Any RPC with a newer term demotes us (Raft §5.1)."""
        if term > self.current_term:
            self.current_term = term
            _obs.gauge_set("raft.term", term)
            self.voted_for = None
            if self.role is not Role.FOLLOWER:
                self.role = Role.FOLLOWER
                if self._heartbeat_timer is not None:
                    self._heartbeat_timer.cancel()
                self._reset_election_timer()

    def _on_message(self, source: int, message: Any, category: str) -> None:
        if self._stopped or category != RAFT_CATEGORY:
            return
        if isinstance(message, RequestVote):
            self._handle_request_vote(message)
        elif isinstance(message, RequestVoteReply):
            self._handle_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._handle_append_entries(message)
        elif isinstance(message, AppendEntriesReply):
            self._handle_append_reply(message)
        elif isinstance(message, InstallSnapshot):
            self._handle_install_snapshot(message)
        elif isinstance(message, InstallSnapshotReply):
            self._handle_install_snapshot_reply(message)

    def _handle_request_vote(self, request: RequestVote) -> None:
        self._observe_term(request.term)
        grant = False
        if request.term == self.current_term:
            not_voted = self.voted_for in (None, request.candidate_id)
            up_to_date = self.log.is_at_least_as_up_to_date(
                request.last_log_index, request.last_log_term
            )
            if not_voted and up_to_date:
                grant = True
                self.voted_for = request.candidate_id
                self._reset_election_timer()
        reply = RequestVoteReply(
            term=self.current_term, vote_granted=grant, voter_id=self.node_id
        )
        self._send(request.candidate_id, reply)

    def _handle_vote_reply(self, reply: RequestVoteReply) -> None:
        self._observe_term(reply.term)
        if (
            self.role is Role.CANDIDATE
            and reply.term == self.current_term
            and reply.vote_granted
        ):
            self._votes_received.add(reply.voter_id)
            self._maybe_win_election()

    def _handle_append_entries(self, message: AppendEntries) -> None:
        self._observe_term(message.term)
        if message.term < self.current_term:
            self._send(
                message.leader_id,
                AppendEntriesReply(
                    term=self.current_term,
                    success=False,
                    follower_id=self.node_id,
                    match_index=0,
                ),
            )
            return
        # Valid leader for this term.
        self.leader_id = message.leader_id
        if self.role is Role.CANDIDATE:
            self.role = Role.FOLLOWER
        self._reset_election_timer()

        if not self.log.matches(message.prev_log_index, message.prev_log_term):
            self._send(
                message.leader_id,
                AppendEntriesReply(
                    term=self.current_term,
                    success=False,
                    follower_id=self.node_id,
                    match_index=0,
                ),
            )
            return
        if message.entries:
            self.log.overwrite_from(message.prev_log_index + 1, message.entries)
        if message.leader_commit > self.commit_index:
            self.commit_index = min(message.leader_commit, self.log.last_index)
            self._apply_committed()
        self._send(
            message.leader_id,
            AppendEntriesReply(
                term=self.current_term,
                success=True,
                follower_id=self.node_id,
                match_index=message.prev_log_index + len(message.entries),
            ),
        )

    def _handle_append_reply(self, reply: AppendEntriesReply) -> None:
        self._observe_term(reply.term)
        if self.role is not Role.LEADER or reply.term != self.current_term:
            return
        peer = reply.follower_id
        if reply.success:
            self.match_index[peer] = max(self.match_index.get(peer, 0), reply.match_index)
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit_index()
        else:
            # Back off and retry with an earlier prefix.
            self.next_index[peer] = max(1, self.next_index.get(peer, 1) - 1)
            self._send_append_entries(peer)

    def _handle_install_snapshot(self, message: InstallSnapshot) -> None:
        self._observe_term(message.term)
        if message.term < self.current_term:
            return
        self.leader_id = message.leader_id
        if self.role is Role.CANDIDATE:
            self.role = Role.FOLLOWER
        self._reset_election_timer()
        if message.last_included_index > self.log.snapshot_index:
            self.log.install_snapshot(
                message.last_included_index, message.last_included_term
            )
            # Fast-forward the state machine over the snapshot's commands.
            if message.last_included_index > self.last_applied:
                for index in range(self.last_applied + 1, message.last_included_index + 1):
                    command = message.state[index - 1]
                    self._applied_commands.append(command)
                    if self.apply_callback is not None:
                        self.apply_callback(self.node_id, index, command)
                self.last_applied = message.last_included_index
            self.commit_index = max(self.commit_index, message.last_included_index)
        self._send(
            message.leader_id,
            InstallSnapshotReply(
                term=self.current_term,
                follower_id=self.node_id,
                last_included_index=self.log.snapshot_index,
            ),
        )

    def _handle_install_snapshot_reply(self, reply: InstallSnapshotReply) -> None:
        self._observe_term(reply.term)
        if self.role is not Role.LEADER or reply.term != self.current_term:
            return
        peer = reply.follower_id
        self.match_index[peer] = max(
            self.match_index.get(peer, 0), reply.last_included_index
        )
        self.next_index[peer] = self.match_index[peer] + 1

    def _advance_commit_index(self) -> None:
        """Commit the highest index replicated on a majority in our term."""
        for index in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(index) != self.current_term:
                break  # only current-term entries commit by counting (§5.4.2)
            replicas = 1 + sum(
                1 for peer in self.peers if self.match_index.get(peer, 0) >= index
            )
            if replicas >= (len(self.peers) + 1) // 2 + 1:
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            self._applied_commands.append(entry.command)
            _obs.add("raft.entries_applied")
            if self.apply_callback is not None:
                self.apply_callback(self.node_id, self.last_applied, entry.command)
        if (
            self.compaction_threshold is not None
            and len(self.log) > self.compaction_threshold
        ):
            self.take_snapshot()
