"""Raft cluster harness.

Convenience wrapper that wires a set of :class:`~repro.raft.node.RaftNode`
instances onto a shared simulated network, with helpers used by the edge
blockchain (general-information consensus) and by the Raft test-suite:
waiting for a leader, submitting commands through whoever leads, and
inspecting committed state across the cluster.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.raft.node import RaftNode
from repro.simnet.engine import EventEngine
from repro.simnet.transport import Network


class RaftCluster:
    """A set of Raft nodes sharing one network and event engine."""

    def __init__(
        self,
        node_ids: List[int],
        network: Network,
        engine: EventEngine,
        on_apply: Optional[Callable[[int, int, Any], None]] = None,
        **node_kwargs,
    ):
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        self.engine = engine
        self.network = network
        self._applied: Dict[int, List[Tuple[int, Any]]] = {n: [] for n in node_ids}
        self._external_apply = on_apply
        self.nodes: Dict[int, RaftNode] = {}
        for node_id in node_ids:
            peers = [other for other in node_ids if other != node_id]
            self.nodes[node_id] = RaftNode(
                node_id=node_id,
                peers=peers,
                network=network,
                engine=engine,
                apply_callback=self._record_apply,
                **node_kwargs,
            )

    def _record_apply(self, node_id: int, index: int, command: Any) -> None:
        self._applied[node_id].append((index, command))
        if self._external_apply is not None:
            self._external_apply(node_id, index, command)

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()

    # -- helpers -------------------------------------------------------------------

    def leader(self) -> Optional[RaftNode]:
        """The current leader with the highest term, if any."""
        leaders = [
            n
            for n in self.nodes.values()
            if n.is_leader and self.network.is_online(n.node_id)
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term)

    def wait_for_leader(self, timeout: float = 10.0) -> RaftNode:
        """Advance simulation until exactly one live leader exists."""
        deadline = self.engine.now + timeout
        step = 0.05
        while self.engine.now < deadline:
            self.engine.run_until(min(self.engine.now + step, deadline))
            node = self.leader()
            if node is not None:
                return node
        raise TimeoutError("no Raft leader elected within the timeout")

    def submit_via_leader(self, command: Any, timeout: float = 10.0) -> int:
        """Submit a command through the current leader (electing one first)."""
        leader = self.wait_for_leader(timeout)
        index = leader.submit(command)
        if index is None:  # leadership changed under us; retry once
            leader = self.wait_for_leader(timeout)
            index = leader.submit(command)
        if index is None:
            raise RuntimeError("could not submit command: no stable leader")
        return index

    def wait_for_commit(self, index: int, timeout: float = 10.0) -> None:
        """Advance simulation until a majority has committed ``index``."""
        deadline = self.engine.now + timeout
        step = 0.05
        majority = len(self.nodes) // 2 + 1
        while self.engine.now < deadline:
            self.engine.run_until(min(self.engine.now + step, deadline))
            committed = sum(
                1 for n in self.nodes.values() if n.commit_index >= index
            )
            if committed >= majority:
                return
        raise TimeoutError(f"log index {index} not committed within the timeout")

    def applied_commands(self, node_id: int) -> List[Any]:
        """Commands applied by ``node_id``'s state machine, in order."""
        return [command for _, command in self._applied[node_id]]

    def crash(self, node_id: int) -> None:
        """Stop a node and take it off the network."""
        self.nodes[node_id].stop()
        self.network.set_online(node_id, False)

    def logs_consistent(self) -> bool:
        """Check the Log Matching property over all committed prefixes."""
        reference: Optional[List[Any]] = None
        for node in self.nodes.values():
            commands = node.committed_commands()
            if reference is None or len(commands) > len(reference):
                if reference is not None and commands[: len(reference)] != reference:
                    return False
                reference = commands
            elif commands != reference[: len(commands)]:
                return False
        return True
