"""Raft consensus substrate (general-information consensus layer).

The paper's system "partly use[s] the raft algorithm" for consensus on
general information (membership, mobility ranges) alongside the PoS chain.
This is a complete Raft: randomised leader election, log replication with
the consistency check, §5.4.2-safe commitment, and in-order application.
"""

from repro.raft.cluster import RaftCluster
from repro.raft.log import RaftLog
from repro.raft.messages import (
    RAFT_CATEGORY,
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.node import (
    DEFAULT_ELECTION_TIMEOUT,
    DEFAULT_HEARTBEAT_INTERVAL,
    RaftNode,
    Role,
)

__all__ = [
    "RaftNode",
    "RaftCluster",
    "RaftLog",
    "Role",
    "LogEntry",
    "RequestVote",
    "RequestVoteReply",
    "AppendEntries",
    "AppendEntriesReply",
    "InstallSnapshot",
    "InstallSnapshotReply",
    "RAFT_CATEGORY",
    "DEFAULT_ELECTION_TIMEOUT",
    "DEFAULT_HEARTBEAT_INTERVAL",
]
