"""The SWIM failure-detector / membership node.

Protocol per round (every ``protocol_period`` seconds):

1. Pick the next member from a randomised round-robin schedule; ``Ping`` it.
2. No ``Ack`` within ``ping_timeout``?  Ask ``indirect_probes`` other
   members to ``PingReq`` the target.
3. Still nothing by the end of the period?  Mark the target SUSPECT and
   gossip that.  Suspicion that survives ``suspicion_timeout`` becomes DEAD.

Every message piggybacks pending membership updates (bounded batch,
bounded retransmissions) — that is the entire dissemination mechanism; no
broadcasts, no per-follower heartbeats.  Per-node load is O(1) per period
regardless of cluster size, which is exactly the overhead argument against
Raft's heartbeats the comparison benchmark quantifies.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.membership.messages import (
    SWIM_CATEGORY,
    Ack,
    MembershipUpdate,
    MemberStatus,
    Ping,
    PingReq,
)
from repro.membership.state import DisseminationBuffer, MembershipTable
from repro.simnet.engine import EventEngine, EventHandle
from repro.simnet.transport import Network

#: Default protocol timing (seconds) — tuned for the 10 ms/hop testbed.
DEFAULT_PROTOCOL_PERIOD = 1.0
DEFAULT_PING_TIMEOUT = 0.3
DEFAULT_SUSPICION_TIMEOUT = 5.0
DEFAULT_INDIRECT_PROBES = 3


class SwimNode:
    """One SWIM member."""

    def __init__(
        self,
        node_id: int,
        members: List[int],
        network: Network,
        engine: EventEngine,
        protocol_period: float = DEFAULT_PROTOCOL_PERIOD,
        ping_timeout: float = DEFAULT_PING_TIMEOUT,
        suspicion_timeout: float = DEFAULT_SUSPICION_TIMEOUT,
        indirect_probes: int = DEFAULT_INDIRECT_PROBES,
        rng: Optional[random.Random] = None,
    ):
        self.node_id = node_id
        self.network = network
        self.engine = engine
        #: Source of all protocol randomness (round desync, probe-schedule
        #: and proxy shuffles).  Defaults to the engine's shared stream;
        #: federated runs hand every cluster its own seeded ``Random`` so
        #: K clusters forming concurrently stay deterministic from one
        #: root seed regardless of event interleaving.
        self.rng = rng if rng is not None else engine.rng
        self.protocol_period = protocol_period
        self.ping_timeout = ping_timeout
        self.suspicion_timeout = suspicion_timeout
        self.indirect_probes = indirect_probes

        self.table = MembershipTable(node_id, members, now=engine.now)
        self.buffer = DisseminationBuffer()
        self._sequence = 0
        #: sequence → target awaiting a direct/indirect ack.
        self._awaiting: Dict[int, int] = {}
        #: proxy sequence → (original requester, original sequence).
        self._proxy_requests: Dict[int, tuple] = {}
        self._probe_schedule: List[int] = []
        self._timer: Optional[EventHandle] = None
        self._stopped = False

        network.register(node_id, self._on_message)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        # Desynchronise rounds across nodes.
        offset = self.rng.uniform(0, self.protocol_period)
        self._timer = self.engine.schedule(offset, self._protocol_round)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()

    # -- protocol round -------------------------------------------------------------

    def _next_probe_target(self) -> Optional[int]:
        """Randomised round-robin over currently-alive members (SWIM §4.3)."""
        candidates = self.table.alive_members()
        if not candidates:
            return None
        self._probe_schedule = [m for m in self._probe_schedule if m in candidates]
        if not self._probe_schedule:
            schedule = list(candidates)
            self.rng.shuffle(schedule)
            self._probe_schedule = schedule
        return self._probe_schedule.pop()

    def _protocol_round(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        for update in self.table.expire_suspects(now, self.suspicion_timeout):
            self.buffer.push(update)
        target = self._next_probe_target()
        if target is not None:
            self._sequence += 1
            sequence = self._sequence
            self._awaiting[sequence] = target
            self._send(target, Ping(self.node_id, sequence, self.buffer.take()))
            self.engine.schedule(self.ping_timeout, self._direct_timeout, sequence)
        self._timer = self.engine.schedule(self.protocol_period, self._protocol_round)

    def _direct_timeout(self, sequence: int) -> None:
        target = self._awaiting.get(sequence)
        if target is None or self._stopped:
            return  # acked in time
        proxies = [
            member
            for member in self.table.alive_members()
            if member != target
        ]
        self.rng.shuffle(proxies)
        for proxy in proxies[: self.indirect_probes]:
            self._send(
                proxy,
                PingReq(self.node_id, sequence, target, self.buffer.take()),
            )
        self.engine.schedule(
            self.protocol_period - self.ping_timeout, self._indirect_timeout, sequence
        )

    def _indirect_timeout(self, sequence: int) -> None:
        target = self._awaiting.pop(sequence, None)
        if target is None or self._stopped:
            return  # someone acked meanwhile
        record = self.table.record(target)
        if record.status is not MemberStatus.ALIVE:
            return
        suspicion = MembershipUpdate(
            member=target, status=MemberStatus.SUSPECT, incarnation=record.incarnation
        )
        applied = self.table.apply(suspicion, self.engine.now)
        if applied is not None:
            self.buffer.push(applied)

    # -- message handling -------------------------------------------------------------

    def _send(self, target: int, message: Any) -> None:
        self.network.send(
            self.node_id, target, message, message.wire_size(), SWIM_CATEGORY
        )

    def _absorb(self, updates) -> None:
        for update in updates:
            applied = self.table.apply(update, self.engine.now)
            if applied is not None:
                self.buffer.push(applied)

    def _on_message(self, source: int, message: Any, category: str) -> None:
        if self._stopped or category != SWIM_CATEGORY:
            return
        if isinstance(message, Ping):
            self._absorb(message.updates)
            self._send(
                message.sender,
                Ack(self.node_id, message.sequence, self.node_id, self.buffer.take()),
            )
        elif isinstance(message, PingReq):
            self._absorb(message.updates)
            # Probe the target on the requester's behalf; remember who asked.
            self._sequence += 1
            proxy_sequence = self._sequence
            self._proxy_requests[proxy_sequence] = (message.sender, message.sequence)
            self._send(
                message.target,
                Ping(self.node_id, proxy_sequence, self.buffer.take()),
            )
        elif isinstance(message, Ack):
            self._absorb(message.updates)
            if message.sequence in self._awaiting:
                # Direct (or relayed) ack for our probe: target is alive.
                target = self._awaiting.pop(message.sequence)
                alive = MembershipUpdate(
                    member=target,
                    status=MemberStatus.ALIVE,
                    incarnation=self.table.record(target).incarnation,
                )
                applied = self.table.apply(alive, self.engine.now)
                if applied is not None:
                    self.buffer.push(applied)
            elif message.sequence in self._proxy_requests:
                # We probed on someone else's behalf: relay the good news.
                requester, original_sequence = self._proxy_requests.pop(
                    message.sequence
                )
                self._send(
                    requester,
                    Ack(
                        self.node_id,
                        original_sequence,
                        message.subject,
                        self.buffer.take(),
                    ),
                )

