"""SWIM protocol messages.

The paper's future work calls for "a new consensus algorithm for edge
environments with less message overhead" than Raft's heartbeat stream
(Section VII).  We implement SWIM (Das et al., DSN 2002): constant
per-node message load regardless of cluster size, with membership updates
piggybacked on the failure-detection traffic instead of broadcast.

Wire sizes are small and constant — the point of the comparison bench
against Raft's heartbeats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

#: Traffic category for all SWIM messages.
SWIM_CATEGORY = "swim"

#: Fixed envelope per message.
_ENVELOPE_BYTES = 48

#: Bytes per piggybacked membership update.
_UPDATE_BYTES = 16


class MemberStatus(enum.Enum):
    """Lifecycle of a member as seen by the protocol."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class MembershipUpdate:
    """One gossiped membership fact: (member, status, incarnation).

    Incarnation numbers implement SWIM's refutation: only the member
    itself increments its incarnation, so an ALIVE update with a higher
    incarnation overrides any SUSPECT rumour about an older incarnation.
    """

    member: int
    status: MemberStatus
    incarnation: int

    def wire_size(self) -> int:
        return _UPDATE_BYTES


@dataclass(frozen=True)
class Ping:
    """Direct probe; carries piggybacked updates."""

    sender: int
    sequence: int
    updates: Tuple[MembershipUpdate, ...] = ()

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES + sum(u.wire_size() for u in self.updates)


@dataclass(frozen=True)
class Ack:
    """Probe response; carries piggybacked updates.

    ``subject`` identifies whose liveness this ack attests (differs from
    the responder when the ack answers an indirect probe).
    """

    sender: int
    sequence: int
    subject: int
    updates: Tuple[MembershipUpdate, ...] = ()

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES + sum(u.wire_size() for u in self.updates)


@dataclass(frozen=True)
class PingReq:
    """Indirect probe request: "please ping ``target`` for me"."""

    sender: int
    sequence: int
    target: int
    updates: Tuple[MembershipUpdate, ...] = ()

    def wire_size(self) -> int:
        return _ENVELOPE_BYTES + sum(u.wire_size() for u in self.updates)
