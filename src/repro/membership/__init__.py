"""SWIM-style membership substrate (the paper's future-work direction).

Section VII: Raft "transmits a large number of heartbeat messages"; the
authors plan "a new consensus algorithm for edge environments with less
message overhead".  This package implements SWIM (scalable weakly-
consistent infection-style membership): O(1) per-node probe load with
piggybacked dissemination, suspicion with refutation via incarnation
numbers, and indirect probing through proxies.  The comparison benchmark
(`bench_ablation_membership.py`) quantifies the overhead gap against Raft.
"""

from repro.membership.cluster import SwimCluster
from repro.membership.messages import (
    SWIM_CATEGORY,
    Ack,
    MembershipUpdate,
    MemberStatus,
    Ping,
    PingReq,
)
from repro.membership.node import (
    DEFAULT_PING_TIMEOUT,
    DEFAULT_PROTOCOL_PERIOD,
    DEFAULT_SUSPICION_TIMEOUT,
    SwimNode,
)
from repro.membership.state import DisseminationBuffer, MembershipTable, MemberRecord

__all__ = [
    "SwimNode",
    "SwimCluster",
    "MembershipTable",
    "MemberRecord",
    "DisseminationBuffer",
    "MembershipUpdate",
    "MemberStatus",
    "Ping",
    "Ack",
    "PingReq",
    "SWIM_CATEGORY",
    "DEFAULT_PROTOCOL_PERIOD",
    "DEFAULT_PING_TIMEOUT",
    "DEFAULT_SUSPICION_TIMEOUT",
]
