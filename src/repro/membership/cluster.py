"""SWIM cluster harness (mirror of :class:`repro.raft.cluster.RaftCluster`)."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.membership.messages import MemberStatus
from repro.membership.node import SwimNode
from repro.simnet.engine import EventEngine
from repro.simnet.transport import Network


class SwimCluster:
    """A set of SWIM members sharing one network and event engine.

    ``rng`` (optional) is the cluster's membership-protocol randomness,
    shared by every member.  Passing an explicitly seeded ``Random`` makes
    a cluster's formation a pure function of that seed — the federation
    layer derives one per cluster from its root seed so K clusters forming
    concurrently on one engine cannot perturb each other through the
    engine's shared stream.
    """

    def __init__(
        self,
        node_ids: List[int],
        network: Network,
        engine: EventEngine,
        rng: Optional[random.Random] = None,
        **node_kwargs,
    ):
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        self.engine = engine
        self.network = network
        self.rng = rng
        self.nodes: Dict[int, SwimNode] = {
            node_id: SwimNode(
                node_id, list(node_ids), network, engine, rng=rng, **node_kwargs
            )
            for node_id in node_ids
        }

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()

    def crash(self, node_id: int) -> None:
        """Silently kill a member (stops responding, stays registered)."""
        self.nodes[node_id].stop()
        self.network.set_online(node_id, False)

    def view_of(self, observer: int) -> Dict[int, MemberStatus]:
        """The observer's current status for every member."""
        table = self.nodes[observer].table
        return {member: table.status(member) for member in table.members()}

    def converged_on_dead(self, dead: int, observers: List[int]) -> bool:
        """True when every live observer has declared ``dead`` DEAD."""
        return all(
            self.nodes[obs].table.status(dead) is MemberStatus.DEAD
            for obs in observers
        )

    def wait_for_detection(
        self, dead: int, timeout: float = 60.0, step: float = 1.0
    ) -> float:
        """Run until all live members detect ``dead``; returns elapsed time."""
        start = self.engine.now
        observers = [
            node_id
            for node_id, node in self.nodes.items()
            if node_id != dead and not node._stopped
        ]
        deadline = start + timeout
        while self.engine.now < deadline:
            self.engine.run_until(min(self.engine.now + step, deadline))
            if self.converged_on_dead(dead, observers):
                return self.engine.now - start
        raise TimeoutError(f"member {dead} not detected dead within {timeout}s")
