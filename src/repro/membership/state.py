"""SWIM membership state and update dissemination.

:class:`MembershipTable` holds one node's view of the cluster and applies
the SWIM override rules:

* ALIVE(m, inc) overrides SUSPECT(m, i) for inc > i and ALIVE(m, i) for inc > i
* SUSPECT(m, inc) overrides SUSPECT(m, i)/ALIVE(m, i) for inc ≥ i / inc ≥ i
* DEAD(m, inc) overrides everything not already DEAD

:class:`DisseminationBuffer` is the piggyback queue: each locally learned
update rides along on the next λ·log(n) outgoing messages (we use a fixed
retransmission budget), newest-first, bounded per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.membership.messages import MembershipUpdate, MemberStatus


@dataclass
class MemberRecord:
    """What this node believes about one member."""

    status: MemberStatus
    incarnation: int
    #: Local simulation time of the last status change (suspicion timers).
    changed_at: float


def _overrides(new: MembershipUpdate, old: MemberRecord) -> bool:
    """SWIM's update precedence rules."""
    if old.status is MemberStatus.DEAD:
        return False  # death is final (a dead id never rejoins as itself)
    if new.status is MemberStatus.DEAD:
        return True
    if new.status is MemberStatus.ALIVE:
        return new.incarnation > old.incarnation
    # new.status is SUSPECT:
    if old.status is MemberStatus.ALIVE:
        return new.incarnation >= old.incarnation
    return new.incarnation > old.incarnation  # suspect over suspect


class MembershipTable:
    """One node's membership view."""

    def __init__(self, self_id: int, members: List[int], now: float = 0.0):
        if self_id not in members:
            raise ValueError("the node itself must be a member")
        self.self_id = self_id
        self._records: Dict[int, MemberRecord] = {
            member: MemberRecord(
                status=MemberStatus.ALIVE, incarnation=0, changed_at=now
            )
            for member in members
        }
        #: Our own incarnation number (bumped to refute suspicion).
        self.incarnation = 0

    # -- queries ---------------------------------------------------------------

    def record(self, member: int) -> MemberRecord:
        return self._records[member]

    def status(self, member: int) -> MemberStatus:
        return self._records[member].status

    def members(self) -> List[int]:
        return sorted(self._records)

    def alive_members(self, exclude_self: bool = True) -> List[int]:
        return [
            member
            for member, record in sorted(self._records.items())
            if record.status is not MemberStatus.DEAD
            and not (exclude_self and member == self.self_id)
        ]

    def suspects(self) -> List[int]:
        return [
            member
            for member, record in sorted(self._records.items())
            if record.status is MemberStatus.SUSPECT
        ]

    # -- mutation ---------------------------------------------------------------

    def apply(self, update: MembershipUpdate, now: float) -> Optional[MembershipUpdate]:
        """Apply a received or locally generated update.

        Returns the update when it changed our view (and should therefore
        be re-disseminated), or None when it was stale.  A suspicion about
        *ourselves* triggers refutation instead: we bump our incarnation
        and return the refuting ALIVE update.
        """
        if update.member == self.self_id and update.status in (
            MemberStatus.SUSPECT,
            MemberStatus.DEAD,
        ):
            # Refute: "I am alive, and newer than that rumour" (SWIM §4.2).
            self.incarnation = max(self.incarnation, update.incarnation) + 1
            record = self._records[self.self_id]
            record.status = MemberStatus.ALIVE
            record.incarnation = self.incarnation
            record.changed_at = now
            return MembershipUpdate(
                member=self.self_id,
                status=MemberStatus.ALIVE,
                incarnation=self.incarnation,
            )
        record = self._records.get(update.member)
        if record is None:
            # First sighting of a member (dynamic join).
            self._records[update.member] = MemberRecord(
                status=update.status, incarnation=update.incarnation, changed_at=now
            )
            return update
        if not _overrides(update, record):
            return None
        record.status = update.status
        record.incarnation = update.incarnation
        record.changed_at = now
        return update

    def expire_suspects(self, now: float, suspicion_timeout: float) -> List[MembershipUpdate]:
        """Declare long-suspected members dead; returns the DEAD updates."""
        declared = []
        for member, record in self._records.items():
            if (
                record.status is MemberStatus.SUSPECT
                and now - record.changed_at >= suspicion_timeout
            ):
                record.status = MemberStatus.DEAD
                record.changed_at = now
                declared.append(
                    MembershipUpdate(
                        member=member,
                        status=MemberStatus.DEAD,
                        incarnation=record.incarnation,
                    )
                )
        return declared


class DisseminationBuffer:
    """Piggyback queue with a bounded retransmission budget per update."""

    def __init__(self, retransmit_budget: int = 6, max_per_message: int = 6):
        if retransmit_budget < 1 or max_per_message < 1:
            raise ValueError("budgets must be positive")
        self.retransmit_budget = retransmit_budget
        self.max_per_message = max_per_message
        self._queue: List[Tuple[MembershipUpdate, int]] = []

    def push(self, update: MembershipUpdate) -> None:
        """Queue an update; replaces any stale queued update for the member."""
        self._queue = [
            (queued, sent)
            for queued, sent in self._queue
            if queued.member != update.member
        ]
        self._queue.append((update, 0))

    def take(self) -> Tuple[MembershipUpdate, ...]:
        """Updates to piggyback on the next outgoing message.

        Least-transmitted first (so fresh updates spread fastest); each
        take increments the send counters and drops exhausted updates.
        """
        self._queue.sort(key=lambda pair: pair[1])
        batch = self._queue[: self.max_per_message]
        taken = tuple(update for update, _ in batch)
        refreshed = []
        for update, sent in self._queue:
            if update in taken:
                sent += 1
            if sent < self.retransmit_budget:
                refreshed.append((update, sent))
        self._queue = refreshed
        return taken

    def __len__(self) -> int:
        return len(self._queue)
