"""Federation-aware chaos: whole-cluster adversaries and blast radius.

The single-cluster chaos suite (:mod:`repro.chaos`) asks "did safety and
liveness survive N adversaries *inside* the cluster?".  Federation adds a
containment question: if an entire cluster turns Byzantine — every node
running a windowed adversary class — does the damage stay inside it?
The architecture says it must: clusters share no network plane, only the
fog directory, and the directory carries summaries that sibling clusters
never execute.  The **blast-radius check** pins that invariant: every
sibling (non-Byzantine) cluster's end-of-run safety verdict, computed by
the unchanged single-cluster :func:`repro.chaos.verdict.compute_verdict`,
must come back clean.

The combined artifact is written under the same ``chaos_verdict.json``
name the single-cluster harness uses, version-stamped the same way, with
a ``blast_radius`` section on top of the per-cluster verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.chaos.adversaries import ADVERSARY_TYPES
from repro.chaos.scenario import ChaosSpec
from repro.chaos.verdict import compute_verdict
from repro.federation.adversaries import FOG_ADVERSARY_TYPES, windowed_fog_class
from repro.federation.runner import FederationResult, run_federation
from repro.federation.spec import FederationSpec
from repro.version import package_version

PathLike = Union[str, Path]

FEDERATED_CHAOS_SCHEMA = "repro.chaos.federated/v1"

#: Minimum cross-cluster lookup success rate the fog section demands when
#: every cluster is honest: directory failover must keep the majority of
#: lookups resolving even while a super-peer misbehaves and is cut out.
FOG_LOOKUP_SUCCESS_FLOOR = 0.5


@dataclass(frozen=True)
class FederatedChaosSpec:
    """A federated run with whole-cluster adversary overlays."""

    federation: FederationSpec
    #: Clusters whose every node runs the adversary behavior.
    byzantine_clusters: Tuple[int, ...] = ()
    behavior: str = "equivocator"
    start_minutes: float = 2.0
    stop_minutes: Optional[float] = None  # default: end of run
    #: Fog-tier adversaries: behavior name → super-peer ids running it
    #: (same window as the node adversaries).
    fog_adversaries: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.behavior not in ADVERSARY_TYPES:
            known = ", ".join(sorted(ADVERSARY_TYPES))
            raise ValueError(f"unknown behavior {self.behavior!r} (known: {known})")
        for cluster_id in self.byzantine_clusters:
            if not (0 <= cluster_id < self.federation.cluster_count):
                raise ValueError(f"byzantine cluster {cluster_id} out of range")
        if len(self.byzantine_clusters) >= self.federation.cluster_count:
            raise ValueError("at least one cluster must stay honest")
        if self.start_minutes < 0:
            raise ValueError("adversary start must be non-negative")
        if self.stop_minutes is not None and self.stop_minutes <= self.start_minutes:
            raise ValueError("adversary stop must come after start")
        compromised = set()
        for fog_behavior, peer_ids in self.fog_adversaries.items():
            if fog_behavior not in FOG_ADVERSARY_TYPES:
                known = ", ".join(sorted(FOG_ADVERSARY_TYPES))
                raise ValueError(
                    f"unknown fog behavior {fog_behavior!r} (known: {known})"
                )
            for peer_id in peer_ids:
                if not (0 <= peer_id < self.federation.super_peer_count):
                    raise ValueError(f"fog peer {peer_id} out of range")
                if peer_id in compromised:
                    raise ValueError(f"fog peer {peer_id} assigned twice")
                compromised.add(peer_id)
        if compromised and len(compromised) >= self.federation.super_peer_count:
            raise ValueError("at least one super-peer must stay honest")

    @property
    def stop_seconds(self) -> float:
        if self.stop_minutes is not None:
            return self.stop_minutes * 60.0
        return self.federation.duration_seconds

    def windowed_class(self) -> type:
        """The behavior class bounded to the chaos window (sim fabric)."""
        base = ADVERSARY_TYPES[self.behavior]
        return type(
            f"{base.__name__}Windowed",
            (base,),
            {
                "chaos_start": self.start_minutes * 60.0,
                "chaos_stop": self.stop_seconds,
            },
        )

    @property
    def fog_adversary_peers(self) -> Tuple[int, ...]:
        """All compromised super-peer ids, sorted."""
        return tuple(
            sorted(
                peer_id
                for peer_ids in self.fog_adversaries.values()
                for peer_id in peer_ids
            )
        )

    def fog_peer_classes(self) -> Dict[int, type]:
        """super-peer id → windowed adversary class for the fog tier."""
        classes: Dict[int, type] = {}
        for fog_behavior, peer_ids in self.fog_adversaries.items():
            adversary = windowed_fog_class(
                fog_behavior, self.start_minutes * 60.0, self.stop_seconds
            )
            for peer_id in peer_ids:
                classes[peer_id] = adversary
        return classes

    def node_classes_by_cluster(self) -> Dict[int, Dict[int, type]]:
        adversary = self.windowed_class()
        return {
            cluster_id: {
                node_id: adversary
                for node_id in range(self.federation.nodes_per_cluster)
            }
            for cluster_id in self.byzantine_clusters
        }

    def cluster_chaos_spec(self, cluster_id: int) -> ChaosSpec:
        """The single-cluster ChaosSpec this cluster effectively ran."""
        fed = self.federation
        adversaries: Dict[str, Tuple[int, ...]] = {}
        if cluster_id in self.byzantine_clusters:
            adversaries = {
                self.behavior: tuple(range(fed.nodes_per_cluster))
            }
        return ChaosSpec(
            node_count=fed.nodes_per_cluster,
            config=fed.config,
            seed=fed.seed_for(cluster_id),
            duration_minutes=fed.duration_seconds / 60.0,
            adversaries=adversaries,
            start_minutes=self.start_minutes,
            stop_minutes=self.stop_seconds / 60.0,
            fabric="sim",
        )


@dataclass
class FederatedChaosResult:
    """The run, its per-cluster verdicts, and the blast-radius check."""

    spec: FederatedChaosSpec
    run: FederationResult
    verdict: Dict[str, Any]

    def write_verdict(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(self.verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def compute_federated_verdict(
    spec: FederatedChaosSpec, result: FederationResult
) -> Dict[str, Any]:
    """Per-cluster verdicts plus the blast-radius containment check.

    Byzantine clusters are *sacrificed by construction* — with zero
    honest members there is no honest invariant to evaluate, so they get
    a marker entry instead of a verdict.  The blast radius is ``ok`` iff
    every sibling cluster's safety section is clean.
    """
    clusters: Dict[str, Any] = {}
    sibling_safety: Dict[str, bool] = {}
    for domain in result.runtime.domains:
        key = str(domain.cluster_id)
        if domain.cluster_id in spec.byzantine_clusters:
            clusters[key] = {
                "status": "sacrificed",
                "note": f"whole cluster ran {spec.behavior}; no honest invariant",
            }
            continue
        verdict = compute_verdict(
            spec.cluster_chaos_spec(domain.cluster_id), domain.cluster.nodes
        )
        clusters[key] = verdict
        sibling_safety[key] = bool(verdict["safety"]["ok"])
    blast_ok = all(sibling_safety.values()) if sibling_safety else False
    sibling_statuses = [
        clusters[key]["status"] for key in sibling_safety
    ]
    fog = compute_fog_section(spec, result)
    if not blast_ok or "critical" in sibling_statuses or not fog["ok"]:
        status = "critical"
    elif "warning" in sibling_statuses:
        status = "warning"
    else:
        status = "ok"
    return {
        "schema": FEDERATED_CHAOS_SCHEMA,
        "version": package_version(),
        "status": status,
        "behavior": spec.behavior,
        "seed": spec.federation.seed,
        "clusters": clusters,
        "blast_radius": {
            "ok": blast_ok,
            "byzantine_clusters": sorted(spec.byzantine_clusters),
            "sibling_safety": sibling_safety,
        },
        "fog": fog,
    }


def compute_fog_section(
    spec: FederatedChaosSpec, result: FederationResult
) -> Dict[str, Any]:
    """The fog containment section of the federated verdict.

    ``ok`` demands three things of the fog tier, adversaries or not:

    * **honest-replica convergence** — every non-quarantined replica
      holds an entry for every cluster and none of those entries
      contradicts the cluster chain it summarises (byzantine clusters,
      sacrificed by construction, are exempt from the contradiction
      check — their chains owe nobody append-only behavior);
    * **lookup-success floor** — when every cluster is honest and
      lookups were attempted, at least
      :data:`FOG_LOOKUP_SUCCESS_FLOOR` of them resolved (failover must
      actually carry the load of a cut-out super-peer);
    * **no honest super-peer quarantined** — scoring never turned on
      a peer that wasn't compromised.
    """
    fog = result.runtime.fog
    aggregate = result.aggregate
    adversary_peers = spec.fog_adversary_peers
    quarantined = sorted(fog.admission.quarantined)
    honest_quarantined = sorted(set(quarantined) - set(adversary_peers))
    attempted = aggregate["lookups_ok"] + aggregate["lookups_failed"]
    success_rate = (
        aggregate["lookups_ok"] / attempted if attempted > 0 else None
    )
    floor_applies = not spec.byzantine_clusters and attempted > 0
    divergent = fog.directory_divergence(
        exclude_clusters=spec.byzantine_clusters
    )
    active = [
        peer
        for peer in fog.peers
        if not fog.admission.is_quarantined(peer.peer_id)
    ]
    entries_complete = bool(active) and all(
        len(peer.replica.entries) == spec.federation.cluster_count
        for peer in active
    )
    replicas_converged = entries_complete and divergent == 0
    floor_met = (
        not floor_applies
        or (success_rate is not None and success_rate >= FOG_LOOKUP_SUCCESS_FLOOR)
    )
    return {
        "ok": bool(replicas_converged and floor_met and not honest_quarantined),
        "adversaries": {
            behavior: sorted(peer_ids)
            for behavior, peer_ids in sorted(spec.fog_adversaries.items())
        },
        "replicas_converged": replicas_converged,
        "divergent_entries": divergent,
        "lookups_ok": aggregate["lookups_ok"],
        "lookups_failed": aggregate["lookups_failed"],
        "lookup_success_rate": success_rate,
        "lookup_success_floor": FOG_LOOKUP_SUCCESS_FLOOR,
        "success_floor_applies": floor_applies,
        "lookup_fallbacks": aggregate["lookup_fallbacks"],
        "bloom_fp_probes": aggregate["bloom_fp_probes"],
        "verify_rejected": aggregate["verify_rejected"],
        "attestation_rejected": aggregate["attestation_rejected"],
        "migrations": aggregate["migrations"],
        "migrations_rejected": aggregate["migrations_rejected"],
        "quarantined_peers": quarantined,
        "honest_peers_quarantined": honest_quarantined,
        "quarantined_at": {
            str(peer_id): when
            for peer_id, when in sorted(fog.admission.quarantined_at.items())
        },
        "rehomed_clusters": {
            str(cluster_id): peer_id
            for cluster_id, peer_id in sorted(fog.rehomed.items())
        },
        "scores": {
            str(peer_id): score
            for peer_id, score in sorted(fog.admission.scores.items())
        },
    }


def run_federated_chaos(spec: FederatedChaosSpec) -> FederatedChaosResult:
    """Run the federation with the adversary overlay and judge containment."""
    fed_spec = replace(
        spec.federation,
        node_classes_by_cluster=spec.node_classes_by_cluster(),
        fog_peer_classes=spec.fog_peer_classes() or None,
        # A Byzantine cluster's migrations would push tampered metadata at
        # sibling gateways; with clusters sacrificed, lookups are expected
        # to fail against them instead.  Fog-only chaos keeps migration on
        # — driver-initiated pulls are part of what failover must protect.
        migrate_fraction=(
            0.0 if spec.byzantine_clusters else spec.federation.migrate_fraction
        ),
    )
    result = run_federation(fed_spec)
    verdict = compute_federated_verdict(spec, result)
    return FederatedChaosResult(spec=spec, run=result, verdict=verdict)
