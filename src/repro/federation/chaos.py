"""Federation-aware chaos: whole-cluster adversaries and blast radius.

The single-cluster chaos suite (:mod:`repro.chaos`) asks "did safety and
liveness survive N adversaries *inside* the cluster?".  Federation adds a
containment question: if an entire cluster turns Byzantine — every node
running a windowed adversary class — does the damage stay inside it?
The architecture says it must: clusters share no network plane, only the
fog directory, and the directory carries summaries that sibling clusters
never execute.  The **blast-radius check** pins that invariant: every
sibling (non-Byzantine) cluster's end-of-run safety verdict, computed by
the unchanged single-cluster :func:`repro.chaos.verdict.compute_verdict`,
must come back clean.

The combined artifact is written under the same ``chaos_verdict.json``
name the single-cluster harness uses, version-stamped the same way, with
a ``blast_radius`` section on top of the per-cluster verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.chaos.adversaries import ADVERSARY_TYPES
from repro.chaos.scenario import ChaosSpec
from repro.chaos.verdict import compute_verdict
from repro.federation.runner import FederationResult, run_federation
from repro.federation.spec import FederationSpec
from repro.version import package_version

PathLike = Union[str, Path]

FEDERATED_CHAOS_SCHEMA = "repro.chaos.federated/v1"


@dataclass(frozen=True)
class FederatedChaosSpec:
    """A federated run with whole-cluster adversary overlays."""

    federation: FederationSpec
    #: Clusters whose every node runs the adversary behavior.
    byzantine_clusters: Tuple[int, ...] = ()
    behavior: str = "equivocator"
    start_minutes: float = 2.0
    stop_minutes: Optional[float] = None  # default: end of run

    def __post_init__(self) -> None:
        if self.behavior not in ADVERSARY_TYPES:
            known = ", ".join(sorted(ADVERSARY_TYPES))
            raise ValueError(f"unknown behavior {self.behavior!r} (known: {known})")
        for cluster_id in self.byzantine_clusters:
            if not (0 <= cluster_id < self.federation.cluster_count):
                raise ValueError(f"byzantine cluster {cluster_id} out of range")
        if len(self.byzantine_clusters) >= self.federation.cluster_count:
            raise ValueError("at least one cluster must stay honest")
        if self.start_minutes < 0:
            raise ValueError("adversary start must be non-negative")
        if self.stop_minutes is not None and self.stop_minutes <= self.start_minutes:
            raise ValueError("adversary stop must come after start")

    @property
    def stop_seconds(self) -> float:
        if self.stop_minutes is not None:
            return self.stop_minutes * 60.0
        return self.federation.duration_seconds

    def windowed_class(self) -> type:
        """The behavior class bounded to the chaos window (sim fabric)."""
        base = ADVERSARY_TYPES[self.behavior]
        return type(
            f"{base.__name__}Windowed",
            (base,),
            {
                "chaos_start": self.start_minutes * 60.0,
                "chaos_stop": self.stop_seconds,
            },
        )

    def node_classes_by_cluster(self) -> Dict[int, Dict[int, type]]:
        adversary = self.windowed_class()
        return {
            cluster_id: {
                node_id: adversary
                for node_id in range(self.federation.nodes_per_cluster)
            }
            for cluster_id in self.byzantine_clusters
        }

    def cluster_chaos_spec(self, cluster_id: int) -> ChaosSpec:
        """The single-cluster ChaosSpec this cluster effectively ran."""
        fed = self.federation
        adversaries: Dict[str, Tuple[int, ...]] = {}
        if cluster_id in self.byzantine_clusters:
            adversaries = {
                self.behavior: tuple(range(fed.nodes_per_cluster))
            }
        return ChaosSpec(
            node_count=fed.nodes_per_cluster,
            config=fed.config,
            seed=fed.seed_for(cluster_id),
            duration_minutes=fed.duration_seconds / 60.0,
            adversaries=adversaries,
            start_minutes=self.start_minutes,
            stop_minutes=self.stop_seconds / 60.0,
            fabric="sim",
        )


@dataclass
class FederatedChaosResult:
    """The run, its per-cluster verdicts, and the blast-radius check."""

    spec: FederatedChaosSpec
    run: FederationResult
    verdict: Dict[str, Any]

    def write_verdict(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(self.verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def compute_federated_verdict(
    spec: FederatedChaosSpec, result: FederationResult
) -> Dict[str, Any]:
    """Per-cluster verdicts plus the blast-radius containment check.

    Byzantine clusters are *sacrificed by construction* — with zero
    honest members there is no honest invariant to evaluate, so they get
    a marker entry instead of a verdict.  The blast radius is ``ok`` iff
    every sibling cluster's safety section is clean.
    """
    clusters: Dict[str, Any] = {}
    sibling_safety: Dict[str, bool] = {}
    for domain in result.runtime.domains:
        key = str(domain.cluster_id)
        if domain.cluster_id in spec.byzantine_clusters:
            clusters[key] = {
                "status": "sacrificed",
                "note": f"whole cluster ran {spec.behavior}; no honest invariant",
            }
            continue
        verdict = compute_verdict(
            spec.cluster_chaos_spec(domain.cluster_id), domain.cluster.nodes
        )
        clusters[key] = verdict
        sibling_safety[key] = bool(verdict["safety"]["ok"])
    blast_ok = all(sibling_safety.values()) if sibling_safety else False
    sibling_statuses = [
        clusters[key]["status"] for key in sibling_safety
    ]
    if not blast_ok or "critical" in sibling_statuses:
        status = "critical"
    elif "warning" in sibling_statuses:
        status = "warning"
    else:
        status = "ok"
    return {
        "schema": FEDERATED_CHAOS_SCHEMA,
        "version": package_version(),
        "status": status,
        "behavior": spec.behavior,
        "seed": spec.federation.seed,
        "clusters": clusters,
        "blast_radius": {
            "ok": blast_ok,
            "byzantine_clusters": sorted(spec.byzantine_clusters),
            "sibling_safety": sibling_safety,
        },
        "fog": {
            "lookups_ok": result.aggregate["lookups_ok"],
            "lookups_failed": result.aggregate["lookups_failed"],
            "migrations": result.aggregate["migrations"],
        },
    }


def run_federated_chaos(spec: FederatedChaosSpec) -> FederatedChaosResult:
    """Run the federation with the adversary overlay and judge containment."""
    fed_spec = replace(
        spec.federation,
        node_classes_by_cluster=spec.node_classes_by_cluster(),
        # A Byzantine cluster's migrations would push tampered metadata at
        # sibling gateways; honest runs keep migration on, chaos runs rely
        # on lookups failing against the sacrificed cluster instead.
        migrate_fraction=0.0,
    )
    result = run_federation(fed_spec)
    verdict = compute_federated_verdict(spec, result)
    return FederatedChaosResult(spec=spec, run=result, verdict=verdict)
