"""Federation run specification: K edge clusters plus a fog tier.

A :class:`FederationSpec` is to ``repro fed run`` what
:class:`~repro.sim.runner.ExperimentSpec` is to ``repro run``: the whole
run as data.  Every per-cluster random stream — SWIM formation, layout /
mobility / allocation, the workload — is seeded from a value *derived*
from the root seed and the cluster id, so the federation is a pure
function of ``seed`` no matter how the shared engine interleaves the
clusters' events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SystemConfig
from repro.crypto.hashing import hash_items
from repro.sim.runner import ChurnSpec, ExperimentSpec

#: Raft timing for the per-cluster general-information groups.  The
#: single-cluster benchmarks run Raft at its testbed defaults (100 ms
#: heartbeats); a federation multiplies that by K clusters for the whole
#: run, so the fog tier runs its Raft groups at gossip-compatible pace.
FED_RAFT_ELECTION_TIMEOUT = (3.0, 6.0)
FED_RAFT_HEARTBEAT_SECONDS = 1.0


class FederationSpecError(ValueError):
    """A :class:`FederationSpec` constraint is violated.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites (the CLI, older tests) keep working, while new callers
    can catch the typed error specifically.
    """


def cluster_seed(root_seed: int, cluster_id: int) -> int:
    """The derived seed for one cluster, a pure function of the root."""
    digest = hash_items("federation-cluster", root_seed, cluster_id)
    return int.from_bytes(digest[:8], "big")


def derived_seed(root_seed: int, label: str, index: int) -> int:
    """A named per-stream seed (swim / workload / fog-peer / lookups)."""
    digest = hash_items("federation-stream", label, root_seed, index)
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FederationSpec:
    """Everything that defines one federated run."""

    cluster_count: int
    nodes_per_cluster: int
    config: SystemConfig
    seed: int = 0
    duration_minutes: Optional[float] = None  # default: config.simulation_minutes
    #: Fog tier size; clusters home to peer ``cluster_id % super_peer_count``.
    super_peer_count: int = 2
    #: SWIM runs from t=0; chains and workload start once this window
    #: closes and every cluster's membership view has converged.
    membership_window_seconds: float = 20.0
    #: Home super-peer refresh period for its clusters' summaries.
    directory_refresh_seconds: float = 30.0
    #: Anti-entropy gossip period between super-peers.
    gossip_period_seconds: float = 15.0
    #: One-way edge↔fog latency (fog links are fast backhaul, not radio).
    fog_latency_seconds: float = 0.05
    #: Fraction of produced items that attract a cross-cluster lookup.
    cross_lookup_fraction: float = 0.3
    #: Fraction of successful cross-cluster lookups that migrate the item.
    migrate_fraction: float = 0.5
    #: Lookup delay window after production (directory must refresh first).
    lookup_min_delay: float = 120.0
    lookup_max_delay: float = 300.0
    mobility_epoch_minutes: float = 10.0
    #: Run the per-cluster Raft general-information groups.
    with_raft: bool = True
    #: Churn overlay confined to one cluster (blast-radius experiments).
    churn_cluster: Optional[int] = None
    churn: Optional[ChurnSpec] = None
    #: cluster id → (node id → EdgeNode subclass); the federated chaos
    #: harness plants whole-cluster adversaries through this.
    node_classes_by_cluster: Optional[Dict[int, Dict[int, type]]] = None
    #: super-peer id → SuperPeer subclass; the federated chaos harness
    #: plants fog-tier adversaries through this.
    fog_peer_classes: Optional[Dict[int, type]] = None

    def __post_init__(self) -> None:
        if self.cluster_count < 1:
            raise FederationSpecError("a federation needs at least one cluster")
        if self.nodes_per_cluster < 2:
            raise FederationSpecError("each cluster needs at least 2 nodes")
        if self.super_peer_count < 1:
            raise FederationSpecError(
                "the fog tier needs at least one super-peer"
            )
        if self.membership_window_seconds < 0:
            raise FederationSpecError("membership window cannot be negative")
        if self.directory_refresh_seconds <= 0 or self.gossip_period_seconds <= 0:
            raise FederationSpecError("directory periods must be positive")
        if not (0.0 <= self.cross_lookup_fraction <= 1.0):
            raise FederationSpecError("cross-lookup fraction must be in [0, 1]")
        if not (0.0 <= self.migrate_fraction <= 1.0):
            raise FederationSpecError("migrate fraction must be in [0, 1]")
        if self.lookup_max_delay < self.lookup_min_delay:
            raise FederationSpecError(
                "lookup_max_delay must be ≥ lookup_min_delay"
            )
        if self.churn_cluster is not None and not (
            0 <= self.churn_cluster < self.cluster_count
        ):
            raise FederationSpecError("churn_cluster out of range")
        if self.fog_peer_classes is not None and any(
            not (0 <= peer_id < self.super_peer_count)
            for peer_id in self.fog_peer_classes
        ):
            raise FederationSpecError("fog peer class id out of range")
        if self.membership_window_seconds >= self.duration_seconds:
            raise FederationSpecError("membership window consumes the whole run")

    @property
    def duration_seconds(self) -> float:
        minutes = (
            self.duration_minutes
            if self.duration_minutes is not None
            else self.config.simulation_minutes
        )
        return minutes * 60.0

    @property
    def total_nodes(self) -> int:
        return self.cluster_count * self.nodes_per_cluster

    def seed_for(self, cluster_id: int) -> int:
        return cluster_seed(self.seed, cluster_id)

    def home_peer_of(self, cluster_id: int) -> int:
        return cluster_id % self.super_peer_count

    def cluster_spec(self, cluster_id: int) -> ExperimentSpec:
        """The single-cluster spec this cluster runs under the hood."""
        classes = None
        if self.node_classes_by_cluster:
            classes = self.node_classes_by_cluster.get(cluster_id)
        return ExperimentSpec(
            node_count=self.nodes_per_cluster,
            config=self.config,
            seed=self.seed_for(cluster_id),
            duration_minutes=self.duration_seconds / 60.0,
            mobility_epoch_minutes=self.mobility_epoch_minutes,
            churn=self.churn if cluster_id == self.churn_cluster else None,
            node_classes=classes,
        )
