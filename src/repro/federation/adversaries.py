"""Fog-tier adversaries: super-peers that attack the federation itself.

The single-cluster adversary catalogue (:mod:`repro.chaos.adversaries`)
covers byzantine *edge nodes*; these are their fog-layer counterparts —
a compromised :class:`~repro.federation.fog.SuperPeer` attacking the
directory and the cross-cluster paths that trust it:

* :class:`SummaryPoisonerPeer` — publishes entries with forged blooms,
  inflated heights, and false checkpoint digests for its home clusters.
* :class:`GossipSuppressorPeer` — silently withholds its anti-entropy
  pushes, so siblings' views of its home clusters go stale.
* :class:`VersionInflatorPeer` — publishes garbage at astronomically
  high versions, trying to win every monotone merge forever.
* :class:`GatewayTampererPeer` — pushes forged/tampered metadata
  migrations at sibling clusters' gateways.

All follow the node-adversary conventions: behavior is gated by the
``chaos_start``/``chaos_stop`` class-attribute window (baked into a
dynamic subclass by :func:`windowed_fog_class`), outside the window the
peer is bit-identical to an honest one, actions are counted in
``chaos_actions``, and **no adversary draws its own randomness** —
forged payloads are pure functions of observed state and a local
counter, so adversarial runs replay deterministically.

Defenses live in :mod:`repro.federation.fog`: gateway attestation stops
the poisoner and inflator at every honest receiver, staleness scoring
catches the suppressor's silence, and structural admission at the target
gateway bounces the tamperer's pushes back onto its misbehavior score.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional

from repro.core.metadata import MetadataItem
from repro.federation.directory import BloomFilter
from repro.federation.fog import SuperPeer


class FogAdversaryPeer(SuperPeer):
    """Base class: an adversarial super-peer active inside a time window."""

    #: Attack window in simulation seconds (class attributes so the
    #: chaos spec can bake them into a dynamic subclass).
    chaos_start: float = 0.0
    chaos_stop: float = math.inf

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.chaos_actions = 0

    def _chaos_active(self) -> bool:
        now = self.fog.engine.now
        return self.chaos_start <= now < self.chaos_stop


class SummaryPoisonerPeer(FogAdversaryPeer):
    """Publishes forged directory entries for its home clusters.

    Each refresh inside the window builds the honest summary, then
    rewrites the body — height inflated, chain/checkpoint digests
    replaced with garbage, bloom swapped for one full of junk keys, item
    count zeroed — while keeping the honest attestation, which now
    covers the wrong bytes.  The poison lands in the peer's own replica
    (so lookups it serves are poisoned immediately) and rides its gossip
    pushes; every honest receiver rejects it for the broken attestation
    and charges the sender.
    """

    def refresh_home(self) -> None:
        if not self._chaos_active():
            super().refresh_home()
            return
        if self.fog.admission.is_quarantined(self.peer_id):
            return
        now = self.fog.engine.now
        for cluster_id in list(self.home_clusters):
            version = self._versions.get(cluster_id, 0) + 1
            self._versions[cluster_id] = version
            honest = self.fog.build_summary(cluster_id, version, now)
            junk_bloom = BloomFilter.sized_for(64)
            for salt in range(8):
                junk_bloom.add(
                    f"poison:{self.peer_id}:{cluster_id}:{self.chaos_actions}:{salt}"
                )
            poisoned = replace(
                honest,
                height=honest.height + 50,
                chain_digest="f" * 32,
                checkpoint_height=honest.height + 50,
                checkpoint_digest="f" * 64,
                item_count=0,
                bloom=junk_bloom,
            )
            self.replica.merge(poisoned)
            self.fog.counters.refreshes += 1
            self.chaos_actions += 1


class GossipSuppressorPeer(FogAdversaryPeer):
    """Withholds anti-entropy pushes so siblings' views go stale.

    Refreshes stay honest — the peer's own replica is perfectly current —
    but inside the window nothing leaves it, starving every sibling of
    updates for the clusters it homes.  The only trace is silence, which
    is exactly what the staleness scoring in ``_flag_stale_homes``
    measures.
    """

    def gossip(self) -> None:
        if not self._chaos_active():
            super().gossip()
            return
        self.chaos_actions += 1


class VersionInflatorPeer(FogAdversaryPeer):
    """Publishes garbage at astronomically high versions.

    The monotone merge rule keeps the highest version it has seen, so an
    unchecked inflated entry would shadow every honest refresh until its
    version is outbid — effectively forever.  The defense is that the
    garbage never merges anywhere honest (broken attestation), and after
    quarantine the re-homed rebuild only has to outbid the honest
    version floor its new home actually adopted.
    """

    VERSION_LEAP = 1_000_000

    def refresh_home(self) -> None:
        if not self._chaos_active():
            super().refresh_home()
            return
        if self.fog.admission.is_quarantined(self.peer_id):
            return
        now = self.fog.engine.now
        for cluster_id in list(self.home_clusters):
            version = self._versions.get(cluster_id, 0) + 1 + self.VERSION_LEAP
            self._versions[cluster_id] = version
            honest = self.fog.build_summary(cluster_id, version, now)
            saturated = BloomFilter.sized_for(64)
            saturated._bits = bytearray(b"\xff" * len(saturated._bits))
            inflated = replace(
                honest,
                version=version,
                chain_digest="0" * 32,
                checkpoint_digest="0" * 64,
                bloom=saturated,
                attestation_hex="",
            )
            self.replica.merge(inflated)
            self.fog.counters.refreshes += 1
            self.chaos_actions += 1


class GatewayTampererPeer(FogAdversaryPeer):
    """Pushes forged metadata migrations at sibling clusters' gateways.

    Every gossip period inside the window it picks a victim item from a
    cluster's reference chain (round-robin over clusters, first packed
    item — deterministic), forges it — alternating between a rewritten
    ``data_type`` (breaks the producer signature) and a swapped
    ``producer_address`` (breaks address derivation) — and pushes the
    forgery at a sibling cluster's gateway as an unsolicited migration.
    The gateway's structural admission rejects it and the fog charges
    the pusher.
    """

    def start(self) -> None:
        engine = self.fog.engine
        engine.call_at(max(self.chaos_start, engine.now), self._chaos_tamper)

    def _pick_victim(self) -> Optional[MetadataItem]:
        cluster_count = self.fog.spec.cluster_count
        for probe in range(cluster_count):
            cluster_id = (self.chaos_actions + probe) % cluster_count
            chain = self.fog.domains[cluster_id].cluster.longest_chain_node().chain
            for block in chain.blocks:
                if block.metadata_items:
                    return block.metadata_items[0]
        return None

    def _chaos_tamper(self) -> None:
        fog = self.fog
        if fog.engine.now >= self.chaos_stop:
            return
        victim = self._pick_victim()
        if victim is not None:
            if self.chaos_actions % 2 == 0:
                forged = replace(victim, data_type="Forged/Tampered")
            else:
                forged = replace(victim, producer_address="f0" * 20)
            target = (self.chaos_actions + 1) % fog.spec.cluster_count
            fog.push_migration(target, forged, self.peer_id)
            self.chaos_actions += 1
        fog.engine.schedule(fog.spec.gossip_period_seconds, self._chaos_tamper)


#: Registry used by the federated chaos spec / CLI.
FOG_ADVERSARY_TYPES: Dict[str, type] = {
    "summary_poisoner": SummaryPoisonerPeer,
    "gossip_suppressor": GossipSuppressorPeer,
    "version_inflator": VersionInflatorPeer,
    "gateway_tamperer": GatewayTampererPeer,
}


def windowed_fog_class(
    behavior: str, start_seconds: float, stop_seconds: float
) -> type:
    """A dynamic subclass of ``behavior`` with the window baked in."""
    base = FOG_ADVERSARY_TYPES[behavior]
    return type(
        f"{base.__name__}Windowed",
        (base,),
        {"chaos_start": start_seconds, "chaos_stop": stop_seconds},
    )
