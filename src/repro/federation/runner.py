"""Run, checkpoint, resume, and measure federated experiments.

The federated analogue of :func:`repro.sim.runner.run_experiment` plus
the durable path: with ``persist_dir`` set, the runtime is snapshotted on
a fixed cadence through :mod:`repro.persist.snapshot` (which understands
federated runtimes), so ``repro fed resume`` continues a killed run from
its last checkpoint with per-cluster digests intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.errors import PersistError
from repro.federation.runtime import FederationRuntime, build_federation_runtime
from repro.federation.spec import FederationSpec
from repro.metrics.collector import RunMetrics
from repro.obs import runtime as _obs
from repro.sim.runner import collect_metrics

PathLike = Union[str, Path]

#: Default simulated seconds between durable snapshots of a federation.
DEFAULT_SNAPSHOT_SECONDS = 120.0


@dataclass
class FederationResult:
    """Per-cluster metrics plus federation-level aggregates."""

    spec: FederationSpec
    runtime: FederationRuntime
    cluster_metrics: List[RunMetrics]
    aggregate: Dict[str, Any]


def _items_on_chain(cluster: Any) -> int:
    """Metadata items accounted on the longest chain.

    Unpruned, this is every item ever packed.  Once the body prefix is
    pruned the cold blocks can't be walked, so unexpired cold items are
    recovered from the state's metadata index instead — a floor on the
    true census (expired cold items are gone for good, by design).
    """
    chain = cluster.longest_chain_node().chain
    packed = sum(len(block.metadata_items) for block in chain.blocks)
    if chain.first_retained_index == 0:
        return packed
    hot = {
        item.data_id for block in chain.blocks for item in block.metadata_items
    }
    cold = sum(
        1 for data_id in chain.state.metadata_index if data_id not in hot
    )
    return packed + cold


def _mempool_depth(cluster: Any) -> int:
    """Deepest per-node backlog of packed-nowhere-yet metadata items."""
    return max(len(node.mempool) for node in cluster.nodes.values())


def collect_federation_metrics(runtime: FederationRuntime) -> FederationResult:
    """Derive per-cluster metrics and federation aggregates."""
    with _obs.span("fed.collect", "fed"):
        spec = runtime.spec
        cluster_metrics = [
            collect_metrics(domain.runtime) for domain in runtime.domains
        ]
        minutes = spec.duration_seconds / 60.0
        per_cluster = []
        for domain, metrics in zip(runtime.domains, cluster_metrics):
            chain = domain.cluster.longest_chain_node().chain
            checkpoint_index = chain.last_checkpoint()
            pinned = chain.checkpoints.get(checkpoint_index)
            per_cluster.append(
                {
                    "cluster_id": domain.cluster_id,
                    "height": chain.height,
                    "chain_digest": chain.chain_digest(),
                    "last_checkpoint": checkpoint_index,
                    "checkpoint_digest": (
                        chain.block_at(checkpoint_index).current_hash
                        if chain.has_block(checkpoint_index)
                        else (pinned.block_hash if pinned is not None else "")
                    ),
                    "first_retained": chain.first_retained_index,
                    "items_on_chain": _items_on_chain(domain.cluster),
                    "mempool_depth": _mempool_depth(domain.cluster),
                    "formation_converged": domain.formation_converged,
                    "data_items_produced": metrics.data_items_produced,
                    "failed_requests": metrics.failed_requests,
                    "avg_node_mb": metrics.average_node_megabytes(),
                }
            )
        counters = runtime.fog.counters
        aggregate = {
            "clusters": spec.cluster_count,
            "nodes_per_cluster": spec.nodes_per_cluster,
            "total_nodes": spec.total_nodes,
            "duration_minutes": minutes,
            "finished": runtime.finished,
            "per_cluster": per_cluster,
            "aggregate_items_per_minute": (
                sum(entry["items_on_chain"] for entry in per_cluster) / minutes
            ),
            "aggregate_blocks_per_minute": (
                sum(entry["height"] for entry in per_cluster) / minutes
            ),
            "max_mempool_depth": max(
                entry["mempool_depth"] for entry in per_cluster
            ),
            "lookups_ok": counters.lookups_ok,
            "lookups_failed": counters.lookups_failed,
            "lookup_fallbacks": counters.lookup_fallbacks,
            "migrations": counters.migrations,
            "migrations_rejected": counters.migrations_rejected,
            "gossip_rounds": counters.gossip_rounds,
            "bloom_fp_probes": counters.bloom_fp_probes,
            "verify_rejected": counters.verify_rejected,
            "attestation_rejected": counters.attestation_rejected,
            "fog_quarantined": sorted(runtime.fog.admission.quarantined),
            "rehomed_clusters": {
                str(cluster_id): peer_id
                for cluster_id, peer_id in sorted(runtime.fog.rehomed.items())
            },
            "directory_staleness": runtime.fog.directory_staleness(
                runtime.engine.now
            ),
            "directory_digest": runtime.directory_digest(),
            "chain_digests": runtime.cluster_digests(),
        }
        return FederationResult(
            spec=spec,
            runtime=runtime,
            cluster_metrics=cluster_metrics,
            aggregate=aggregate,
        )


def advance_federation(
    runtime: FederationRuntime,
    persist_dir: Optional[PathLike] = None,
    snapshot_every_seconds: float = DEFAULT_SNAPSHOT_SECONDS,
    stop_after_seconds: Optional[float] = None,
) -> FederationResult:
    """Advance to the duration (or ``stop_after_seconds``), then measure.

    With ``persist_dir``, the run advances in snapshot-cadence segments
    and checkpoints after each — a kill at any point loses at most one
    segment, and :func:`resume_federation` picks up from the newest
    snapshot.
    """
    duration = runtime.spec.duration_seconds
    target = (
        duration
        if stop_after_seconds is None
        else min(duration, stop_after_seconds)
    )
    with _obs.span("fed.simulate", "fed", target_seconds=target):
        if persist_dir is None:
            runtime.engine.run_until(target)
        else:
            from repro.persist.snapshot import write_snapshot

            if snapshot_every_seconds <= 0:
                raise ValueError("snapshot cadence must be positive")
            root = Path(persist_dir)
            root.mkdir(parents=True, exist_ok=True)
            while runtime.engine.now < target:
                segment_end = min(
                    runtime.engine.now + snapshot_every_seconds, target
                )
                runtime.engine.run_until(segment_end)
                write_snapshot(root, runtime)
    return collect_federation_metrics(runtime)


def run_federation(
    spec: FederationSpec,
    persist_dir: Optional[PathLike] = None,
    snapshot_every_seconds: float = DEFAULT_SNAPSHOT_SECONDS,
    stop_after_seconds: Optional[float] = None,
) -> FederationResult:
    """Build, run, and measure one federated experiment."""
    runtime = build_federation_runtime(spec)
    return advance_federation(
        runtime,
        persist_dir=persist_dir,
        snapshot_every_seconds=snapshot_every_seconds,
        stop_after_seconds=stop_after_seconds,
    )


def resume_federation(
    directory: PathLike,
    snapshot_every_seconds: float = DEFAULT_SNAPSHOT_SECONDS,
    stop_after_seconds: Optional[float] = None,
) -> FederationResult:
    """Continue a killed federated run from its newest valid snapshot."""
    from repro.persist.snapshot import load_latest_snapshot

    runtime, info, skipped = load_latest_snapshot(directory)
    if runtime is None:
        raise PersistError(
            f"no usable snapshot in {directory}"
            + (f" (skipped: {'; '.join(skipped)})" if skipped else "")
        )
    if not isinstance(runtime, FederationRuntime):
        raise PersistError(
            f"snapshot {info.path if info else directory} is not a federated run "
            "(use `repro resume` for single-cluster runs)"
        )
    _obs.set_sim_clock(runtime.engine.clock_reader())
    _obs.attach_runtime(runtime)
    return advance_federation(
        runtime,
        persist_dir=directory,
        snapshot_every_seconds=snapshot_every_seconds,
        stop_after_seconds=stop_after_seconds,
    )
